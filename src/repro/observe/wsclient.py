"""A minimal WebSocket client for tests, benches, and the CI smoke.

Just enough RFC 6455 to consume the gateway's ``/ws/live`` stream:
the upgrade handshake (with ``Sec-WebSocket-Accept`` verification),
masked client frames, and text/ping/pong/close handling.  Shares the
framing code in :mod:`repro.observe.http`, so the client exercises the
exact bytes the server parses.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import time
from typing import Any

from repro.errors import ProtocolError
from repro.observe.http import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    encode_ws_frame,
    read_ws_frame,
    websocket_accept,
)


class AsyncWebSocketClient:
    """One ``/ws/live`` consumer; use as an async context manager."""

    def __init__(self, host: str, port: int, path: str = "/ws/live"):
        self.host = host
        self.port = port
        self.path = path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "AsyncWebSocketClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=1 << 21
        )
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        request = (
            f"GET {self.path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        self._writer.write(request.encode("ascii"))
        await self._writer.drain()
        status = await self._reader.readline()
        if b"101" not in status:
            raise ProtocolError(f"websocket upgrade refused: {status!r}")
        accept = None
        while True:
            line = await self._reader.readline()
            stripped = line.strip()
            if not stripped:
                break
            name, _, value = stripped.decode("latin-1").partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != websocket_accept(key):
            raise ProtocolError("websocket handshake accept key mismatch")

    async def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The next JSON event, or ``None`` once the server closed.

        Pings are answered transparently; binary frames are skipped.
        """
        if self._reader is None:
            raise RuntimeError("client is not connected")
        while True:
            if timeout is None:
                opcode, payload = await read_ws_frame(self._reader)
            else:
                opcode, payload = await asyncio.wait_for(
                    read_ws_frame(self._reader), timeout=timeout
                )
            if opcode == WS_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == WS_CLOSE:
                return None
            if opcode == WS_PING:
                self._writer.write(
                    encode_ws_frame(payload, opcode=WS_PONG, mask=True)
                )
                await self._writer.drain()

    async def close(self) -> None:
        if self._writer is None:
            return
        try:
            self._writer.write(encode_ws_frame(b"", opcode=WS_CLOSE, mask=True))
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader = None
        self._writer = None


async def collect_live(
    host: str,
    port: int,
    seconds: float,
    min_columns: int = 0,
) -> dict[str, Any]:
    """Consume ``/ws/live`` for a while; summarize what arrived.

    Returns ``{"events": n, "columns": n, "column_events": [...],
    "kinds": {...}}`` where ``column_events`` keeps the raw ``columns``
    events (wire-format dicts, packed power intact) for bit-exactness
    checks.  Stops early once ``min_columns`` columns arrived (when
    positive) so callers can bound CI wait time.
    """
    summary: dict[str, Any] = {
        "events": 0,
        "columns": 0,
        "column_events": [],
        "kinds": {},
    }
    deadline = time.monotonic() + seconds
    async with AsyncWebSocketClient(host, port) as client:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                event = await client.recv(timeout=remaining)
            except asyncio.TimeoutError:
                break
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                break
            if event is None:
                break
            summary["events"] += 1
            kind = event.get("kind", "?")
            summary["kinds"][kind] = summary["kinds"].get(kind, 0) + 1
            if kind == "columns":
                summary["columns"] += len(event.get("columns", []))
                summary["column_events"].append(event)
            if min_columns and summary["columns"] >= min_columns:
                break
    return summary
