"""repro.observe — the operator surface over the sensing service.

A zero-dependency HTTP/WebSocket gateway (:class:`ObserveGateway`) fed
by an in-process :class:`TelemetryHub`: Prometheus ``/metrics``,
drain-aware ``/healthz``/``/readyz``, session and capture inspection
APIs, a live ``/ws/live`` event stream, and a single-file canvas
dashboard at ``/``.  Attach it to a live
:class:`~repro.serve.server.SensingServer` (``repro serve
--dashboard``) or replay a recorded telemetry directory
(``repro observe --telemetry DIR``).
"""

from repro.observe.gateway import ObserveConfig, ObserveGateway
from repro.observe.hub import HubStats, Subscription, TelemetryHub
from repro.observe.replay import TelemetryReplay, load_telemetry_replay

__all__ = [
    "HubStats",
    "ObserveConfig",
    "ObserveGateway",
    "Subscription",
    "TelemetryHub",
    "TelemetryReplay",
    "load_telemetry_replay",
]
