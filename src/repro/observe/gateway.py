"""The operator gateway: HTTP routes + ``/ws/live`` over a TelemetryHub.

One asyncio listener serves two kinds of consumers:

* **Scrapers** — ``/healthz``, ``/readyz`` (drain-aware: 503 once the
  attached server began shutting down), ``/metrics`` in Prometheus text
  exposition (the process-global telemetry registry, the always-on
  ``ServerStats``/``SchedulerStats``, and the hub's own accounting),
  ``/api/sessions[/{id}]``, and ``/api/captures``.
* **Live subscribers** — ``/ws/live`` upgrades to a WebSocket fed by a
  hub :class:`~repro.observe.hub.Subscription`: spectrogram columns
  (packed base64, byte-identical to the serving wire format), health
  transitions, detections, shed/watchdog/disconnect events, periodic
  ``server.stats`` and ``metrics.delta`` frames.  A consumer that
  cannot keep up is shed by the hub and its transport aborted — the
  abort is what frees a sender parked in ``drain()`` against a stalled
  peer, so slow dashboards cost the serve path nothing.

The same gateway also fronts a recorded run (``repro observe
--telemetry DIR``): a :class:`~repro.observe.replay.TelemetryReplay`
takes the server's place and ``/ws/live`` streams the recorded events.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

from repro.dsp.backend import active_backend_name
from repro.errors import ProtocolError
from repro.observe.dashboard import DASHBOARD_HTML
from repro.observe.http import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    encode_ws_frame,
    http_response,
    json_response,
    read_request,
    read_ws_frame,
    websocket_handshake_response,
)
from repro.observe.hub import Subscription, TelemetryHub
from repro.observe.prometheus import render_prometheus
from repro.telemetry.context import get_telemetry


@dataclass(frozen=True)
class ObserveConfig:
    """Deployment knobs of the observe gateway.

    Attributes:
        interval_s: period of the gateway's one housekeeping task —
            each beat publishes a ``metrics.delta`` (when the registry
            changed) and, with a server attached and subscribers
            present, a ``server.stats`` event.
        ws_max_queue: per-subscriber unread-event bound (hub default
            when ``None``).
        shed_after_drops: drops before a slow subscriber is shed.
        replay_rate: recorded events streamed per second in replay
            mode; ``0`` streams the whole log unpaced.
    """

    host: str = "127.0.0.1"
    port: int = 0
    interval_s: float = 0.5
    ws_max_queue: int | None = None
    shed_after_drops: int | None = None
    replay_rate: float = 500.0
    max_ws_frame_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.replay_rate < 0:
            raise ValueError("replay_rate cannot be negative")


def _server_metric_snapshots(server: Any) -> dict[str, dict[str, Any]]:
    """``ServerStats``/``SchedulerStats`` as registry-snapshot dicts."""
    snaps: dict[str, dict[str, Any]] = {}
    server_snap = server.stats.snapshot()
    for name, value in server_snap.items():
        if name in ("request_p50_ms", "request_p99_ms"):
            continue  # percentiles ride the full histogram below
        snaps[f"server.{name}"] = {"type": "counter", "value": float(value)}
    snaps["server.request_latency_ms"] = server.stats.request_latency_ms.snapshot()
    snaps["server.active_sessions"] = {
        "type": "gauge",
        "value": float(len(server.sessions)),
    }
    scheduler = server.scheduler
    sched_snap = scheduler.stats.snapshot()
    for name in ("ticks", "windows", "shed_windows", "serial_windows",
                 "watchdog_activations"):
        snaps[f"scheduler.{name}"] = {
            "type": "counter",
            "value": float(sched_snap[name]),
        }
    snaps["scheduler.max_queue_depth"] = {
        "type": "gauge",
        "value": float(sched_snap["max_queue_depth"]),
    }
    snaps["scheduler.queue_depth"] = {
        "type": "gauge",
        "value": float(scheduler.queue_depth),
    }
    snaps["scheduler.batch_windows"] = scheduler.stats.occupancy.snapshot()
    return snaps


def _fleet_metric_snapshots(fleet: Any) -> dict[str, dict[str, Any]]:
    """Fleet-level snapshots: merged shard telemetry + labeled gauges.

    The merged section folds the supervisor's cached per-shard
    registry snapshots with the PR-3 exact merge, so the exposition's
    fleet aggregates equal the sum of per-shard registries the same
    way the single-server exposition equals ``telemetry-report``.  The
    ``repro_fleet_shard_*`` families carry one sample per shard via
    the labels support.
    """
    from repro.fleet.frontend import merge_snapshots

    snaps: dict[str, dict[str, Any]] = dict(
        merge_snapshots(list(fleet.metric_snapshots().values()))
    )
    for name, value in fleet.stats.snapshot().items():
        snaps[f"fleet.{name}"] = {"type": "counter", "value": float(value)}
    shards = fleet.shard_snapshots()
    gauges = {
        "fleet.shard_up": lambda s: 1.0 if s["state"] == "up" else 0.0,
        "fleet.shard_active_sessions": lambda s: float(s["active_sessions"]),
        "fleet.shard_queue_depth": lambda s: float(s["queue_depth"]),
        "fleet.shard_restarts": lambda s: float(s["restarts"]),
    }
    for name, value_of in gauges.items():
        snaps[name] = {
            "type": "gauge",
            "samples": [
                {"labels": {"shard": shard["shard"]}, "value": value_of(shard)}
                for shard in shards
            ],
        }
    snaps["fleet.shard_columns_served"] = {
        "type": "counter",
        "samples": [
            {
                "labels": {"shard": shard["shard"]},
                "value": float(shard["columns_served"]),
            }
            for shard in shards
        ],
    }
    return snaps


class ObserveGateway:
    """Serve the operator surface for a live server or a recorded run."""

    def __init__(
        self,
        hub: TelemetryHub,
        server: Any = None,
        capture_store: Any = None,
        replay: Any = None,
        config: ObserveConfig | None = None,
        fleet: Any = None,
    ):
        if sum(x is not None for x in (server, replay, fleet)) > 1:
            raise ValueError("attach one of: a live server, a fleet, a replay")
        self.hub = hub
        self.server = server
        #: Optional :class:`repro.fleet.frontend.FleetServer` — adds
        #: ``/api/shards``, per-shard labeled gauges, the merged fleet
        #: telemetry section, and drain-aware ``/readyz``.  Routes read
        #: only supervisor-refreshed caches (``_route`` is synchronous).
        self.fleet = fleet
        self.capture_store = capture_store
        self.replay = replay
        self.config = config if config is not None else ObserveConfig()
        #: Gateway-level accounting, exported under ``repro_observe_*``.
        self.http_requests = 0
        self.http_errors = 0
        self.ws_connections = 0
        self._listener: asyncio.AbstractServer | None = None
        self._periodic_task: asyncio.Task | None = None
        self._ws_writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None or not self._listener.sockets:
            raise RuntimeError("gateway is not started")
        return self._listener.sockets[0].getsockname()[1]

    @property
    def mode(self) -> str:
        if self.server is not None:
            return "serve"
        if self.fleet is not None:
            return "fleet"
        if self.replay is not None:
            return "replay"
        return "hub"

    async def start(self) -> int:
        if self._listener is not None:
            raise RuntimeError("gateway is already started")
        self._listener = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_ws_frame_bytes,
        )
        self._periodic_task = asyncio.create_task(
            self._periodic_loop(), name="observe-periodic"
        )
        return self.port

    async def shutdown(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._periodic_task is not None:
            self._periodic_task.cancel()
            try:
                await self._periodic_task
            except asyncio.CancelledError:
                pass
            self._periodic_task = None
        for writer in list(self._ws_writers):
            writer.close()
        self._ws_writers.clear()

    async def _periodic_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.interval_s)
            try:
                self.hub.metrics_delta()
            except ValueError:
                # A registry reconfigured mid-run (tests swapping
                # telemetry sessions) resets the delta chain.
                self.hub._last_snapshot = {}
            if self.server is not None and self.hub.has_subscribers:
                self.hub.publish(
                    "server.stats",
                    active_sessions=len(self.server.sessions),
                    queue_depth=self.server.scheduler.queue_depth,
                    draining=self.server.draining,
                    server=self.server.stats.snapshot(),
                    scheduler=self.server.scheduler.stats.snapshot(),
                    hub=self.hub.stats.snapshot(),
                )
            if self.fleet is not None and self.hub.has_subscribers:
                reply = self.fleet._stats_reply()
                self.hub.publish(
                    "server.stats",
                    active_sessions=reply["active_sessions"],
                    queue_depth=reply["queue_depth"],
                    draining=self.fleet.draining,
                    server=reply["server"],
                    scheduler=reply["scheduler"],
                    fleet=reply["fleet"],
                    hub=self.hub.stats.snapshot(),
                )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except (ProtocolError, asyncio.IncompleteReadError):
                self.http_errors += 1
                writer.write(http_response(400, json.dumps({"error": "bad request"})))
                await writer.drain()
                return
            if request is None:
                return
            self.http_requests += 1
            if request.path == "/ws/live":
                await self._ws_live(request, reader, writer)
                return
            try:
                response = self._route(request)
            except Exception as exc:  # noqa: BLE001 - a route bug must answer 500
                self.http_errors += 1
                response = json_response(500, {"error": f"internal error: {exc}"})
            writer.write(response)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown races
                pass

    # ------------------------------------------------------------------
    # HTTP routes
    # ------------------------------------------------------------------

    def _route(self, request: Any) -> bytes:
        if request.method != "GET":
            return json_response(405, {"error": f"method {request.method} not allowed"})
        path = request.path
        if path == "/":
            return http_response(200, DASHBOARD_HTML, content_type="text/html")
        if path == "/healthz":
            return self._healthz()
        if path == "/readyz":
            return self._readyz()
        if path == "/metrics":
            return http_response(
                200, self.render_metrics(), content_type="text/plain; version=0.0.4"
            )
        if path == "/api/shards":
            return self._shards()
        if path == "/api/sessions":
            return json_response(200, {"sessions": self._session_list()})
        if path.startswith("/api/sessions/"):
            return self._session_detail(path[len("/api/sessions/") :])
        if path == "/api/captures":
            return self._captures()
        return json_response(404, {"error": f"no route for {path}"})

    def _healthz(self) -> bytes:
        return json_response(
            200,
            {
                "status": "ok",
                "mode": self.mode,
                "subscribers": self.hub.subscriber_count,
                "dsp_backend": active_backend_name(),
            },
        )

    def _readyz(self) -> bytes:
        if self.server is not None and self.server.draining:
            return json_response(503, {"ready": False, "reason": "draining"})
        if self.fleet is not None:
            if self.fleet.draining:
                return json_response(503, {"ready": False, "reason": "draining"})
            shards = self.fleet.shard_snapshots()
            routable = [s for s in shards if s["state"] == "up"]
            if not routable:
                return json_response(
                    503, {"ready": False, "reason": "no routable shards"}
                )
            return json_response(
                200,
                {
                    "ready": True,
                    "mode": self.mode,
                    "shards_up": len(routable),
                    "shards_total": len(shards),
                    "active_sessions": sum(
                        s["active_sessions"] for s in shards
                    ),
                },
            )
        body: dict[str, Any] = {"ready": True, "mode": self.mode}
        if self.server is not None:
            body["active_sessions"] = len(self.server.sessions)
            body["queue_depth"] = self.server.scheduler.queue_depth
        return json_response(200, body)

    def _shards(self) -> bytes:
        """Per-shard load views (the fleet operator's headroom page)."""
        if self.fleet is None:
            return json_response(200, {"shards": [], "fleet": None})
        return json_response(
            200,
            {
                "shards": self.fleet.shard_snapshots(),
                "fleet": self.fleet.stats.snapshot(),
            },
        )

    def render_metrics(self) -> str:
        """The full ``/metrics`` exposition text.

        The telemetry section renders the *live* process-global
        registry — the same object ``Telemetry.flush()`` snapshots
        into ``metrics.json`` — so gateway aggregates equal the
        offline ``telemetry-report`` aggregates by construction, and
        monotone instruments scrape monotone.  In replay mode the
        recorded ``metrics.json`` takes that section's place.
        """
        merged: dict[str, dict[str, Any]] = {}
        if self.replay is not None:
            merged.update(self.replay.metrics)
        else:
            merged.update(get_telemetry().metrics.snapshot())
        if self.server is not None:
            merged.update(_server_metric_snapshots(self.server))
        if self.fleet is not None:
            merged.update(_fleet_metric_snapshots(self.fleet))
        for name, value in self.hub.stats.snapshot().items():
            merged[f"observe.{name}"] = {"type": "counter", "value": float(value)}
        merged["observe.subscribers"] = {
            "type": "gauge",
            "value": float(self.hub.subscriber_count),
        }
        merged["observe.http_requests"] = {
            "type": "counter",
            "value": float(self.http_requests),
        }
        merged["observe.http_errors"] = {
            "type": "counter",
            "value": float(self.http_errors),
        }
        merged["observe.ws_connections"] = {
            "type": "counter",
            "value": float(self.ws_connections),
        }
        # Info-style sample: the value is always 1, the identity rides
        # the label — the Prometheus idiom for build/config facts.
        merged["dsp.backend_info"] = {
            "type": "gauge",
            "value": 1.0,
            "labels": {"backend": active_backend_name()},
        }
        return render_prometheus(merged)

    def _session_list(self) -> list[dict[str, Any]]:
        if self.server is not None:
            return self.server.session_snapshots()
        if self.replay is not None:
            return self.replay.session_summaries()
        return []

    def _session_detail(self, session_id: str) -> bytes:
        for snap in self._session_list():
            if snap.get("session") == session_id:
                return json_response(200, snap)
        return json_response(404, {"error": f"no session {session_id!r}"})

    def _captures(self) -> bytes:
        store = self.capture_store
        if store is None and self.server is not None:
            store = self.server.capture_store
        if store is None:
            return json_response(200, {"captures": [], "total_bytes": 0})
        captures = [
            {
                "capture_id": info.capture_id,
                "created_ts": info.created_ts,
                "num_bytes": info.num_bytes,
                "sealed": info.sealed,
                "source": info.source,
            }
            for info in store.list_captures()
        ]
        return json_response(
            200, {"captures": captures, "total_bytes": store.total_bytes()}
        )

    # ------------------------------------------------------------------
    # /ws/live
    # ------------------------------------------------------------------

    async def _ws_live(
        self,
        request: Any,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if not request.wants_websocket:
            writer.write(
                http_response(426, json.dumps({"error": "upgrade to websocket"}))
            )
            await writer.drain()
            return
        writer.write(
            websocket_handshake_response(request.headers["sec-websocket-key"])
        )
        await writer.drain()
        self.ws_connections += 1
        self._ws_writers.add(writer)
        transport = writer.transport
        subscription = self.hub.subscribe(
            max_queue=self.config.ws_max_queue,
            on_shed=transport.abort,
        )
        if self.config.shed_after_drops is not None:
            subscription.shed_after_drops = self.config.shed_after_drops
        closed = asyncio.Event()
        reader_task = asyncio.create_task(
            self._ws_reader(reader, writer, closed), name="observe-ws-reader"
        )
        try:
            await self._ws_send(
                writer,
                {
                    "kind": "hello",
                    "mode": self.mode,
                    "interval_s": self.config.interval_s,
                    "dsp_backend": active_backend_name(),
                },
            )
            if self.replay is not None:
                await self._ws_stream_replay(writer, closed)
            else:
                await self._ws_stream_live(subscription, writer, closed)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            subscription.close()
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
            self._ws_writers.discard(writer)

    async def _ws_send(self, writer: asyncio.StreamWriter, event: dict[str, Any]) -> None:
        writer.write(encode_ws_frame(json.dumps(event)))
        await writer.drain()

    async def _ws_stream_live(
        self,
        subscription: Subscription,
        writer: asyncio.StreamWriter,
        closed: asyncio.Event,
    ) -> None:
        closed_wait = asyncio.create_task(closed.wait())
        try:
            while not subscription.shed and not closed.is_set():
                get = asyncio.create_task(subscription.get())
                done, _ = await asyncio.wait(
                    {get, closed_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if get not in done:
                    get.cancel()
                    break
                await self._ws_send(writer, get.result())
        finally:
            closed_wait.cancel()

    async def _ws_stream_replay(
        self, writer: asyncio.StreamWriter, closed: asyncio.Event
    ) -> None:
        rate = self.config.replay_rate
        pace_every = 32
        for index, event in enumerate(self.replay.events):
            if closed.is_set():
                return
            await self._ws_send(writer, event)
            if rate > 0 and (index + 1) % pace_every == 0:
                await asyncio.sleep(pace_every / rate)
        await self._ws_send(
            writer, {"kind": "replay.end", "events": len(self.replay.events)}
        )
        writer.write(encode_ws_frame(b"", opcode=WS_CLOSE))
        await writer.drain()

    async def _ws_reader(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        closed: asyncio.Event,
    ) -> None:
        """Drain client frames: answer pings, notice the close."""
        try:
            while True:
                opcode, payload = await read_ws_frame(
                    reader, self.config.max_ws_frame_bytes
                )
                if opcode == WS_CLOSE:
                    break
                if opcode == WS_PING:
                    writer.write(encode_ws_frame(payload, opcode=WS_PONG))
                    await writer.drain()
        except (
            ProtocolError,
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            closed.set()
