"""TelemetryHub: in-process fan-out of the live telemetry stream.

The hub is the seam between the serve stack and the operator surface.
Producers (server, sessions, scheduler) call :meth:`TelemetryHub.publish`
with plain-dict events; consumers (WebSocket handlers, tests) hold a
:class:`Subscription` and drain its bounded queue.  Two invariants keep
the hot path safe to tap:

* **publish never blocks and never buffers unboundedly.**  With no
  subscribers it is one attribute check.  A full subscriber queue drops
  the event for that subscriber (counted per-subscription and in
  :class:`HubStats`), and a subscriber that accumulates
  ``shed_after_drops`` drops is **shed**: marked, unsubscribed, and its
  ``on_shed`` callback fired so the transport can be aborted even while
  the handler is parked in ``drain()``.  A slow dashboard can therefore
  never back-pressure the serve path — it loses its feed instead.
* **metrics deltas merge exactly.**  :meth:`metrics_delta` snapshots the
  process-global registry and publishes only the change since the last
  call (:func:`repro.telemetry.metrics.diff_snapshot`); merging every
  published delta into a fresh registry reproduces the live registry's
  counters and histogram counts exactly, which is what makes gateway
  aggregates provably equal ``telemetry-report`` offline aggregates.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import MetricsRegistry, diff_snapshot

#: Default bound on one subscriber's unread-event queue.
DEFAULT_MAX_QUEUE = 256
#: Total drops after which a slow subscriber is shed.
DEFAULT_SHED_AFTER_DROPS = 64


@dataclass
class HubStats:
    """Fan-out accounting, exported under ``repro_observe_*``."""

    events_published: int = 0
    events_dropped: int = 0
    subscribers_shed: int = 0
    deltas_published: int = 0
    max_subscribers: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "events_published": self.events_published,
            "events_dropped": self.events_dropped,
            "subscribers_shed": self.subscribers_shed,
            "deltas_published": self.deltas_published,
            "max_subscribers": self.max_subscribers,
        }


class Subscription:
    """One consumer's bounded view of the hub's event stream."""

    def __init__(
        self,
        hub: "TelemetryHub",
        max_queue: int,
        shed_after_drops: int,
        on_shed: Callable[[], None] | None = None,
    ):
        self._hub = hub
        self.queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue(max_queue)
        self.shed_after_drops = shed_after_drops
        self.on_shed = on_shed
        self.dropped = 0
        self.delivered = 0
        self.shed = False
        self.closed = False

    async def get(self) -> dict[str, Any]:
        """The next event (waits); check :attr:`shed` between calls."""
        return await self.queue.get()

    def close(self) -> None:
        self.closed = True
        self._hub.unsubscribe(self)


class TelemetryHub:
    """Push-based fan-out over the PR-3 metrics/events session.

    The hub itself runs no tasks: producers push synchronously, and the
    gateway (or a test) drives :meth:`metrics_delta` periodically.
    """

    def __init__(
        self,
        max_queue: int = DEFAULT_MAX_QUEUE,
        shed_after_drops: int = DEFAULT_SHED_AFTER_DROPS,
        clock=time.time,
    ):
        self.max_queue = max_queue
        self.shed_after_drops = shed_after_drops
        self.stats = HubStats()
        self.aggregate = MetricsRegistry()
        self._clock = clock
        self._subscriptions: list[Subscription] = []
        self._last_snapshot: dict[str, dict[str, Any]] = {}

    @property
    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscriptions)

    def subscribe(
        self,
        max_queue: int | None = None,
        on_shed: Callable[[], None] | None = None,
    ) -> Subscription:
        subscription = Subscription(
            self,
            max_queue if max_queue is not None else self.max_queue,
            self.shed_after_drops,
            on_shed=on_shed,
        )
        self._subscriptions.append(subscription)
        self.stats.max_subscribers = max(
            self.stats.max_subscribers, len(self._subscriptions)
        )
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        try:
            self._subscriptions.remove(subscription)
        except ValueError:
            pass

    def publish(self, kind: str, **fields: Any) -> dict[str, Any] | None:
        """Fan one event out to every subscriber; never blocks.

        Returns the event dict, or ``None`` when there were no
        subscribers (the event is not built — tapping an idle hub from
        the serve hot path costs one list check).
        """
        if not self._subscriptions:
            return None
        event: dict[str, Any] = {"kind": kind, "ts": round(float(self._clock()), 6)}
        event.update(fields)
        self._fan_out(event)
        return event

    def _fan_out(self, event: dict[str, Any]) -> None:
        self.stats.events_published += 1
        to_shed: list[Subscription] = []
        for subscription in self._subscriptions:
            try:
                subscription.queue.put_nowait(event)
                subscription.delivered += 1
            except asyncio.QueueFull:
                subscription.dropped += 1
                self.stats.events_dropped += 1
                if subscription.dropped >= subscription.shed_after_drops:
                    to_shed.append(subscription)
        for subscription in to_shed:
            self._shed(subscription)

    def _shed(self, subscription: Subscription) -> None:
        subscription.shed = True
        self.unsubscribe(subscription)
        self.stats.subscribers_shed += 1
        if subscription.on_shed is not None:
            try:
                subscription.on_shed()
            except Exception:  # noqa: BLE001 - a consumer callback must not hurt the producer
                pass

    def metrics_delta(self) -> dict[str, Any] | None:
        """Publish the registry change since the last call, if any.

        The delta is merged into :attr:`aggregate` *before* publishing,
        so a scrape that races a publish still sees a consistent total.
        Returns the published event, or ``None`` when nothing changed.
        """
        current = get_telemetry().metrics.snapshot()
        delta = diff_snapshot(self._last_snapshot, current)
        self._last_snapshot = current
        if not delta:
            return None
        self.aggregate.merge(delta)
        self.stats.deltas_published += 1
        return self.publish("metrics.delta", metrics=delta)
