"""Render registry snapshots in the Prometheus text exposition format.

Input is the plain-dict snapshot shape every repro instrument speaks
(``{"type": "counter"|"gauge"|"histogram", ...}``), so one renderer
covers the telemetry registry, ``ServerStats``, ``SchedulerStats``,
and the hub's own accounting.  Histograms come out as cumulative
``le``-labelled buckets ending in ``+Inf`` plus ``_sum``/``_count``,
which is what makes scrape-side p50/p90/p99 (``histogram_quantile``)
work; floats are emitted with ``repr`` so they round-trip exactly —
the exposition-equals-offline-aggregates test depends on it.
"""

from __future__ import annotations

import re
from typing import Any

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """``serve.requests`` -> ``repro_serve_requests``."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return f"{prefix}_{cleaned}" if prefix else cleaned


def format_value(value: Any) -> str:
    """A Prometheus-parseable number that round-trips floats exactly."""
    if value is None:
        return "NaN"
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_block(snap: dict[str, Any]) -> str:
    """``{k="v",...}`` from an optional ``labels`` mapping on the snap.

    Info-style samples (``repro_dsp_backend_info{backend="..."} 1``)
    carry their identity in labels; ordinary instruments have none and
    render unchanged.  Label values are sanitized to the same
    no-escaping subset :func:`parse_exposition` reads back.
    """
    labels = snap.get("labels")
    if not labels:
        return ""
    pairs = ",".join(
        f'{_NAME_RE.sub("_", str(key))}="{str(value).replace(chr(34), "_")}"'
        for key, value in sorted(labels.items())
    )
    return f"{{{pairs}}}"


def _sample_lines(name: str, snap: dict[str, Any], lines: list[str]) -> None:
    """One sample line — or several, for a labeled family.

    A snap carrying ``"samples": [{"labels": {...}, "value": v}, ...]``
    is a *family*: one ``# TYPE`` line, one sample per entry (the shape
    per-shard fleet gauges use, since a dict key can only name a family
    once).  Ordinary single-value snaps render unchanged.
    """
    samples = snap.get("samples")
    if samples is None:
        lines.append(f"{name}{_label_block(snap)} {format_value(snap['value'])}")
        return
    for sample in samples:
        lines.append(
            f"{name}{_label_block(sample)} {format_value(sample['value'])}"
        )


def _render_counter(name: str, snap: dict[str, Any], lines: list[str]) -> None:
    lines.append(f"# TYPE {name} counter")
    _sample_lines(name, snap, lines)


def _render_gauge(name: str, snap: dict[str, Any], lines: list[str]) -> None:
    lines.append(f"# TYPE {name} gauge")
    _sample_lines(name, snap, lines)


def _render_histogram(name: str, snap: dict[str, Any], lines: list[str]) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for edge, count in zip(snap["buckets"], snap["counts"]):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{format_value(edge)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    lines.append(f"{name}_sum {format_value(snap['sum'])}")
    lines.append(f"{name}_count {snap['count']}")


def render_prometheus(
    snapshot: dict[str, dict[str, Any]], prefix: str = "repro"
) -> str:
    """The full exposition for one name->snapshot mapping, sorted."""
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        snap = snapshot[raw_name]
        name = sanitize_metric_name(raw_name, prefix)
        kind = snap.get("type")
        if kind == "counter":
            _render_counter(name, snap, lines)
        elif kind == "gauge":
            _render_gauge(name, snap, lines)
        elif kind == "histogram":
            _render_histogram(name, snap, lines)
        else:
            raise ValueError(f"unknown metric type {kind!r} for {raw_name!r}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict[str, float]:
    """Sample name+labels -> value, for tests and the bench consumer.

    Parses the subset this module emits (no escaping inside label
    values); the key is the sample name including its label block,
    e.g. ``repro_server_request_latency_ms_bucket{le="1"}``.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            continue
        samples[key] = float(value)
    return samples
