"""Minimal HTTP/1.1 request parsing and RFC 6455 WebSocket framing.

The gateway speaks just enough HTTP for an operator surface — GET
requests with bounded request lines, headers, and bodies, one request
per connection (``Connection: close``) — and just enough WebSocket for
a live event stream: the ``Sec-WebSocket-Accept`` handshake, unfragmented
text/ping/pong/close frames, masked client-to-server payloads.  Zero
dependencies beyond the standard library, matching the serve layer's
NDJSON stance: the wire format is simple enough to own outright.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ProtocolError

#: Upper bound on one request line or header line, bytes.
MAX_LINE_BYTES = 8192
#: Upper bound on the number of header lines per request.
MAX_HEADER_COUNT = 100
#: Upper bound on a request body we are willing to drain.
MAX_BODY_BYTES = 1 << 20

#: RFC 6455 handshake GUID, concatenated to the client key before SHA-1.
WS_MAGIC = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

WS_TEXT = 0x1
WS_BINARY = 0x2
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA

_REASONS = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    426: "Upgrade Required",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, decoded path, query, lowercase headers."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "sec-websocket-key" in self.headers
        )


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except ValueError as exc:  # StreamReader limit overrun
        raise ProtocolError(str(exc)) from exc
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"header line exceeds {MAX_LINE_BYTES} bytes")
    if line and not line.endswith(b"\n"):
        # readline() returns a partial tail at EOF; a torn request is
        # indistinguishable from a malformed one.
        raise ProtocolError("connection closed mid-request")
    return line


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises:
        ProtocolError: malformed request line, oversized or malformed
            headers, unsupported HTTP version, or an oversized body.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    try:
        decoded = request_line.decode("ascii").strip()
    except UnicodeDecodeError as exc:
        raise ProtocolError("request line is not ASCII") from exc
    parts = decoded.split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {decoded!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = await _read_line(reader)
        stripped = line.strip()
        if not stripped:
            break
        name, sep, value = stripped.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {stripped!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(f"more than {MAX_HEADER_COUNT} header lines")

    body_length = int(headers.get("content-length", "0") or "0")
    if body_length < 0 or body_length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable content-length {body_length}")
    if body_length:
        await reader.readexactly(body_length)  # drained, not interpreted

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
    )


def http_response(
    status: int,
    body: bytes | str = b"",
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one full ``Connection: close`` HTTP/1.1 response."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}; charset=utf-8",
        f"Content-Length: {len(body)}",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(status: int, payload: Any) -> bytes:
    """An ``application/json`` response around ``payload``."""
    return http_response(status, json.dumps(payload, indent=1, sort_keys=True))


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key + WS_MAGIC).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake_response(key: str) -> bytes:
    """The 101 upgrade response completing the RFC 6455 handshake."""
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {websocket_accept(key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def encode_ws_frame(payload: bytes | str, opcode: int = WS_TEXT, mask: bool = False) -> bytes:
    """One unfragmented frame; ``mask=True`` for the client-to-server side."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < (1 << 16):
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = _apply_mask(payload, key)
    return bytes(header) + payload


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    repeated = key * (len(payload) // 4 + 1)
    return bytes(b ^ k for b, k in zip(payload, repeated))


async def read_ws_frame(
    reader: asyncio.StreamReader, max_bytes: int = 1 << 20
) -> tuple[int, bytes]:
    """Read one frame; returns ``(opcode, payload)`` with masking undone.

    Raises:
        ProtocolError: fragmented frame, continuation opcode, or a
            payload larger than ``max_bytes``.
        asyncio.IncompleteReadError: the peer hung up mid-frame.
    """
    first, second = await reader.readexactly(2)
    fin = bool(first & 0x80)
    opcode = first & 0x0F
    if not fin or opcode == 0x0:
        raise ProtocolError("fragmented WebSocket frames are not supported")
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > max_bytes:
        raise ProtocolError(f"WebSocket frame of {length} bytes exceeds {max_bytes}")
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = _apply_mask(payload, key)
    return opcode, payload
