"""Replay a recorded telemetry directory through the observe gateway.

``repro observe --telemetry DIR`` points the gateway at the files a
``Telemetry.flush()`` wrote instead of a live server: ``/metrics``
renders the recorded ``metrics.json`` snapshot, ``/api/sessions``
summarizes the sessions the event log mentions, and ``/ws/live``
streams the recorded events (normalized to the hub's live event kinds,
so the dashboard renders either source identically) followed by a
``replay.end`` marker.

Reading is tolerant by the same rule as ``telemetry-report``: torn
JSONL lines from an unflushed writer are skipped and counted, never
fatal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.telemetry.events import read_jsonl_tolerant
from repro.telemetry.session import EVENTS_FILE, METRICS_FILE, SPANS_FILE, TRACE_FILE

#: Recorded event kind -> the hub's live kind (everything else passes
#: through under its recorded kind).
_KIND_MAP = {
    "health.transition": "health",
    "stream.detection": "detection",
    "stream.gap": "gap",
    "fault.injected": "fault",
    "serve.watchdog_degraded": "serve.watchdog",
}


@dataclass
class TelemetryReplay:
    """One loaded run: hub-shaped events plus the metrics snapshot."""

    directory: Path
    events: list[dict[str, Any]] = field(default_factory=list)
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    skipped_lines: int = 0

    def session_summaries(self) -> list[dict[str, Any]]:
        """A per-session event rollup standing in for live snapshots."""
        sessions: dict[str, dict[str, Any]] = {}
        for event in self.events:
            session_id = str(event.get("session", "replay"))
            summary = sessions.setdefault(
                session_id,
                {"session": session_id, "events": 0, "health": None, "detections": 0},
            )
            summary["events"] += 1
            kind = event.get("kind")
            if kind == "health":
                summary["health"] = event.get("state")
            elif kind == "detection":
                summary["detections"] += 1
        return [sessions[key] for key in sorted(sessions)]


def _normalize(record: dict[str, Any]) -> dict[str, Any]:
    event = dict(record)
    kind = str(event.pop("kind", "event"))
    event["kind"] = _KIND_MAP.get(kind, kind)
    if event["kind"] == "health" and "state" not in event:
        event["state"] = event.get("target")
    return event


def load_telemetry_replay(directory: str | Path) -> TelemetryReplay:
    """Load a telemetry directory for gateway replay.

    Raises:
        FileNotFoundError: the directory does not exist or holds none
            of the telemetry files (same contract as
            ``telemetry-report``).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"telemetry directory {directory} does not exist")
    known = (SPANS_FILE, TRACE_FILE, EVENTS_FILE, METRICS_FILE)
    if not any((directory / name).exists() for name in known):
        raise FileNotFoundError(
            f"{directory} contains no telemetry files ({', '.join(known)})"
        )
    replay = TelemetryReplay(directory=directory)
    events_path = directory / EVENTS_FILE
    if events_path.exists():
        records, skipped = read_jsonl_tolerant(events_path)
        replay.skipped_lines += skipped
        replay.events = [_normalize(record) for record in records]
    metrics_path = directory / METRICS_FILE
    if metrics_path.exists():
        try:
            metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
        except ValueError:
            metrics = None
        if isinstance(metrics, dict):
            replay.metrics = metrics
        else:
            replay.skipped_lines += 1
    return replay
