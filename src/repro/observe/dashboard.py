"""The single-file operator dashboard served at ``/``.

Vanilla JS + canvas, no build step and no network dependencies: the
page subscribes to ``/ws/live``, decodes the packed-base64 float64
spectrogram columns exactly as a serve client would, and renders one
waterfall strip per session, a health timeline, and counter sparklines
fed by the periodic ``server.stats``/``metrics.delta`` events.  The
palette (dark surface, sequential blue ramp for magnitude, reserved
status colors always paired with a text label) follows the repo's
validated reference palette.
"""

from __future__ import annotations

DASHBOARD_HTML = r"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro observe</title>
<style>
  :root {
    color-scheme: dark;
    --page: #0d0d0d;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --status-good: #0ca30c;
    --status-warning: #fab219;
    --status-serious: #ec835a;
    --status-critical: #d03b3b;
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 16px; background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 16px; font-weight: 600; margin: 0 0 2px; }
  .sub { color: var(--text-muted); font-size: 12px; margin-bottom: 14px; }
  .tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 14px; }
  .tile {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 10px 14px; min-width: 128px;
  }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .k { color: var(--text-muted); font-size: 11px; text-transform: uppercase;
             letter-spacing: 0.04em; }
  .panel {
    background: var(--surface-1); border: 1px solid var(--border);
    border-radius: 8px; padding: 12px 14px; margin-bottom: 14px;
  }
  .panel h2 { font-size: 12px; font-weight: 600; margin: 0 0 8px;
              color: var(--text-secondary); text-transform: uppercase;
              letter-spacing: 0.04em; }
  canvas { display: block; background: var(--surface-1); }
  .strip { margin-bottom: 10px; }
  .strip .label { color: var(--text-secondary); font-size: 12px; margin-bottom: 3px;
                  display: flex; gap: 8px; align-items: baseline; }
  .strip .label .meta { color: var(--text-muted); font-size: 11px; }
  .chip { display: inline-block; padding: 0 7px; border-radius: 999px;
          font-size: 11px; line-height: 17px; border: 1px solid var(--border);
          color: var(--text-primary); }
  .shards { display: flex; flex-wrap: wrap; gap: 10px; }
  .shard {
    background: var(--page); border: 1px solid var(--border);
    border-radius: 8px; padding: 8px 12px; min-width: 150px;
    font-variant-numeric: tabular-nums;
  }
  .shard .name { font-size: 12px; font-weight: 600; display: flex;
                 gap: 8px; align-items: baseline; margin-bottom: 4px; }
  .shard .dot { display: inline-block; width: 8px; height: 8px;
                border-radius: 999px; vertical-align: 0; }
  .shard .row { color: var(--text-secondary); font-size: 11px;
                display: flex; justify-content: space-between; gap: 12px; }
  .shard .row .k { color: var(--text-muted); }
  .legend { color: var(--text-muted); font-size: 11px; margin-top: 6px; }
  .legend .swatch { display: inline-block; width: 9px; height: 9px;
                    border-radius: 2px; margin-right: 4px; vertical-align: -1px; }
  table { border-collapse: collapse; width: 100%;
          font-variant-numeric: tabular-nums; }
  th, td { text-align: right; padding: 3px 10px; font-size: 12px;
           border-bottom: 1px solid var(--gridline); }
  th { color: var(--text-muted); font-weight: 500; }
  th:first-child, td:first-child { text-align: left; }
  td { color: var(--text-secondary); }
  #conn { font-size: 12px; }
</style>
</head>
<body>
<h1>repro observe</h1>
<div class="sub">
  <span id="conn">connecting&hellip;</span>
  <span id="mode"></span>
  <span id="backend"></span>
</div>
<div class="tiles">
  <div class="tile"><div class="v" id="t-sessions">&ndash;</div><div class="k">active sessions</div></div>
  <div class="tile"><div class="v" id="t-columns">&ndash;</div><div class="k">columns served</div></div>
  <div class="tile"><div class="v" id="t-rate">&ndash;</div><div class="k">columns / s</div></div>
  <div class="tile"><div class="v" id="t-queue">&ndash;</div><div class="k">queue depth</div></div>
  <div class="tile"><div class="v" id="t-dropped">&ndash;</div><div class="k">hub drops</div></div>
</div>
<div class="panel" id="shards-panel" style="display:none">
  <h2>Fleet shards</h2>
  <div class="shards" id="shards"></div>
</div>
<div class="panel">
  <h2>Live spectrogram waterfalls</h2>
  <div id="strips"></div>
  <div class="legend">
    column magnitude, per-column normalized:
    <span class="swatch" style="background:#0d366b"></span>low &rarr;
    <span class="swatch" style="background:#cde2fb"></span>high
  </div>
</div>
<div class="panel">
  <h2>Counter sparklines</h2>
  <div class="strip"><div class="label">columns / s</div>
    <canvas id="spark-columns" width="900" height="42"></canvas></div>
  <div class="strip"><div class="label">requests / s</div>
    <canvas id="spark-requests" width="900" height="42"></canvas></div>
  <div class="strip"><div class="label">scheduler queue depth</div>
    <canvas id="spark-queue" width="900" height="42"></canvas></div>
</div>
<div class="panel">
  <h2>Health timeline</h2>
  <div id="health"></div>
</div>
<div class="panel">
  <h2>Sessions</h2>
  <table id="sessions-table">
    <thead><tr><th>session</th><th>health</th><th>seq</th><th>pushes</th>
      <th>columns</th><th>detections</th><th>shed</th><th>bad blocks</th></tr></thead>
    <tbody></tbody>
  </table>
</div>
<script>
"use strict";
// ---- palette (validated reference values) --------------------------------
const RAMP = ["#0d366b","#104281","#184f95","#1c5cab","#256abf","#2a78d6",
              "#3987e5","#5598e7","#6da7ec","#86b6ef","#9ec5f4","#b7d3f6",
              "#cde2fb"]; // dark -> light: low magnitude recedes to surface
const STATUS = {
  HEALTHY: "var(--status-good)",
  DEGRADED: "var(--status-warning)",
  RECALIBRATING: "var(--status-serious)",
  FAILED: "var(--status-critical)",
};
const rampRGB = RAMP.map(h => [1, 3, 5].map(i => parseInt(h.slice(i, i + 2), 16)));
function rampColor(t) {
  const x = Math.min(1, Math.max(0, t)) * (rampRGB.length - 1);
  const i = Math.min(rampRGB.length - 2, Math.floor(x)), f = x - i;
  const c = rampRGB[i].map((v, k) => Math.round(v + f * (rampRGB[i + 1][k] - v)));
  return c;
}
// ---- packed column decoding (matches repro.encoding) ---------------------
function unpackFloats(b64) {
  const raw = atob(b64);
  const bytes = new Uint8Array(raw.length);
  for (let i = 0; i < raw.length; i++) bytes[i] = raw.charCodeAt(i);
  const view = new DataView(bytes.buffer);
  const out = new Float64Array(bytes.length / 8);
  for (let i = 0; i < out.length; i++) out[i] = view.getFloat64(i * 8, true);
  return out;
}
function columnPower(col) {
  if (typeof col.power === "string") return unpackFloats(col.power);
  return Float64Array.from(col.power); // unpacked wire fallback
}
// ---- waterfalls ----------------------------------------------------------
const STRIP_W = 900, STRIP_H = 72;
const strips = new Map(); // session -> {canvas, ctx, x, meta}
function stripFor(session) {
  let s = strips.get(session);
  if (s) return s;
  const holder = document.createElement("div");
  holder.className = "strip";
  const label = document.createElement("div");
  label.className = "label";
  label.innerHTML = `<span>session ${session}</span>` +
                    `<span class="meta"></span>`;
  const canvas = document.createElement("canvas");
  canvas.width = STRIP_W; canvas.height = STRIP_H;
  holder.appendChild(label); holder.appendChild(canvas);
  document.getElementById("strips").appendChild(holder);
  const ctx = canvas.getContext("2d");
  ctx.fillStyle = "#1a1a19"; ctx.fillRect(0, 0, STRIP_W, STRIP_H);
  s = { canvas, ctx, x: 0, meta: label.querySelector(".meta"), columns: 0 };
  strips.set(session, s);
  return s;
}
function drawColumn(strip, power) {
  const ctx = strip.ctx, n = power.length;
  let lo = Infinity, hi = -Infinity;
  for (const v of power) { if (v < lo) lo = v; if (v > hi) hi = v; }
  const span = hi - lo || 1;
  const img = ctx.createImageData(1, STRIP_H);
  for (let y = 0; y < STRIP_H; y++) {
    // y=0 at the top = last angle bin; flip so angle axis ascends upward
    const bin = Math.min(n - 1, Math.floor((1 - y / STRIP_H) * n));
    const c = rampColor((power[bin] - lo) / span);
    const o = y * 4;
    img.data[o] = c[0]; img.data[o + 1] = c[1]; img.data[o + 2] = c[2];
    img.data[o + 3] = 255;
  }
  if (strip.x >= STRIP_W) { // scroll left by one column
    ctx.drawImage(strip.canvas, 1, 0, STRIP_W - 1, STRIP_H, 0, 0, STRIP_W - 1, STRIP_H);
    strip.x = STRIP_W - 1;
  }
  ctx.putImageData(img, strip.x, 0);
  strip.x += 1;
}
// ---- sparklines ----------------------------------------------------------
const sparks = {
  columns: { el: document.getElementById("spark-columns"), data: [] },
  requests: { el: document.getElementById("spark-requests"), data: [] },
  queue: { el: document.getElementById("spark-queue"), data: [] },
};
function pushSpark(name, value) {
  const s = sparks[name];
  s.data.push(value);
  if (s.data.length > 180) s.data.shift();
  const ctx = s.el.getContext("2d"), W = s.el.width, H = s.el.height;
  ctx.fillStyle = "#1a1a19"; ctx.fillRect(0, 0, W, H);
  ctx.strokeStyle = "#2c2c2a"; ctx.lineWidth = 1;
  ctx.beginPath(); ctx.moveTo(0, H - 0.5); ctx.lineTo(W, H - 0.5); ctx.stroke();
  const hi = Math.max(1e-9, ...s.data);
  ctx.strokeStyle = "#3987e5"; ctx.lineWidth = 2;
  ctx.beginPath();
  s.data.forEach((v, i) => {
    const x = (i / 179) * (W - 4) + 2;
    const y = H - 3 - (v / hi) * (H - 8);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  });
  ctx.stroke();
}
// ---- health timeline -----------------------------------------------------
const healthLog = [];
function pushHealth(session, state, reason) {
  healthLog.push({ session, state, reason, at: new Date() });
  if (healthLog.length > 40) healthLog.shift();
  const el = document.getElementById("health");
  el.innerHTML = healthLog.slice().reverse().map(h => {
    const color = STATUS[h.state] || "var(--text-muted)";
    return `<div style="margin:2px 0">` +
      `<span class="chip" style="border-color:${color};color:${color}">` +
      `${h.state}</span> <span style="color:var(--text-secondary)">` +
      `${h.session}</span> <span style="color:var(--text-muted)">` +
      `${h.reason || ""}</span></div>`;
  }).join("");
}
// ---- stat tiles + sessions table -----------------------------------------
let lastStats = null, lastStatsAt = 0;
function setTile(id, v) { document.getElementById(id).textContent = v; }
function onServerStats(ev) {
  const now = performance.now() / 1000;
  setTile("t-sessions", ev.active_sessions);
  setTile("t-queue", ev.queue_depth);
  setTile("t-columns", ev.server.columns_served);
  setTile("t-dropped", ev.hub ? ev.hub.events_dropped : 0);
  if (lastStats) {
    const dt = now - lastStatsAt || 1;
    const colRate = (ev.server.columns_served - lastStats.server.columns_served) / dt;
    const reqRate = (ev.server.requests - lastStats.server.requests) / dt;
    setTile("t-rate", colRate.toFixed(0));
    pushSpark("columns", Math.max(0, colRate));
    pushSpark("requests", Math.max(0, reqRate));
    pushSpark("queue", ev.queue_depth);
  }
  lastStats = ev; lastStatsAt = now;
}
// ---- fleet shard strip ---------------------------------------------------
const SHARD_STATE = {
  up: "var(--status-good)",
  draining: "var(--status-warning)",
  drained: "var(--text-muted)",
  down: "var(--status-critical)",
};
function renderShards(shards) {
  if (!shards || !shards.length) return;
  document.getElementById("shards-panel").style.display = "";
  const cards = shards.map(s => {
    const color = SHARD_STATE[s.state] || "var(--text-muted)";
    return `<div class="shard">` +
      `<div class="name"><span class="dot" style="background:${color}"></span>` +
      `${s.shard}<span class="meta" style="color:${color}">${s.state}</span></div>` +
      `<div class="row"><span class="k">sessions</span>` +
      `<span>${s.active_sessions ?? "?"}</span></div>` +
      `<div class="row"><span class="k">queue</span>` +
      `<span>${s.queue_depth ?? "?"}</span></div>` +
      `<div class="row"><span class="k">columns</span>` +
      `<span>${s.columns_served ?? "?"}</span></div>` +
      `<div class="row"><span class="k">restarts</span>` +
      `<span>${s.restarts ?? 0}</span></div>` +
      `<div class="row"><span class="k">pid</span>` +
      `<span>${s.pid ?? "-"}</span></div></div>`;
  });
  document.getElementById("shards").innerHTML = cards.join("");
}
async function refreshSessions() {
  try {
    const res = await fetch("/api/sessions");
    const body = await res.json();
    const rows = (body.sessions || []).map(s =>
      `<tr><td>${s.session}</td><td>${s.health || "?"}</td>` +
      `<td>${s.last_seq ?? ""}</td><td>${s.pushes ?? ""}</td>` +
      `<td>${s.columns_out ?? s.events ?? ""}</td><td>${s.detections ?? ""}</td>` +
      `<td>${s.shed_requests ?? ""}</td><td>${s.bad_blocks ?? ""}</td></tr>`);
    document.querySelector("#sessions-table tbody").innerHTML = rows.join("");
  } catch (err) { /* gateway restarting; retry on the next beat */ }
}
setInterval(refreshSessions, 2000);
refreshSessions();
// ---- the live stream -----------------------------------------------------
let totalColumns = 0;
function onEvent(ev) {
  switch (ev.kind) {
    case "hello":
      document.getElementById("mode").textContent = " · mode: " + ev.mode;
      if (ev.dsp_backend)
        document.getElementById("backend").textContent =
          " · dsp: " + ev.dsp_backend;
      break;
    case "columns": {
      const strip = stripFor(ev.session);
      for (const col of ev.columns) drawColumn(strip, columnPower(col));
      strip.columns += ev.columns.length;
      totalColumns += ev.columns.length;
      strip.meta.textContent = `${strip.columns} columns`;
      if (!lastStats) setTile("t-columns", totalColumns);
      break;
    }
    case "health":
      for (const e of (ev.events || [ev]))
        pushHealth(ev.session || "?", e.state, e.reason);
      break;
    case "session.opened":
      stripFor(ev.session);
      setTile("t-sessions", ev.active_sessions);
      break;
    case "session.closed":
      setTile("t-sessions", ev.active_sessions);
      break;
    case "server.stats":
      onServerStats(ev);
      break;
    case "fleet.shards":
      renderShards(ev.shards);
      break;
    case "fleet.drain":
    case "fleet.restart":
      pushHealth(ev.shard || "fleet", ev.kind.toUpperCase(),
                 JSON.stringify(ev));
      break;
    case "serve.shed":
    case "serve.watchdog":
    case "gap":
    case "fault":
      pushHealth(ev.session || "server", ev.kind.toUpperCase(), JSON.stringify(ev));
      break;
    case "replay.end":
      document.getElementById("conn").textContent =
        `replay complete (${ev.events} events)`;
      break;
  }
}
function connect() {
  const proto = location.protocol === "https:" ? "wss:" : "ws:";
  const ws = new WebSocket(`${proto}//${location.host}/ws/live`);
  ws.onopen = () => { document.getElementById("conn").textContent = "live"; };
  ws.onmessage = (msg) => onEvent(JSON.parse(msg.data));
  ws.onclose = () => {
    document.getElementById("conn").textContent = "disconnected — retrying";
    setTimeout(connect, 2000);
  };
}
connect();
</script>
</body>
</html>
"""
