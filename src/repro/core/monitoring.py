"""Nulling-health monitoring and recalibration policy.

Nulling is a snapshot: the precoder cancels the static channel *as it
was measured*.  When the static environment drifts — a door opens, the
radio's cart is nudged, temperature shifts the cables — the residual DC
grows and the flash starts leaking back.  A deployed device needs a
policy for noticing and re-running Algorithm 1.

`NullingMonitor` watches the DC level of captured traces against the
level recorded at calibration and flags when the achieved suppression
has eroded by more than a budget; `AutoCalibratingDevice` wraps a
`WiViDevice` with that policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.nulling import NullingResult
from repro.simulator.device import WiViDevice
from repro.simulator.timeseries import ChannelSeries


def dc_level(series: ChannelSeries) -> float:
    """The trace's static-residual magnitude: |mean of the samples|.

    Moving returns and noise average toward zero over a trace; the DC
    survives.
    """
    return float(np.abs(np.mean(series.samples)))


@dataclass
class NullingMonitor:
    """Tracks residual growth against the calibration-time baseline.

    Attributes:
        erosion_budget_db: how much the suppression may erode before
            recalibration is demanded.  10 dB keeps the residual well
            clear of the ADC ceiling headroom the power boost consumed.
    """

    erosion_budget_db: float = 10.0
    baseline_level: float | None = None
    history_db: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.erosion_budget_db <= 0:
            raise ValueError("erosion budget must be positive")

    def set_baseline(self, series: ChannelSeries) -> None:
        """Record the post-calibration DC level."""
        level = dc_level(series)
        self.baseline_level = max(level, 1e-30)
        self.history_db.clear()

    def erosion_db(self, series: ChannelSeries) -> float:
        """How far the residual has grown over the baseline (dB)."""
        if self.baseline_level is None:
            raise RuntimeError("set_baseline() first")
        level = max(dc_level(series), 1e-30)
        value = 20.0 * np.log10(level / self.baseline_level)
        self.history_db.append(float(value))
        return float(value)

    def needs_recalibration(self, series: ChannelSeries) -> bool:
        """Whether this trace's residual exceeds the budget."""
        return self.erosion_db(series) > self.erosion_budget_db


@dataclass
class AutoCalibratingDevice:
    """A `WiViDevice` that re-runs Algorithm 1 when nulling erodes.

    Usage::

        auto = AutoCalibratingDevice(device)
        series = auto.capture(10.0)   # recalibrates transparently
    """

    device: WiViDevice
    monitor: NullingMonitor = field(default_factory=NullingMonitor)
    recalibration_count: int = 0

    def _calibrate_and_baseline(self) -> NullingResult:
        result = self.device.calibrate()
        baseline = self.device.capture(1.0)
        self.monitor.set_baseline(baseline)
        return result

    def capture(self, duration_s: float) -> ChannelSeries:
        """Capture a trace, recalibrating first if the last one eroded."""
        if not self.device.is_calibrated:
            self._calibrate_and_baseline()
        series = self.device.capture(duration_s)
        if self.monitor.needs_recalibration(series):
            self.recalibration_count += 1
            self._calibrate_and_baseline()
            series = self.device.capture(duration_s)
        return series
