"""Nulling-health monitoring, capture screening, and recovery policy.

Nulling is a snapshot: the precoder cancels the static channel *as it
was measured*.  When the static environment drifts — a door opens, the
radio's cart is nudged, temperature shifts the cables — the residual DC
grows and the flash starts leaking back.  A deployed device needs a
policy for noticing and re-running Algorithm 1.

Three layers, bottom up:

* `NullingMonitor` watches the DC level of captured traces against the
  level recorded at calibration and flags when the achieved suppression
  has eroded by more than a budget; `AutoCalibratingDevice` wraps a
  `WiViDevice` with that policy alone.
* :func:`screen_series` / :func:`sanitize_series` — NaN/saturation/
  dead-air screening of the capture path, with bounded in-place repair.
* :class:`HealthStateMachine` + :class:`ResilientDevice` — the
  HEALTHY → DEGRADED → RECALIBRATING → FAILED device health machine
  with hysteresis and recovery counters, driving captures through
  screening, erosion checks, retried recalibration, and (optionally) a
  :class:`repro.faults.FaultInjector` at the hardware boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.nulling import NullingResult
from repro.core.tracking import MotionSpectrogram, compute_spectrogram
from repro.errors import CalibrationError, CaptureQualityError, DeviceFailedError
from repro.faults.injector import FaultInjector
from repro.simulator.device import WiViDevice
from repro.simulator.timeseries import ChannelSeries
from repro.telemetry.context import get_telemetry


def dc_level(series: ChannelSeries) -> float:
    """The trace's static-residual magnitude: |mean of the samples|.

    Moving returns and noise average toward zero over a trace; the DC
    survives.
    """
    return float(np.abs(np.mean(series.samples)))


@dataclass
class NullingMonitor:
    """Tracks residual growth against the calibration-time baseline.

    Attributes:
        erosion_budget_db: how much the suppression may erode before
            recalibration is demanded.  10 dB keeps the residual well
            clear of the ADC ceiling headroom the power boost consumed.
    """

    erosion_budget_db: float = 10.0
    baseline_level: float | None = None
    history_db: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.erosion_budget_db <= 0:
            raise ValueError("erosion budget must be positive")

    def set_baseline(self, series: ChannelSeries) -> None:
        """Record the post-calibration DC level."""
        level = dc_level(series)
        self.baseline_level = max(level, 1e-30)
        self.history_db.clear()

    def erosion_db(self, series: ChannelSeries) -> float:
        """How far the residual has grown over the baseline (dB)."""
        if self.baseline_level is None:
            raise RuntimeError("set_baseline() first")
        level = max(dc_level(series), 1e-30)
        value = 20.0 * np.log10(level / self.baseline_level)
        self.history_db.append(float(value))
        return float(value)

    def needs_recalibration(self, series: ChannelSeries) -> bool:
        """Whether this trace's residual exceeds the budget."""
        return self.erosion_db(series) > self.erosion_budget_db


@dataclass
class AutoCalibratingDevice:
    """A `WiViDevice` that re-runs Algorithm 1 when nulling erodes.

    Usage::

        auto = AutoCalibratingDevice(device)
        series = auto.capture(10.0)   # recalibrates transparently
    """

    device: WiViDevice
    monitor: NullingMonitor = field(default_factory=NullingMonitor)
    recalibration_count: int = 0

    def _calibrate_and_baseline(self) -> NullingResult:
        result = self.device.calibrate()
        baseline = self.device.capture(1.0)
        self.monitor.set_baseline(baseline)
        return result

    def capture(self, duration_s: float) -> ChannelSeries:
        """Capture a trace, recalibrating first if the last one eroded."""
        if not self.device.is_calibrated:
            self._calibrate_and_baseline()
        series = self.device.capture(duration_s)
        if self.monitor.needs_recalibration(series):
            self.recalibration_count += 1
            self._calibrate_and_baseline()
            series = self.device.capture(duration_s)
        return series


# ----------------------------------------------------------------------
# Capture screening
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaptureHealth:
    """Screening verdict for one captured trace.

    Attributes:
        nan_fraction: fraction of non-finite samples (DMA/driver
            corruption — NaN bursts).
        zero_fraction: fraction of exactly-zero samples (dead air: the
            host dropped buffers and the stream delivered nothing).
        saturation_fraction: fraction of samples sitting on the
            amplitude rails (ADC clipping — the flash re-entering).
    """

    nan_fraction: float
    zero_fraction: float
    saturation_fraction: float

    @property
    def damaged_fraction(self) -> float:
        """Fraction of samples carrying no usable signal."""
        return self.nan_fraction + self.zero_fraction


def screen_series(series: ChannelSeries) -> CaptureHealth:
    """Screen a capture for NaN bursts, dead air, and saturation.

    Saturation is detected as a *plateau*: the fraction of samples
    whose I or Q rail sits within 0.1 % of the capture's maximum rail
    excursion.  Clean noise-bearing captures place only O(1/n) samples
    there; a clipped episode parks every affected sample on the rail.
    """
    samples = np.asarray(series.samples)
    n = len(samples)
    if n == 0:
        raise ValueError("cannot screen an empty capture")
    finite = np.isfinite(samples)
    nan_fraction = float(np.mean(~finite))
    zero_fraction = float(np.mean(samples[finite] == 0.0)) if finite.any() else 0.0
    saturation_fraction = 0.0
    if finite.any():
        rails = np.maximum(
            np.abs(samples[finite].real), np.abs(samples[finite].imag)
        )
        peak = float(rails.max())
        if peak > 0.0:
            saturation_fraction = float(np.mean(rails >= 0.999 * peak))
    return CaptureHealth(
        nan_fraction=nan_fraction,
        zero_fraction=zero_fraction,
        saturation_fraction=saturation_fraction,
    )


def sanitize_series(series: ChannelSeries) -> tuple[ChannelSeries, int]:
    """Repair a lightly-damaged capture by linear interpolation.

    Non-finite and exactly-zero samples are reconstructed rail-by-rail
    from their finite neighbours.  Returns the repaired series and the
    number of samples touched.

    Raises:
        CaptureQualityError: fewer than two usable samples remain.
    """
    samples = np.array(series.samples, dtype=complex)
    bad = ~np.isfinite(samples)
    bad |= np.where(bad, False, samples == 0.0)
    repaired = int(np.count_nonzero(bad))
    if repaired == 0:
        return series, 0
    good = np.flatnonzero(~bad)
    if len(good) < 2:
        raise CaptureQualityError(
            "capture beyond repair: fewer than two usable samples"
        )
    bad_indices = np.flatnonzero(bad)
    samples[bad_indices] = np.interp(
        bad_indices, good, samples[good].real
    ) + 1j * np.interp(bad_indices, good, samples[good].imag)
    return replace(series, samples=samples), repaired


# ----------------------------------------------------------------------
# Device health-state machine
# ----------------------------------------------------------------------


class DeviceHealth(enum.Enum):
    """Operational state of a deployed Wi-Vi unit."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    RECALIBRATING = "recalibrating"
    FAILED = "failed"


@dataclass(frozen=True)
class HealthTransition:
    """One edge taken by the health machine, for the audit trail."""

    capture_index: int
    source: DeviceHealth
    target: DeviceHealth
    reason: str


@dataclass(frozen=True)
class RecoveryPolicy:
    """Thresholds and hysteresis of the recovery pipeline.

    Attributes:
        max_repairable_fraction: captures with at most this fraction of
            damaged (NaN/zero) samples are sanitized in place and the
            device merely degrades; beyond it the capture is discarded.
        max_saturation_fraction: clipped captures beyond this fraction
            are discarded (clipping cannot be interpolated away).
        recover_after_good: consecutive clean captures required to
            climb DEGRADED → HEALTHY (hysteresis: one good capture
            does not prove recovery).
        recalibrate_after_bad: consecutive bad captures that push
            DEGRADED → RECALIBRATING.
        max_capture_attempts: discarded-capture retries per
            :meth:`ResilientDevice.capture` call before declaring the
            device FAILED.
        calibration_attempts: bounded retries inside each
            recalibration (see :func:`run_nulling_with_retry`).
        max_recalibration_failures: failed recalibrations tolerated
            before FAILED.
    """

    max_repairable_fraction: float = 0.1
    max_saturation_fraction: float = 0.05
    recover_after_good: int = 2
    recalibrate_after_bad: int = 2
    max_capture_attempts: int = 3
    calibration_attempts: int = 3
    max_recalibration_failures: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.max_repairable_fraction < 1:
            raise ValueError("repairable fraction must be in [0, 1)")
        if not 0 < self.max_saturation_fraction < 1:
            raise ValueError("saturation fraction must be in (0, 1)")
        for name in (
            "recover_after_good",
            "recalibrate_after_bad",
            "max_capture_attempts",
            "calibration_attempts",
            "max_recalibration_failures",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


class HealthStateMachine:
    """HEALTHY → DEGRADED → RECALIBRATING → FAILED with hysteresis.

    Transitions (reasons are recorded in ``transitions``):

    * HEALTHY --bad capture--> DEGRADED
    * DEGRADED --``recalibrate_after_bad`` consecutive bad--> RECALIBRATING
    * DEGRADED --``recover_after_good`` consecutive good--> HEALTHY
    * any live state --nulling erosion over budget--> RECALIBRATING
    * RECALIBRATING --calibration success--> DEGRADED (a recalibrated
      device must still *prove* itself with clean captures)
    * RECALIBRATING --``max_recalibration_failures`` failures--> FAILED
    """

    def __init__(self, policy: RecoveryPolicy | None = None):
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.state = DeviceHealth.HEALTHY
        self.transitions: list[HealthTransition] = []
        self.capture_index = 0
        self.recovery_count = 0
        self.recalibration_count = 0
        self._good_streak = 0
        self._bad_streak = 0
        self._recalibration_failures = 0

    def _move(self, target: DeviceHealth, reason: str) -> None:
        if target is self.state:
            return
        self.transitions.append(
            HealthTransition(
                capture_index=self.capture_index,
                source=self.state,
                target=target,
                reason=reason,
            )
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("health.transitions").inc()
            telemetry.events.emit(
                "health.transition",
                capture_index=self.capture_index,
                source=self.state.value,
                target=target.value,
                reason=reason,
            )
        self.state = target

    def state_sequence(self) -> list[DeviceHealth]:
        """The distinct states visited, in order (starts HEALTHY)."""
        return [DeviceHealth.HEALTHY] + [t.target for t in self.transitions]

    def record_good(self) -> None:
        """A clean capture landed."""
        self._assert_live()
        self._good_streak += 1
        self._bad_streak = 0
        if (
            self.state is DeviceHealth.DEGRADED
            and self._good_streak >= self.policy.recover_after_good
        ):
            self.recovery_count += 1
            self._move(
                DeviceHealth.HEALTHY,
                f"{self._good_streak} consecutive clean captures",
            )

    def record_bad(self, reason: str) -> None:
        """A damaged capture landed (repaired or discarded)."""
        self._assert_live()
        self._bad_streak += 1
        self._good_streak = 0
        if self.state is DeviceHealth.HEALTHY:
            self._move(DeviceHealth.DEGRADED, reason)
        elif (
            self.state is DeviceHealth.DEGRADED
            and self._bad_streak >= self.policy.recalibrate_after_bad
        ):
            self._move(
                DeviceHealth.RECALIBRATING,
                f"{self._bad_streak} consecutive bad captures: {reason}",
            )

    def demand_recalibration(self, reason: str) -> None:
        """Erosion (or an operator) demands Algorithm 1 re-run now."""
        self._assert_live()
        self._good_streak = 0
        self._bad_streak = 0
        self._move(DeviceHealth.RECALIBRATING, reason)

    def recalibration_succeeded(self) -> None:
        self._assert_live()
        self._recalibration_failures = 0
        self.recalibration_count += 1
        self._good_streak = 0
        self._bad_streak = 0
        self._move(DeviceHealth.DEGRADED, "recalibration succeeded")

    def recalibration_failed(self, reason: str) -> None:
        self._assert_live()
        self._recalibration_failures += 1
        if self._recalibration_failures >= self.policy.max_recalibration_failures:
            self._move(
                DeviceHealth.FAILED,
                f"{self._recalibration_failures} recalibration failures: {reason}",
            )

    def fail(self, reason: str) -> None:
        self._move(DeviceHealth.FAILED, reason)

    def snapshot_state(self) -> dict:
        """JSON-able machine state for serving-session checkpoints.

        Captures everything the transition logic depends on — state,
        streaks, failure budget, counters — but not the transition
        *history*: a resumed machine records only the transitions it
        makes from here on, against the same policy thresholds.
        """
        return {
            "state": self.state.value,
            "capture_index": self.capture_index,
            "recovery_count": self.recovery_count,
            "recalibration_count": self.recalibration_count,
            "good_streak": self._good_streak,
            "bad_streak": self._bad_streak,
            "recalibration_failures": self._recalibration_failures,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Load a :meth:`snapshot_state` dict into this machine.

        Raises:
            ValueError: unknown state name, missing field, or a
                negative counter.
        """
        try:
            state = DeviceHealth(snapshot["state"])
            counters = {
                name: int(snapshot[name])
                for name in (
                    "capture_index",
                    "recovery_count",
                    "recalibration_count",
                    "good_streak",
                    "bad_streak",
                    "recalibration_failures",
                )
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed health snapshot: {exc}") from None
        if any(value < 0 for value in counters.values()):
            raise ValueError("health snapshot counters cannot be negative")
        self.state = state
        self.capture_index = counters["capture_index"]
        self.recovery_count = counters["recovery_count"]
        self.recalibration_count = counters["recalibration_count"]
        self._good_streak = counters["good_streak"]
        self._bad_streak = counters["bad_streak"]
        self._recalibration_failures = counters["recalibration_failures"]

    def _assert_live(self) -> None:
        if self.state is DeviceHealth.FAILED:
            raise DeviceFailedError("device health machine is FAILED")


# ----------------------------------------------------------------------
# The resilient device
# ----------------------------------------------------------------------


class ResilientDevice:
    """A `WiViDevice` hardened for unattended operation.

    Every capture flows through the full degradation pipeline: optional
    fault injection at the hardware boundary, NaN/saturation/dead-air
    screening with bounded repair, nulling-erosion monitoring, retried
    recalibration with backoff, and the health-state machine.

    Usage::

        injector = FaultInjector(FaultSchedule.generate(config, 30.0, seed))
        device = ResilientDevice(WiViDevice(scene, rng), injector=injector)
        spectrogram = device.image(10.0)   # never raises on injected faults
        device.machine.state_sequence()    # the health audit trail
    """

    def __init__(
        self,
        device: WiViDevice,
        injector: FaultInjector | None = None,
        monitor: NullingMonitor | None = None,
        policy: RecoveryPolicy | None = None,
    ):
        self.device = device
        self.injector = injector
        self.monitor = monitor if monitor is not None else NullingMonitor()
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.machine = HealthStateMachine(self.policy)
        #: Machine state observed after each returned capture.
        self.health_trace: list[DeviceHealth] = []
        #: Samples repaired by sanitization, lifetime total.
        self.repaired_sample_count = 0

    # -- internals ------------------------------------------------------

    def _raw_capture(self, duration_s: float) -> ChannelSeries:
        start_s = self.device.clock_s
        series = self.device.capture(duration_s)
        if self.injector is not None:
            series = self.injector.corrupt_series(series, start_s)
        return series

    def _recalibrate(self, reason: str, initial: bool = False) -> None:
        """Run Algorithm 1 under the retry policy and re-baseline."""
        if not initial and self.machine.state is not DeviceHealth.RECALIBRATING:
            self.machine.demand_recalibration(reason)
        try:
            self.device.calibrate_with_retry(
                max_attempts=self.policy.calibration_attempts
            )
        except CalibrationError as exc:
            if initial:
                self.machine.fail(f"initial calibration failed: {exc}")
                raise
            self.machine.recalibration_failed(str(exc))
            if self.machine.state is DeviceHealth.FAILED:
                raise DeviceFailedError(
                    f"device failed during recalibration: {exc}"
                ) from exc
            return
        if self.injector is not None:
            # The fresh null absorbs any static-channel steps so far.
            self.injector.notify_recalibrated(self.device.clock_s)
        baseline = self._raw_capture(1.0)
        baseline, repaired = sanitize_series(baseline)
        self.repaired_sample_count += repaired
        self.monitor.set_baseline(baseline)
        if not initial:
            self.machine.recalibration_succeeded()

    # -- public surface -------------------------------------------------

    def capture(self, duration_s: float) -> ChannelSeries:
        """Capture a usable trace, degrading and recovering as needed.

        Raises:
            DeviceFailedError: the health machine reached FAILED.
            CaptureQualityError: every attempt produced an unusable
                capture (the machine is failed as a side effect).
        """
        if self.machine.state is DeviceHealth.FAILED:
            raise DeviceFailedError("device is FAILED; no captures possible")
        if not self.device.is_calibrated:
            self._recalibrate("initial calibration", initial=True)
        for _ in range(self.policy.max_capture_attempts):
            self.machine.capture_index += 1
            series = self._raw_capture(duration_s)
            health = screen_series(series)
            if (
                health.saturation_fraction > self.policy.max_saturation_fraction
                or health.damaged_fraction > self.policy.max_repairable_fraction
            ):
                self.machine.record_bad(
                    f"capture discarded (nan={health.nan_fraction:.3f}, "
                    f"zero={health.zero_fraction:.3f}, "
                    f"sat={health.saturation_fraction:.3f})"
                )
                if self.machine.state is DeviceHealth.RECALIBRATING:
                    self._recalibrate("bad-capture escalation")
                continue
            repaired = 0
            if health.damaged_fraction > 0:
                series, repaired = sanitize_series(series)
                self.repaired_sample_count += repaired
            if self.monitor.baseline_level is not None and (
                self.monitor.needs_recalibration(series)
            ):
                erosion = self.monitor.history_db[-1]
                self._recalibrate(f"nulling eroded {erosion:.1f} dB over budget")
                continue
            if repaired:
                self.machine.record_bad(f"sanitized {repaired} samples")
                if self.machine.state is DeviceHealth.RECALIBRATING:
                    self._recalibrate("repeated damaged captures")
            else:
                self.machine.record_good()
            self.health_trace.append(self.machine.state)
            return series
        self.machine.fail(
            f"{self.policy.max_capture_attempts} unusable captures in a row"
        )
        raise CaptureQualityError(
            f"no usable capture in {self.policy.max_capture_attempts} attempts"
        )

    def image(self, duration_s: float) -> MotionSpectrogram:
        """Capture and image with the degeneracy-guarded pipeline."""
        series = self.capture(duration_s)
        return compute_spectrogram(series.samples, self.device.config.tracking)
