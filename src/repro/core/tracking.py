"""The tracking pipeline: channel series -> A'[theta, n] spectrogram.

This reproduces the processing behind Figs. 5-2, 5-3, and 7-2: group
the nulled channel measurements into overlapping emulated-array windows
of w = 100 samples spanning 0.32 s (§7.1), run smoothed MUSIC on each
window, and stack the spectra over time.

The DC line at theta = 0 — "the average energy from static elements"
left by minuscule nulling errors (§5.1) — appears naturally because a
constant residual has a flat phase history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    CHANNEL_SAMPLE_PERIOD_S,
    DEFAULT_HUMAN_SPEED_MPS,
    ISAR_ARRAY_SIZE,
    WAVELENGTH_M,
)
from repro.core.beamforming import (
    default_theta_grid,
    element_spacing_m,
    inverse_aoa_spectrum,
)
from repro.dsp.backend import DspBackend, active_backend
from repro.dsp.eig import REASON_OK
from repro.dsp.windows import sliding_windows
from repro.telemetry.context import get_telemetry

#: Estimator labels recorded per spectrogram frame.
ESTIMATOR_MUSIC = "music"
ESTIMATOR_BEAMFORMING = "beamforming"


@dataclass(frozen=True)
class TrackingConfig:
    """Parameters of the spectrogram pipeline.

    Defaults follow §7.1: w = 100 elements per 0.32 s window, an
    assumed speed of 1 m/s, angles [-90, 90] at 1 degree.
    """

    window_size: int = ISAR_ARRAY_SIZE
    hop: int = 25
    assumed_speed_mps: float = DEFAULT_HUMAN_SPEED_MPS
    sample_period_s: float = CHANNEL_SAMPLE_PERIOD_S
    subarray_size: int = 32
    max_sources: int = 5
    theta_step_deg: float = 1.0
    wavelength_m: float = WAVELENGTH_M
    #: MUSIC degeneracy guard: windows whose smoothed covariance has an
    #: eigenvalue spread beyond this fall back to plain Eq. 5.1
    #: beamforming (recorded in ``MotionSpectrogram.estimators``).
    condition_limit: float = 1e12

    def __post_init__(self) -> None:
        if self.window_size < 4:
            raise ValueError("window too small to beamform")
        if not 1 < self.subarray_size < self.window_size:
            raise ValueError("subarray size must be in (1, window size)")
        if self.hop < 1:
            raise ValueError("hop must be positive")
        if self.condition_limit <= 1:
            raise ValueError("condition limit must exceed 1")

    @property
    def spacing_m(self) -> float:
        return element_spacing_m(self.assumed_speed_mps, self.sample_period_s)

    @property
    def theta_grid_deg(self) -> np.ndarray:
        return default_theta_grid(self.theta_step_deg)


@dataclass
class MotionSpectrogram:
    """A'[theta, n] over a trace.

    Attributes:
        times_s: centre time of each window.
        theta_grid_deg: angle axis.
        power: linear pseudospectrum magnitudes, shape
            (num_windows, num_angles).
        source_counts: signal-subspace size per window.
        window_overlap: how many consecutive rows share samples
            (window_size / hop); consumers that whiten noise across
            rows (the gesture decoder) need this.
        estimators: which estimator produced each frame —
            ``"music"`` or ``"beamforming"`` (the degeneracy
            fallback).  Empty for spectrograms built before the guard
            existed or by consumers that do not record it.
    """

    times_s: np.ndarray
    theta_grid_deg: np.ndarray
    power: np.ndarray
    source_counts: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    window_overlap: int = 4
    estimators: np.ndarray = field(default_factory=lambda: np.array([], dtype=object))

    @property
    def num_windows(self) -> int:
        return self.power.shape[0]

    @property
    def fallback_fraction(self) -> float:
        """Fraction of frames produced by the beamforming fallback."""
        if len(self.estimators) == 0:
            return 0.0
        return float(np.mean(self.estimators == ESTIMATOR_BEAMFORMING))

    def normalized_db(self, floor_db: float = 0.0) -> np.ndarray:
        """Per-window dB image with the minimum pinned to ``floor_db``.

        This is the image the spatial-variance metric integrates and
        the benches render.
        """
        magnitudes = np.maximum(self.power, np.finfo(float).tiny)
        db = 20.0 * np.log10(magnitudes)
        db -= db.min(axis=1, keepdims=True)
        return db + floor_db

    def dominant_angles_deg(self, exclude_dc_deg: float = 0.0) -> np.ndarray:
        """Strongest angle per window, optionally masking the DC stripe.

        ``exclude_dc_deg`` masks angles with |theta| below the value,
        so the moving target dominates rather than the DC line.
        """
        mask = np.abs(self.theta_grid_deg) >= exclude_dc_deg
        if not np.any(mask):
            raise ValueError("DC exclusion masks every angle")
        masked = np.where(mask, self.power, -np.inf)
        return self.theta_grid_deg[np.argmax(masked, axis=1)]


def compute_beamformed_spectrogram(
    channel_series: np.ndarray,
    config: TrackingConfig | None = None,
    start_time_s: float = 0.0,
    remove_window_mean: bool = True,
) -> MotionSpectrogram:
    """Plain Eq. 5.1 beamforming over sliding windows.

    Unlike the MUSIC pseudospectrum, |A[theta, n]| is *physical*: it
    scales with the received reflection amplitude.  The gesture decoder
    uses this spectrogram so that its matched-filter SNR falls off with
    distance the way the paper measures (Figs. 7-4, 7-5); the paper
    notes the two representations produce the same figures, MUSIC just
    being less noisy (§5.2 fn. 6).

    The per-window mean (the DC residual) is removed by default so that
    weak gestures are not masked by DC x signal cross terms.
    """
    from repro.core.beamforming import beamformed_spectrogram

    config = config if config is not None else TrackingConfig()
    series = np.asarray(channel_series, dtype=complex)
    if series.ndim != 1:
        raise ValueError("channel series must be one-dimensional")
    if len(series) < config.window_size:
        raise ValueError("series shorter than one window")
    starts, magnitudes = beamformed_spectrogram(
        series,
        config.window_size,
        config.hop,
        config.theta_grid_deg,
        config.spacing_m,
        config.wavelength_m,
        remove_window_mean=remove_window_mean,
    )
    times = start_time_s + (starts + config.window_size / 2.0) * config.sample_period_s
    return MotionSpectrogram(
        times_s=times,
        theta_grid_deg=config.theta_grid_deg,
        power=magnitudes,
        source_counts=np.zeros(len(starts), dtype=int),
        window_overlap=max(config.window_size // config.hop, 1),
        estimators=np.full(len(starts), ESTIMATOR_BEAMFORMING, dtype=object),
    )


def compute_diversity_spectrogram(
    channel_series_list: list[np.ndarray],
    config: TrackingConfig | None = None,
    start_time_s: float = 0.0,
    use_music: bool = True,
) -> MotionSpectrogram:
    """Combine per-subcarrier captures in the power domain.

    §7.1: "The channel measurements across the different subcarriers
    are combined to improve the SNR."  This is the *non-coherent*
    variant: each stream is processed to its own A'[theta, n] and the
    squared magnitudes are averaged, which steadies the image against
    independent per-stream noise.  (For the stronger coherent noise
    averaging, combine the channel series first with
    :meth:`repro.simulator.timeseries.ChannelSeriesSimulator.combine_diversity_series`;
    in a 5 MHz band the subcarriers fade together, so neither variant
    provides fading diversity — see the ablation bench.)

    Every per-stream pass shares the process-wide steering cache
    (:mod:`repro.dsp.steering`), so the table is built once for the
    whole subcarrier set rather than once per stream.
    """
    if not channel_series_list:
        raise ValueError("need at least one subcarrier stream")
    compute = compute_spectrogram if use_music else compute_beamformed_spectrogram
    first = compute(channel_series_list[0], config, start_time_s)
    combined_power = first.power.astype(float) ** 2
    for series in channel_series_list[1:]:
        spectrogram = compute(series, config, start_time_s)
        if spectrogram.power.shape != combined_power.shape:
            raise ValueError("subcarrier streams must share a time base")
        combined_power += spectrogram.power**2
    return MotionSpectrogram(
        times_s=first.times_s,
        theta_grid_deg=first.theta_grid_deg,
        power=np.sqrt(combined_power / len(channel_series_list)),
        source_counts=first.source_counts,
        window_overlap=first.window_overlap,
        estimators=first.estimators,
    )


def _beamformed_fallback_rows(
    windows: np.ndarray,
    config: TrackingConfig,
    backend: DspBackend | None = None,
) -> np.ndarray:
    """Plain Eq. 5.1 spectra for a stack of windows MUSIC rejected.

    Non-finite samples (a NaN burst the screen let through) are zeroed
    first: beamforming degrades gracefully with missing elements,
    whereas a single NaN would poison the whole row.  The steering
    table comes from the shared :mod:`repro.dsp.steering` cache (in
    the backend's dtype), so fallback-heavy fault-injection runs stop
    rebuilding it per window.
    """
    backend = backend if backend is not None else active_backend()
    return backend.beamform_fallback_batch(windows, config)


@dataclass(frozen=True)
class SpectrogramFrame:
    """One window's worth of the A'[theta, n] image.

    The unit both the offline :func:`compute_spectrogram` loop and the
    streaming tracker (:mod:`repro.runtime.tracker`) emit — sharing
    :func:`compute_spectrogram_frame` is what makes their outputs
    bit-identical on the same windows.
    """

    power: np.ndarray
    num_sources: int
    estimator: str


def compute_spectrogram_frame(
    window: np.ndarray,
    config: TrackingConfig,
    backend: DspBackend | None = None,
) -> SpectrogramFrame:
    """Estimate a single emulated-array window under the degeneracy guard.

    Runs smoothed MUSIC; a window whose covariance the guard rejects —
    saturated, dead, or corrupted — falls back to plain Eq. 5.1
    beamforming, with the chosen estimator recorded in the frame.

    A batch of one through :func:`estimate_windows_batch` on the same
    backend, so streaming columns stay bit-identical to
    :func:`compute_spectrogram` rows over the same windows — per
    backend, by the batch-stability contract.
    """
    window = np.asarray(window, dtype=complex)
    if window.ndim != 1:
        raise ValueError("window must be one-dimensional")
    power, counts, estimators = estimate_windows_batch(
        window[np.newaxis, :], config, backend=backend
    )
    return SpectrogramFrame(
        power=power[0],
        num_sources=int(counts[0]),
        estimator=str(estimators[0]),
    )


def compute_beamformed_frame(
    window: np.ndarray, config: TrackingConfig, remove_window_mean: bool = True
) -> SpectrogramFrame:
    """Plain Eq. 5.1 estimate of a single window.

    The per-window counterpart of :func:`compute_beamformed_spectrogram`
    (identical arithmetic; the streaming tracker uses it for the
    gesture-grade physical-magnitude spectrogram).
    """
    window = np.asarray(window, dtype=complex)
    if remove_window_mean:
        window = window - window.mean()
    return SpectrogramFrame(
        power=inverse_aoa_spectrum(
            window, config.theta_grid_deg, config.spacing_m, config.wavelength_m
        ),
        num_sources=0,
        estimator=ESTIMATOR_BEAMFORMING,
    )


def estimate_windows_batch(
    windows: np.ndarray,
    config: TrackingConfig,
    backend: DspBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Estimate a whole stack of windows through the batched kernels.

    The vectorized form of :func:`compute_spectrogram_frame`: the
    active :class:`~repro.dsp.backend.DspBackend` (or an explicit
    ``backend``) runs its fused smoothed-MUSIC pass over every window
    that can attempt MUSIC; the degeneracy guard runs as a vectorized
    screen, and the rejected windows are mask-and-patched with batched
    Eq. 5.1 beamforming.  Because every backend computes each window
    independently of its batch, the rows here are bit-identical to
    per-window :func:`compute_spectrogram_frame` calls on the same
    backend — the streaming tracker's golden-equivalence contract, and
    what lets the serving scheduler (:mod:`repro.serve.scheduler`)
    stack windows from *different* client sessions into one pass.

    On the default ``numpy-float64`` backend the kernel sequence (and
    its telemetry) is the exact pre-backend code path, bit for bit.

    Returns ``(power, source_counts, estimators)``.
    """
    backend = backend if backend is not None else active_backend()
    windows = np.asarray(windows, dtype=complex)
    num_windows, window_size = windows.shape
    theta_grid = config.theta_grid_deg
    power = np.empty((num_windows, len(theta_grid)))
    counts = np.zeros(num_windows, dtype=int)
    estimators = np.full(num_windows, ESTIMATOR_BEAMFORMING, dtype=object)
    telemetry = get_telemetry()

    # Windows with non-finite samples can never attempt MUSIC (the
    # covariance would poison the stacked eigh); they go straight to
    # the fallback, mirroring the per-window non-finite raise.
    finite = np.all(np.isfinite(windows), axis=1)
    reasons = np.full(num_windows, "non-finite", dtype=object)
    music_rows = np.flatnonzero(finite)
    if music_rows.size:
        result = backend.music_batch(windows[music_rows], config)
        if telemetry.enabled:
            windows_counter = telemetry.metrics.counter("music.windows")
            for row_values in result.eigenvalues:
                windows_counter.inc()
                telemetry.events.emit(
                    "music.eigenvalues",
                    eigenvalues=row_values,
                    window_size=window_size,
                    subarray_size=config.subarray_size,
                )
        reasons[music_rows] = result.reasons
        passed = result.reasons == REASON_OK
        ok_rows = music_rows[passed]
        if ok_rows.size:
            power[ok_rows] = result.power[passed]
            counts[ok_rows] = result.source_counts[passed]
            estimators[ok_rows] = ESTIMATOR_MUSIC

    fallback_rows = np.flatnonzero(reasons != REASON_OK)
    if fallback_rows.size:
        if telemetry.enabled:
            fallback_counter = telemetry.metrics.counter("music.fallbacks")
            for row in fallback_rows:
                fallback_counter.inc()
                telemetry.events.emit("music.fallback", reason=reasons[row])
        power[fallback_rows] = _beamformed_fallback_rows(
            windows[fallback_rows], config, backend=backend
        )
    return power, counts, estimators


def compute_spectrogram(
    channel_series: np.ndarray,
    config: TrackingConfig | None = None,
    start_time_s: float = 0.0,
) -> MotionSpectrogram:
    """Run the full pipeline on a nulled channel time series.

    Each window runs smoothed MUSIC under the degeneracy guard
    (``config.condition_limit``); a window whose covariance the guard
    rejects — saturated, dead, or corrupted — is estimated with plain
    beamforming instead, and the frame's entry in
    ``MotionSpectrogram.estimators`` records which path produced it.

    The whole trace is processed through the batched kernel layer
    (:mod:`repro.dsp`) — strided windows, one stacked covariance and
    eigendecomposition, shared steering tables — producing rows
    bit-identical to the per-window :func:`compute_spectrogram_frame`
    the streaming tracker calls.
    """
    config = config if config is not None else TrackingConfig()
    series = np.asarray(channel_series, dtype=complex)
    if series.ndim != 1:
        raise ValueError("channel series must be one-dimensional")
    if len(series) < config.window_size:
        raise ValueError(
            f"series of {len(series)} samples is shorter than one "
            f"window ({config.window_size})"
        )
    starts, windows = sliding_windows(series, config.window_size, config.hop)
    with get_telemetry().span(
        "tracking.spectrogram", windows=len(starts), samples=len(series)
    ):
        power, counts, estimators = estimate_windows_batch(windows, config)
    times = start_time_s + (starts + config.window_size / 2.0) * config.sample_period_s
    return MotionSpectrogram(
        times_s=times,
        theta_grid_deg=config.theta_grid_deg,
        power=power,
        source_counts=counts,
        window_overlap=max(config.window_size // config.hop, 1),
        estimators=estimators,
    )
