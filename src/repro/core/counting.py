"""Counting moving humans via spatial variance: §5.2, Eqs. 5.4-5.5.

"At any point in time, the larger the number of humans, the higher the
spatial variance."  The metric computes dB-weighted angular moments of
the MUSIC image:

    C[n]   = sum_theta theta   * 20 log10 A'[theta, n]        (Eq. 5.4)
    VAR[n] = sum_theta theta^2 * 20 log10 A'[theta, n] - C[n]^2  (Eq. 5.5)

averaged over the trace.  With 181 one-degree angle bins and dB values
in the tens, VAR lands in the tens of millions — matching the x-axis of
Fig. 7-3 ("in tens of millions").

Thresholds between 0/1/2/3 humans are learned from a training set and
applied to a held-out set from a *different room*, then
cross-validated, exactly the §7.4 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tracking import MotionSpectrogram


def spatial_centroid(db_image_row: np.ndarray, theta_grid_deg: np.ndarray) -> float:
    """C[n] of one spectrogram row (Eq. 5.4), in degrees.

    The centroid is the dB-weighted mean angle.  (Eq. 5.4 omits the
    weight normalisation; without it C^2 would dwarf the second moment
    in Eq. 5.5 and the variance would go negative, while Fig. 7-3's
    axis — "tens of millions" — matches the unnormalised second moment.
    We therefore read Eq. 5.4 as the weighted-mean angle.)
    """
    row = np.asarray(db_image_row, dtype=float)
    thetas = np.asarray(theta_grid_deg, dtype=float)
    if row.shape != thetas.shape:
        raise ValueError("row and angle grid must align")
    total = float(np.sum(row))
    if total <= 0:
        return 0.0
    return float(np.sum(thetas * row) / total)


def spatial_variance(
    db_image_row: np.ndarray, theta_grid_deg: np.ndarray, normalize: bool = False
) -> float:
    """VAR[n] of one spectrogram row (Eq. 5.5).

    With ``normalize=False`` (the literal paper form) this is the
    unnormalised dB-weighted second moment about the centroid:
    ``sum_theta theta^2 * 20 log10 A' - C^2``.  With 181 one-degree
    bins and dB values in the tens this lands in the tens of millions,
    matching Fig. 7-3's axis; it grows both with how *spread out* the
    energy is in angle and with how much moving energy there is.

    With ``normalize=True`` the weights are normalised to unit sum, so
    the result is a pure angular spread in degrees^2 — invariant to the
    received signal level, which makes it transfer between rooms of
    different size (the classifier feature; see §7.4 and
    EXPERIMENTS.md).
    """
    row = np.asarray(db_image_row, dtype=float)
    thetas = np.asarray(theta_grid_deg, dtype=float)
    if row.shape != thetas.shape:
        raise ValueError("row and angle grid must align")
    if normalize:
        total = float(np.sum(row))
        if total <= 0:
            return 0.0
        weights = row / total
        centroid = float(np.sum(thetas * weights))
        return float(np.sum(thetas**2 * weights) - centroid**2)
    centroid = spatial_centroid(row, thetas)
    return float(np.sum(thetas**2 * row) - centroid**2)


def trace_spatial_variance(
    spectrogram: MotionSpectrogram,
    normalize: bool = True,
    aggregate: str = "median",
) -> float:
    """The per-trace number §7.4 classifies on: VAR[n] aggregated over
    the duration of the measurement.

    Defaults to the *normalised* per-window variance (pure angular
    spread, invariant to signal level) aggregated by the median (robust
    to bright outlier windows) — the variant that transfers between
    training and testing rooms in our simulator.  Pass
    ``normalize=False, aggregate="mean"`` for the literal Eq. 5.5
    quantity plotted on Fig. 7-3's tens-of-millions axis.
    """
    if aggregate not in ("mean", "median"):
        raise ValueError("aggregate must be 'mean' or 'median'")
    db_image = spectrogram.normalized_db()
    thetas = spectrogram.theta_grid_deg
    variances = [spatial_variance(row, thetas, normalize) for row in db_image]
    reducer = np.median if aggregate == "median" else np.mean
    return float(reducer(variances))


@dataclass
class SpatialVarianceClassifier:
    """Threshold classifier over per-trace spatial variances.

    Learns one threshold between each pair of adjacent classes as the
    midpoint of the class means (the "simple heuristic" the paper found
    works well in practice, §5.2).
    """

    class_labels: list[int] = field(default_factory=list)
    thresholds: list[float] = field(default_factory=list)

    @property
    def is_fitted(self) -> bool:
        return bool(self.class_labels)

    def fit(self, variances_by_label: dict[int, np.ndarray]) -> "SpatialVarianceClassifier":
        """Learn thresholds from training traces.

        Args:
            variances_by_label: per-trace variance arrays keyed by the
                true number of moving humans.
        """
        if len(variances_by_label) < 2:
            raise ValueError("need at least two classes to learn thresholds")
        labels = sorted(variances_by_label)
        means = []
        for label in labels:
            values = np.asarray(variances_by_label[label], dtype=float)
            if values.size == 0:
                raise ValueError(f"class {label} has no training traces")
            means.append(float(values.mean()))
        if any(b <= a for a, b in zip(means, means[1:])):
            raise ValueError(
                "training class means are not increasing with the human "
                "count; the variance metric failed on this training set"
            )
        self.class_labels = labels
        self.thresholds = [(a + b) / 2.0 for a, b in zip(means, means[1:])]
        return self

    def predict(self, variance: float) -> int:
        """Classify one trace's spatial variance."""
        if not self.is_fitted:
            raise RuntimeError("classifier has not been fitted")
        for label, threshold in zip(self.class_labels, self.thresholds):
            if variance < threshold:
                return label
        return self.class_labels[-1]

    def predict_many(self, variances: np.ndarray) -> np.ndarray:
        return np.array([self.predict(float(v)) for v in np.asarray(variances)])


def confusion_matrix(
    true_labels: np.ndarray, predicted_labels: np.ndarray, labels: list[int]
) -> np.ndarray:
    """Row-normalized confusion matrix (fractions), rows = true class.

    This is the layout of Table 7.1.
    """
    true_array = np.asarray(true_labels)
    predicted_array = np.asarray(predicted_labels)
    if true_array.shape != predicted_array.shape:
        raise ValueError("label arrays must align")
    matrix = np.zeros((len(labels), len(labels)))
    index = {label: i for i, label in enumerate(labels)}
    for truth, prediction in zip(true_array, predicted_array):
        matrix[index[int(truth)], index[int(prediction)]] += 1
    row_sums = matrix.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return matrix / row_sums
