"""MIMO interference nulling: Algorithm 1 of the thesis.

Three phases (§4.1):

1. **Initial nulling** — sound each transmit antenna alone to estimate
   h1 and h2 per subcarrier, then precode the second antenna with
   ``p = -h1_hat / h2_hat`` so the two copies cancel at the receiver.
2. **Power boosting** — with the channel nulled the ADC no longer
   saturates, so transmit power rises (12 dB in the prototype) to lift
   reflections from behind the wall out of the noise.
3. **Iterative nulling** — the boost makes residual static reflections
   (previously below the ADC quantization level) measurable; the
   residual is folded back into alternating refinements of h1_hat and
   h2_hat.  Lemma 4.1.1 shows the residual decays geometrically with
   ratio ``|(h2_hat - h2) / h2|``.

The algorithm talks to hardware through the :class:`NullingTransceiver`
protocol, implemented by the waveform simulator (and, in the original
system, by the UHD driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.constants import POWER_BOOST_DB
from repro.errors import CalibrationError
from repro.telemetry.context import get_telemetry


class NullingTransceiver(Protocol):
    """What the nulling controller needs from the radio front end."""

    def sound_antenna(self, antenna_index: int) -> np.ndarray:
        """Transmit the preamble on one antenna alone; return the
        per-subcarrier least-squares channel estimate y / x."""

    def measure_residual(self, precoder: np.ndarray) -> np.ndarray:
        """Transmit concurrently (antenna 1 sends x, antenna 2 sends
        p*x); return the per-subcarrier residual channel y / x."""

    def boost_power(self, boost_db: float) -> None:
        """Raise transmit power after the channel has been nulled."""


@dataclass
class NullingResult:
    """Outcome of a nulling run.

    Attributes:
        precoder: final per-subcarrier precoding vector p.
        h1_estimate, h2_estimate: final channel estimates.
        residual_history: mean residual power (linear) after each
            measurement, starting with the initial-nulling residual.
        pre_null_power: received power before any nulling (the flash).
        iterations: iterative-nulling iterations executed.
        converged: whether the stop criterion was met before the
            iteration cap.
    """

    precoder: np.ndarray
    h1_estimate: np.ndarray
    h2_estimate: np.ndarray
    residual_history: list[float]
    pre_null_power: float
    iterations: int
    converged: bool

    @property
    def final_residual_power(self) -> float:
        return self.residual_history[-1]

    @property
    def nulling_db(self) -> float:
        """Reduction of static power achieved by nulling, in dB
        (the quantity whose CDF is Fig. 7-7)."""
        if self.final_residual_power <= 0:
            return float("inf")
        return 10.0 * np.log10(self.pre_null_power / self.final_residual_power)


def compute_precoder(h1: np.ndarray, h2: np.ndarray) -> np.ndarray:
    """The nulling precoder p = -h1 / h2 (Algorithm 1), per subcarrier."""
    h1 = np.asarray(h1, dtype=complex)
    h2 = np.asarray(h2, dtype=complex)
    if np.any(np.abs(h2) == 0):
        raise ValueError("cannot precode against a zero channel on antenna 2")
    return -h1 / h2


def run_nulling(
    transceiver: NullingTransceiver,
    max_iterations: int = 12,
    convergence_ratio: float | None = 0.98,
    boost_db: float = POWER_BOOST_DB,
) -> NullingResult:
    """Execute Algorithm 1 end to end.

    Args:
        transceiver: radio front end (real or simulated).
        max_iterations: cap on iterative-nulling steps.
        convergence_ratio: stop when a step fails to shrink the mean
            residual power below ``convergence_ratio`` times the
            previous one ("until Converges" in Algorithm 1).  Pass
            ``None`` to always run ``max_iterations`` steps.
        boost_db: power boost applied between initial and iterative
            nulling (12 dB in the prototype, §4.1.2).
    """
    telemetry = get_telemetry()
    with telemetry.span("nulling.run") as span:
        # --- Initial nulling: sound each antenna alone. ---
        h1_hat = np.array(transceiver.sound_antenna(0), dtype=complex)
        h2_hat = np.array(transceiver.sound_antenna(1), dtype=complex)
        if not (np.all(np.isfinite(h1_hat)) and np.all(np.isfinite(h2_hat))):
            raise CalibrationError("sounding returned non-finite channel estimates")
        pre_null_power = float(
            np.mean(np.abs(h1_hat) ** 2 + np.abs(h2_hat) ** 2) / 2.0
        )
        precoder = compute_precoder(h1_hat, h2_hat)

        # --- Power boosting: safe now that the channel is nulled. ---
        transceiver.boost_power(boost_db)

        # --- Iterative nulling. ---
        residual = np.array(transceiver.measure_residual(precoder), dtype=complex)
        residual_history = [float(np.mean(np.abs(residual) ** 2))]
        if telemetry.enabled:
            telemetry.metrics.counter("nulling.runs").inc()
            telemetry.events.emit(
                "nulling.residual", iteration=0, residual_power=residual_history[0]
            )
        converged = False
        iterations = 0
        for iteration in range(max_iterations):
            if iteration % 2 == 0:
                # Assume h2_hat exact; solve Eq. 4.2: h1_hat' = h_res + h1_hat.
                h1_hat = residual + h1_hat
            else:
                # Assume h1_hat exact; solve Eq. 4.3:
                # h2_hat' = (1 - h_res / h1_hat) * h2_hat.
                h2_hat = (1.0 - residual / h1_hat) * h2_hat
            precoder = compute_precoder(h1_hat, h2_hat)
            residual = np.array(transceiver.measure_residual(precoder), dtype=complex)
            residual_history.append(float(np.mean(np.abs(residual) ** 2)))
            iterations = iteration + 1
            if telemetry.enabled:
                telemetry.metrics.counter("nulling.iterations").inc()
                telemetry.events.emit(
                    "nulling.residual",
                    iteration=iterations,
                    residual_power=residual_history[-1],
                )
            if (
                convergence_ratio is not None
                and residual_history[-1] >= convergence_ratio * residual_history[-2]
            ):
                converged = True
                break

        result = NullingResult(
            precoder=precoder,
            h1_estimate=h1_hat,
            h2_estimate=h2_hat,
            residual_history=residual_history,
            pre_null_power=pre_null_power,
            iterations=iterations,
            converged=converged,
        )
        span.set("iterations", iterations)
        span.set("converged", converged)
        span.set("nulling_db", round(result.nulling_db, 3))
        return result


@dataclass
class NullingRetryOutcome:
    """A calibration that survived the retry policy.

    Attributes:
        result: the successful :class:`NullingResult`.
        attempts: total calibration attempts, including the winner.
        backoff_s: virtual time spent backing off between attempts
            (callers advance their device clock by this much; the
            simulator never sleeps).
        failures: stringified reason for each failed attempt.
    """

    result: NullingResult
    attempts: int
    backoff_s: float
    failures: list[str] = field(default_factory=list)


def run_nulling_with_retry(
    transceiver: NullingTransceiver,
    max_attempts: int = 3,
    initial_backoff_s: float = 0.5,
    backoff_factor: float = 2.0,
    min_depth_db: float | None = None,
    **nulling_kwargs,
) -> NullingRetryOutcome:
    """Bounded retry-with-backoff around :func:`run_nulling`.

    A calibration attempt fails when Algorithm 1 raises
    (:class:`CalibrationError`, a zero-channel ``ValueError``), leaves
    a non-finite residual, fails to converge within its iteration cap,
    or lands short of ``min_depth_db``.  Between attempts the caller's
    device waits ``initial_backoff_s * backoff_factor**k`` — giving a
    transient (a walker crossing the nulling window, a buffer storm)
    time to clear — and the total virtual wait is reported back.

    Raises:
        CalibrationError: every attempt failed; ``attempts`` carries
            the count.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    if initial_backoff_s < 0 or backoff_factor < 1:
        raise ValueError("backoff must be non-negative and non-shrinking")
    telemetry = get_telemetry()
    failures: list[str] = []
    backoff_s = 0.0
    delay = initial_backoff_s
    for attempt in range(1, max_attempts + 1):
        try:
            result = run_nulling(transceiver, **nulling_kwargs)
        except (CalibrationError, ValueError, FloatingPointError) as exc:
            failures.append(f"attempt {attempt}: {exc}")
        else:
            if not np.isfinite(result.final_residual_power):
                failures.append(f"attempt {attempt}: non-finite residual")
            elif not result.converged:
                failures.append(
                    f"attempt {attempt}: no convergence in "
                    f"{result.iterations} iterations"
                )
            elif min_depth_db is not None and result.nulling_db < min_depth_db:
                failures.append(
                    f"attempt {attempt}: {result.nulling_db:.1f} dB "
                    f"short of the {min_depth_db:.1f} dB floor"
                )
            else:
                if telemetry.enabled and failures:
                    telemetry.metrics.counter("nulling.retry_failures").inc(
                        len(failures)
                    )
                    for failure in failures:
                        telemetry.events.emit("nulling.attempt_failed", detail=failure)
                return NullingRetryOutcome(
                    result=result,
                    attempts=attempt,
                    backoff_s=backoff_s,
                    failures=failures,
                )
        if attempt < max_attempts:
            backoff_s += delay
            delay *= backoff_factor
    if telemetry.enabled:
        telemetry.metrics.counter("nulling.retry_failures").inc(len(failures))
        for failure in failures:
            telemetry.events.emit("nulling.attempt_failed", detail=failure)
    raise CalibrationError(
        "nulling calibration failed after "
        f"{max_attempts} attempts: {'; '.join(failures)}",
        attempts=max_attempts,
    )


def iterative_nulling_residuals(
    h1: complex,
    h2: complex,
    h1_error: complex,
    h2_error: complex,
    iterations: int,
) -> list[float]:
    """Noise-free iterative nulling on scalar channels, for Lemma 4.1.1.

    Starting from estimates ``h1 + h1_error`` and ``h2 + h2_error``,
    runs the exact Algorithm 1 updates against the true channels and
    returns ``|h_res|`` after the initial nulling and after each
    iteration.  Lemma 4.1.1 predicts
    ``|h_res^(i)| = |h_res^(0)| * |h2_error / h2| ** i``.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if h2 == 0:
        raise ValueError("h2 must be non-zero")
    h1_hat = h1 + h1_error
    h2_hat = h2 + h2_error

    def residual() -> complex:
        return h1 + h2 * (-h1_hat / h2_hat)

    magnitudes = [abs(residual())]
    for iteration in range(iterations):
        h_res = residual()
        if iteration % 2 == 0:
            h1_hat = h_res + h1_hat
        else:
            h2_hat = (1.0 - h_res / h1_hat) * h2_hat
        magnitudes.append(abs(residual()))
    return magnitudes


@dataclass
class NullingBudget:
    """Static back-of-envelope nulling bookkeeping used by examples.

    Tracks how deep the flash sits relative to the moving-target
    return, and whether a given nulling depth suffices to unmask it.
    """

    flash_power_db: float
    target_power_db: float
    noise_floor_db: float
    nulling_db: float = 0.0
    boost_db: float = field(default=POWER_BOOST_DB)

    @property
    def residual_flash_db(self) -> float:
        return self.flash_power_db - self.nulling_db + self.boost_db

    @property
    def boosted_target_db(self) -> float:
        return self.target_power_db + self.boost_db

    @property
    def target_visible(self) -> bool:
        """Whether the target return rises above both the residual
        flash and the noise floor."""
        return (
            self.boosted_target_db > self.noise_floor_db
            and self.boosted_target_db > self.residual_flash_db - 10.0
        )
