"""Relative-motion reconstruction from angle tracks.

§5.1: "because we do not know the exact v, we cannot pinpoint the
location of the human, but we can track her/his relative movements."
This module makes that statement executable: given an angle track
theta(t) and the assumed speed, it integrates the implied radial
velocity ``v * sin(theta)`` into a cumulative radial displacement —
how far the subject net-approached or net-retreated — and summarizes a
trace as motion statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_HUMAN_SPEED_MPS
from repro.core.association import Track


@dataclass
class RelativeMotion:
    """Reconstructed radial motion of one track.

    Attributes:
        times_s: sample instants.
        radial_displacement_m: cumulative displacement toward the
            device (positive = net approach), starting at 0.
        closest_approach_m: most-approached displacement relative to
            the start.
        net_displacement_m: final displacement relative to the start.
        turnarounds: number of approach/retreat direction changes.
    """

    times_s: np.ndarray
    radial_displacement_m: np.ndarray

    @property
    def closest_approach_m(self) -> float:
        return float(self.radial_displacement_m.max())

    @property
    def net_displacement_m(self) -> float:
        return float(self.radial_displacement_m[-1])

    @property
    def turnarounds(self) -> int:
        velocity_sign = np.sign(np.diff(self.radial_displacement_m))
        nonzero = velocity_sign[velocity_sign != 0]
        if len(nonzero) < 2:
            return 0
        return int(np.sum(np.diff(nonzero) != 0))


def integrate_track(
    track: Track, assumed_speed_mps: float = DEFAULT_HUMAN_SPEED_MPS
) -> RelativeMotion:
    """Integrate an angle track into radial displacement.

    The radial velocity toward the device is ``v * sin(theta)`` by the
    paper's angle definition (§5.1); errors in the assumed ``v`` scale
    the displacement but preserve its sign structure.
    """
    if assumed_speed_mps <= 0:
        raise ValueError("assumed speed must be positive")
    if len(track.times_s) < 2:
        raise ValueError("track too short to integrate")
    times = np.asarray(track.times_s, dtype=float)
    thetas = np.radians(np.asarray(track.thetas_deg, dtype=float))
    radial_velocity = assumed_speed_mps * np.sin(thetas)
    dt = np.diff(times)
    displacement = np.concatenate(
        [[0.0], np.cumsum(0.5 * (radial_velocity[1:] + radial_velocity[:-1]) * dt)]
    )
    return RelativeMotion(times_s=times, radial_displacement_m=displacement)


@dataclass
class MotionSummary:
    """One-line answer to "what happened behind that wall?"."""

    num_tracks: int
    total_observed_s: float
    max_approach_m: float
    max_retreat_m: float
    total_turnarounds: int

    def describe(self) -> str:
        if self.num_tracks == 0:
            return "no motion observed"
        return (
            f"{self.num_tracks} mover(s) over {self.total_observed_s:.1f} s; "
            f"max approach {self.max_approach_m:.1f} m, "
            f"max retreat {self.max_retreat_m:.1f} m, "
            f"{self.total_turnarounds} turnaround(s)"
        )


def summarize_tracks(
    tracks: list[Track], assumed_speed_mps: float = DEFAULT_HUMAN_SPEED_MPS
) -> MotionSummary:
    """Summarize a set of confirmed tracks as relative-motion facts."""
    if not tracks:
        return MotionSummary(0, 0.0, 0.0, 0.0, 0)
    motions = [
        integrate_track(t, assumed_speed_mps) for t in tracks if len(t.times_s) >= 2
    ]
    if not motions:
        return MotionSummary(len(tracks), 0.0, 0.0, 0.0, 0)
    return MotionSummary(
        num_tracks=len(tracks),
        total_observed_s=float(sum(t.duration_s for t in tracks)),
        max_approach_m=float(max(m.closest_approach_m for m in motions)),
        max_retreat_m=float(-min(m.radial_displacement_m.min() for m in motions)),
        total_turnarounds=int(sum(m.turnarounds for m in motions)),
    )
