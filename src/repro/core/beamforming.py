"""Emulated antenna-array (ISAR) beamforming: Eq. 5.1.

Wi-Vi groups consecutive channel measurements ``h[n] .. h[n + w]`` into
an emulated antenna array (Fig. 5-1) and computes

    A[theta, n] = sum_i h[n + i] * exp(+j * 2*pi/lambda * i * delta * sin(theta))

where ``delta = 2 * v * T`` is the emulated element spacing: the
assumed target speed times the channel sampling period, doubled to
account for the round trip (§5.1, footnote 2).

theta follows the paper's convention: the angle between the
human-to-device line and the normal to the motion, positive when the
subject moves toward the device.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    CHANNEL_SAMPLE_PERIOD_S,
    DEFAULT_HUMAN_SPEED_MPS,
    WAVELENGTH_M,
)
from repro.dsp.spectrum import beamform_batch
from repro.dsp.steering import compute_steering_matrix, steering_matrix
from repro.dsp.windows import sliding_windows


def element_spacing_m(
    assumed_speed_mps: float = DEFAULT_HUMAN_SPEED_MPS,
    sample_period_s: float = CHANNEL_SAMPLE_PERIOD_S,
) -> float:
    """Emulated element spacing delta = 2 v T (round trip, §5.1)."""
    if assumed_speed_mps <= 0 or sample_period_s <= 0:
        raise ValueError("speed and sample period must be positive")
    return 2.0 * assumed_speed_mps * sample_period_s


def default_theta_grid(step_deg: float = 1.0) -> np.ndarray:
    """The paper's angle grid: theta in [-90, 90] degrees."""
    if step_deg <= 0:
        raise ValueError("step must be positive")
    return np.arange(-90.0, 90.0 + step_deg / 2.0, step_deg)


def steering_vector(
    theta_deg: float | np.ndarray,
    array_size: int,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
) -> np.ndarray:
    """Steering vector(s) a(theta) of the emulated array.

    ``a_i(theta) = exp(-j * 2*pi/lambda * i * delta * sin(theta))`` —
    the phase history a scatterer at angle theta actually induces under
    the ``exp(+j k d)`` channel convention (motion toward the device
    shortens the path, retarding the phase).  Eq. 5.1's sum
    ``sum_i h[n+i] * exp(+j * 2*pi/lambda * i * delta * sin(theta))``
    is then exactly ``a(theta)^H h``, and the MUSIC projection uses the
    same vectors, so both methods peak at the same, correctly-signed
    angle.

    Returns shape (array_size,) for a scalar angle or
    (num_angles, array_size) for a grid.  The returned array is always
    freshly allocated; hot paths that reuse a grid should go through
    the process-wide memoized table in :mod:`repro.dsp.steering`
    instead (both share this formula).
    """
    vectors = compute_steering_matrix(theta_deg, array_size, spacing_m, wavelength_m)
    return vectors if np.ndim(theta_deg) > 0 else vectors[0]


def inverse_aoa_spectrum(
    window: np.ndarray,
    theta_grid_deg: np.ndarray,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
) -> np.ndarray:
    """A[theta] for one emulated-array window (Eq. 5.1), as |A|.

    ``window`` is the w consecutive channel measurements; the output
    has one magnitude per angle in ``theta_grid_deg``.  The steering
    table comes from the shared :mod:`repro.dsp.steering` cache, so
    repeated calls over the same grid — the degeneracy-fallback path,
    the streaming beamformed tracker — stop rebuilding it per window.
    """
    window = np.asarray(window, dtype=complex)
    if window.ndim != 1:
        raise ValueError("window must be one-dimensional")
    steering = steering_matrix(theta_grid_deg, len(window), spacing_m, wavelength_m)
    return beamform_batch(window[np.newaxis, :], steering)[0]


def beamformed_spectrogram(
    channel_series: np.ndarray,
    window_size: int,
    hop: int,
    theta_grid_deg: np.ndarray,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
    remove_window_mean: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 5.1 applied over sliding windows.

    Returns ``(window_starts, magnitudes)`` with magnitudes of shape
    (num_windows, num_angles).  This is the plain-beamforming
    alternative to smoothed MUSIC; the paper notes it produces the same
    figures "but with more noise" (§5.2 footnote 6).

    ``remove_window_mean`` subtracts each window's mean before
    beamforming, suppressing the DC residual and — more importantly for
    weak gestures — the DC x signal cross terms in |A|^2.  Legitimate
    because "additive constants do not prevent tracking" (§4.1).
    """
    series = np.asarray(channel_series, dtype=complex)
    if window_size < 2:
        raise ValueError("window must contain at least 2 samples")
    if hop < 1:
        raise ValueError("hop must be positive")
    if series.ndim != 1:
        raise ValueError("channel series must be one-dimensional")
    if len(series) < window_size:
        raise ValueError("series shorter than one window")
    starts, windows = sliding_windows(series, window_size, hop)
    if remove_window_mean:
        windows = windows - windows.mean(axis=1, keepdims=True)
    steering = steering_matrix(theta_grid_deg, window_size, spacing_m, wavelength_m)
    return starts, beamform_batch(windows, steering)
