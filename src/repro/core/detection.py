"""Moving-target presence detection.

A small utility layer over the spectrogram: measures how much energy
lives away from the DC stripe and decides whether anything is moving —
the 0-human case of §7.4, and the basis for the intrusion-detection
example application.
"""

from __future__ import annotations

import numpy as np

from repro.core.tracking import MotionSpectrogram


def motion_energy_db(
    spectrogram: MotionSpectrogram, dc_guard_deg: float = 10.0
) -> float:
    """Mean off-DC energy of the normalized dB image.

    The DC stripe (|theta| < ``dc_guard_deg``) is excluded; what
    remains is energy attributable to motion (plus noise).
    """
    db_image = spectrogram.normalized_db()
    mask = np.abs(spectrogram.theta_grid_deg) >= dc_guard_deg
    if not np.any(mask):
        raise ValueError("DC guard masks every angle")
    return float(db_image[:, mask].mean())


def motion_present(
    spectrogram: MotionSpectrogram,
    dc_guard_deg: float = 10.0,
    threshold_db: float | None = None,
    empty_room_reference_db: float | None = None,
) -> bool:
    """Decide whether the trace contains motion.

    Either pass an absolute ``threshold_db`` or an
    ``empty_room_reference_db`` measured on a known-empty trace, in
    which case the threshold sits 25% above the reference.
    """
    if (threshold_db is None) == (empty_room_reference_db is None):
        raise ValueError("pass exactly one of threshold_db or empty-room reference")
    energy = motion_energy_db(spectrogram, dc_guard_deg)
    if threshold_db is None:
        threshold_db = 1.25 * empty_room_reference_db
    return energy > threshold_db


def peak_to_dc_ratio_db(
    spectrogram: MotionSpectrogram, dc_guard_deg: float = 10.0
) -> float:
    """How strongly the best off-DC peak stands against the DC stripe.

    Positive values mean a moving target outshines the static residual.
    """
    db_image = spectrogram.normalized_db()
    off_dc = np.abs(spectrogram.theta_grid_deg) >= dc_guard_deg
    on_dc = ~off_dc
    if not np.any(off_dc) or not np.any(on_dc):
        raise ValueError("DC guard leaves an empty region")
    peak_off = float(db_image[:, off_dc].max())
    peak_dc = float(db_image[:, on_dc].max())
    return peak_off - peak_dc
