"""Wi-Vi core: the paper's primary contribution.

* :mod:`repro.core.nulling` — MIMO interference nulling that removes
  the flash (Chapter 4, Algorithm 1, Lemma 4.1.1).
* :mod:`repro.core.beamforming` — emulated-antenna-array (ISAR)
  beamforming, Eq. 5.1.
* :mod:`repro.core.music` — smoothed MUSIC, Eqs. 5.2-5.3.
* :mod:`repro.core.tracking` — the A'[theta, n] spectrogram pipeline
  (Figs. 5-2, 5-3, 7-2).
* :mod:`repro.core.counting` — spatial-variance human counting,
  Eqs. 5.4-5.5 and the §7.4 classifier.
* :mod:`repro.core.gestures` — the through-wall gesture channel
  (Chapter 6).
* :mod:`repro.core.detection` — moving-target presence detection and
  SNR measurement.
"""

from repro.core.beamforming import inverse_aoa_spectrum, steering_vector
from repro.core.counting import (
    SpatialVarianceClassifier,
    spatial_centroid,
    spatial_variance,
    trace_spatial_variance,
)
from repro.core.detection import motion_energy_db, motion_present
from repro.core.gestures import (
    GestureDecoder,
    GestureDecodeResult,
    angle_signed_signal,
    matched_filter_bank,
)
from repro.core.music import (
    MusicResult,
    estimate_source_count,
    smoothed_correlation_matrix,
    smoothed_music_spectrum,
)
from repro.core.nulling import (
    NullingResult,
    NullingTransceiver,
    iterative_nulling_residuals,
    run_nulling,
)
from repro.core.tracking import MotionSpectrogram, TrackingConfig, compute_spectrogram

__all__ = [
    "GestureDecodeResult",
    "GestureDecoder",
    "MotionSpectrogram",
    "MusicResult",
    "NullingResult",
    "NullingTransceiver",
    "SpatialVarianceClassifier",
    "TrackingConfig",
    "angle_signed_signal",
    "compute_spectrogram",
    "estimate_source_count",
    "inverse_aoa_spectrum",
    "iterative_nulling_residuals",
    "matched_filter_bank",
    "motion_energy_db",
    "motion_present",
    "run_nulling",
    "smoothed_correlation_matrix",
    "smoothed_music_spectrum",
    "spatial_centroid",
    "spatial_variance",
    "steering_vector",
    "trace_spatial_variance",
]
