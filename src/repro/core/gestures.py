"""Through-wall gesture communication: Chapter 6.

Encoding (§6.1): a '0' bit is a step forward then a step backward; a
'1' bit is a step backward then a step forward — Manchester-like, so
bits are composable and the subject ends each bit where they started.

Decoding (§6.2): the decoder takes A'[theta, n], collapses it to a
signed angle signal (forward motion puts energy at positive theta,
backward at negative), applies two matched filters — a triangle above
the zero line and an inverted triangle below it — sums their outputs,
detects peaks, and maps a (+1, -1) peak pair to bit '0' and (-1, +1)
to bit '1'.  A gesture is decoded "only when its SNR is greater than
3 dB" (Fig. 7-4); failures are *erasures*, never bit flips (§7.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.special import erfinv

from repro.constants import GESTURE_SNR_THRESHOLD_DB
from repro.core.tracking import MotionSpectrogram


def angle_signed_signal(
    spectrogram: MotionSpectrogram, dc_guard_deg: float = 10.0
) -> np.ndarray:
    """Collapse A'[theta, n] to a signed per-window scalar (linear).

    Each window's *linear power* is weighted by sin(theta) — the same
    spatial projection the steering vector uses — and summed, with a
    guard band around theta = 0 masking the DC line.  Forward steps
    (energy above the zero line, Fig. 6-1) come out positive; backward
    steps negative.

    Feed this a plain-beamforming spectrogram
    (:func:`repro.core.tracking.compute_beamformed_spectrogram`): its
    magnitudes are physical, so the decoder's matched-filter SNR falls
    with distance as in Figs. 7-4/7-5.  A welcome side effect of the
    *signed* (odd-weighted) sum: the DC line's sidelobes are symmetric
    in theta (Dirichlet kernel of a constant), so they cancel instead
    of masking weak gestures.  sign(theta) rather than sin(theta)
    weighting keeps slow backward steps — whose energy sits at mid
    angles — as detectable as fast forward ones.
    """
    power = np.asarray(spectrogram.power, dtype=float) ** 2
    weights = np.sign(spectrogram.theta_grid_deg)
    weights[np.abs(spectrogram.theta_grid_deg) < dc_guard_deg] = 0.0
    signal = power @ weights
    return signal - np.median(signal)


def triangle_template(length: int) -> np.ndarray:
    """A unit-energy triangular pulse: the matched filter for one step.

    The raised-cosine step profile produces a triangular bump of
    apparent angle versus time (speed ramps up then down), so a
    triangle is the matched shape.
    """
    if length < 2:
        raise ValueError("template needs at least 2 samples")
    ramp = np.concatenate(
        [np.linspace(0.0, 1.0, length // 2, endpoint=False),
         np.linspace(1.0, 0.0, length - length // 2)]
    )
    return ramp / np.linalg.norm(ramp)


def matched_filter_bank(signal: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Apply the two matched filters of §6.2 and sum their outputs.

    One filter matches the triangle above the zero line (forward
    steps); the other matches the inverted triangle below it (backward
    steps).  Each is applied to the corresponding half-wave-rectified
    signal so the two step polarities cannot cancel each other, and
    the outputs are summed: forward steps appear as positive peaks,
    backward steps as negative troughs (Fig. 6-3a).
    """
    signal = np.asarray(signal, dtype=float)
    template = np.asarray(template, dtype=float)
    positive_part = np.maximum(signal, 0.0)
    negative_part = np.maximum(-signal, 0.0)
    forward = np.convolve(positive_part, template[::-1], mode="same")
    backward = np.convolve(negative_part, template[::-1], mode="same")
    return forward - backward


def bit_template(step_length: int) -> np.ndarray:
    """The unit-energy matched filter for one whole bit.

    A '0' bit is a forward step then a backward step, so its template
    is a triangle followed by an inverted triangle — the Manchester
    falling edge of §6.1.  Correlating with it turns the angle signal
    into the BPSK-like waveform of Fig. 6-3: a positive peak decodes as
    '0', a negative peak as '1'.
    """
    step = triangle_template(step_length)
    combined = np.concatenate([step, -step])
    return combined / np.linalg.norm(combined)


def filtered_noise_sigma(
    signal_sigma: float, template: np.ndarray, row_overlap: int
) -> float:
    """Noise standard deviation at a matched filter's output.

    The angle signal's noise is correlated across rows because
    consecutive emulated-array windows share samples (overlap factor
    ``row_overlap``).  For a row-correlation ``rho(k) = max(0, 1 -
    |k| / row_overlap)`` (triangular, from the shared-sample fraction),
    the filter output variance is ``sigma^2 * sum_k rho(k) * R_tt(k)``
    with ``R_tt`` the template autocorrelation.
    """
    if signal_sigma < 0:
        raise ValueError("sigma must be non-negative")
    if row_overlap < 1:
        raise ValueError("row overlap must be at least 1")
    template = np.asarray(template, dtype=float)
    variance = 0.0
    for lag in range(-(row_overlap - 1), row_overlap):
        rho = 1.0 - abs(lag) / row_overlap
        if lag >= 0:
            autocorr = float(np.dot(template[lag:], template[: len(template) - lag]))
        else:
            autocorr = float(np.dot(template[:lag], template[-lag:]))
        variance += rho * autocorr
    return signal_sigma * math.sqrt(max(variance, 0.0))


def robust_noise_sigma(values: np.ndarray, quiet_quantile: float = 0.3) -> float:
    """Noise standard deviation from the quiet part of a signal.

    Gestures can occupy more than half of a short trace, so even the
    median absolute deviation gets dragged by signal.  Instead, the
    ``quiet_quantile`` of |x - median| anchors the estimate in the
    quietest samples: for zero-mean Gaussian noise,
    ``P(|x| < q) = quantile`` gives ``q = sigma * sqrt(2) *
    erfinv(quantile)``.
    """
    if not 0.0 < quiet_quantile < 0.5:
        raise ValueError("quiet quantile must be in (0, 0.5)")
    values = np.asarray(values, dtype=float)
    deviations = np.abs(values - np.median(values))
    q = float(np.quantile(deviations, quiet_quantile))
    scale = math.sqrt(2.0) * float(erfinv(quiet_quantile))
    return q / scale + np.finfo(float).tiny


@dataclass(frozen=True)
class GestureEvent:
    """One detected step: a peak (+1, forward) or trough (-1, backward)."""

    time_s: float
    sign: int
    magnitude: float
    snr_db: float


@dataclass
class GestureDecodeResult:
    """Decoder output for one trace.

    Attributes:
        bits: decoded bits in order; ``None`` marks an erasure (a
            gesture whose SNR fell below the gate — the paper's only
            error mode, §7.5).
        events: the detected step events.
        matched_output: the summed matched-filter signal (Fig. 6-3a).
        signal: the signed angle signal the filters ran on.
        snr_db_per_bit: matched-filter SNR of each decoded or erased
            bit (the Fig. 7-5 quantity).
    """

    bits: list[int | None]
    events: list[GestureEvent]
    matched_output: np.ndarray
    signal: np.ndarray
    snr_db_per_bit: list[float]

    @property
    def decoded_bits(self) -> list[int]:
        return [bit for bit in self.bits if bit is not None]

    @property
    def erasure_count(self) -> int:
        return sum(1 for bit in self.bits if bit is None)


@dataclass
class GestureDecoder:
    """Matched-filter gesture decoder (§6.2).

    Attributes:
        step_duration_s: expected duration of a single step (half a
            gesture); the template length derives from it.
        snr_threshold_db: decode gate — 3 dB in the paper.
        dc_guard_deg: half-width of the DC mask in the angle
            projection.
        min_separation_factor: minimum peak spacing as a fraction of
            the bit duration.
        spurious_margin: multiplier on the expected noise maximum a
            candidate peak must clear.
        step_confirmation_sigma: a decoded bit must also show its two
            constituent steps — a peak and a trough in the correct
            order in the *step-level* matched output, each this many
            noise sigmas strong.  Noise that sneaks past the bit-level
            threshold almost never reproduces the full two-step
            pattern, which is what keeps Wi-Vi's errors erasures
            rather than flips (§7.5).
    """

    step_duration_s: float = 1.1
    snr_threshold_db: float = GESTURE_SNR_THRESHOLD_DB
    dc_guard_deg: float = 10.0
    min_separation_factor: float = 0.8
    spurious_margin: float = 1.2
    step_confirmation_sigma: float = 2.5

    def _find_events(
        self,
        matched: np.ndarray,
        times_s: np.ndarray,
        min_separation: int,
        sigma: float,
    ) -> list[GestureEvent]:
        # A candidate step must clear both the decode gate and the
        # expected maximum of the trace's noise (sigma * sqrt(2 ln N)):
        # below that, "peaks" are indistinguishable from noise, and
        # admitting them would turn erasures into bit flips — which the
        # paper never observes (§7.5).
        gate = sigma * 10.0 ** (self.snr_threshold_db / 10.0)
        noise_ceiling = (
            self.spurious_margin
            * sigma
            * math.sqrt(2.0 * math.log(max(len(matched), 2)))
        )
        threshold = max(gate, noise_ceiling)
        candidates: list[tuple[int, float]] = []
        for index in range(1, len(matched) - 1):
            value = matched[index]
            if abs(value) <= threshold:
                continue
            window = matched[max(0, index - 1) : index + 2]
            if value > 0 and value >= window.max():
                candidates.append((index, value))
            elif value < 0 and value <= window.min():
                candidates.append((index, value))
        # Enforce minimum separation, keeping the strongest candidates.
        candidates.sort(key=lambda pair: -abs(pair[1]))
        kept: list[tuple[int, float]] = []
        for index, value in candidates:
            if all(abs(index - other) >= min_separation for other, _ in kept):
                kept.append((index, value))
        kept.sort(key=lambda pair: pair[0])
        return [
            GestureEvent(
                time_s=float(times_s[index]),
                sign=1 if value > 0 else -1,
                magnitude=abs(value),
                # The angle signal is a power quantity (|A|^2), so SNR
                # is 10 log10 of the peak-to-noise ratio.
                snr_db=10.0 * math.log10(abs(value) / sigma),
            )
            for index, value in kept
        ]

    def decode(self, spectrogram: MotionSpectrogram) -> GestureDecodeResult:
        """Decode the gestures in a spectrogram.

        Detection runs on the *bit-level* matched filter (a full
        forward+backward Manchester template), whose output looks like
        BPSK: a positive peak is a '0', a negative peak a '1'
        (Fig. 6-3b).  The step-level matched output (Fig. 6-3a) is also
        computed and returned for inspection.
        """
        times = spectrogram.times_s
        if len(times) < 4:
            raise ValueError("spectrogram too short to decode gestures")
        hop_s = float(np.median(np.diff(times)))
        template_len = max(int(round(self.step_duration_s / hop_s)), 3)

        signal = angle_signed_signal(spectrogram, self.dc_guard_deg)
        step_matched = matched_filter_bank(signal, triangle_template(template_len))
        template = bit_template(template_len)
        bit_matched = np.convolve(signal, template[::-1], mode="same")

        # Noise sigma is estimated on the raw angle signal — whose
        # pauses really are quiet — then propagated analytically
        # through the filter; estimating it on the matched output
        # would absorb signal on short traces.
        sigma = filtered_noise_sigma(
            robust_noise_sigma(signal), template, spectrogram.window_overlap
        )

        # One bit spans two steps; peaks of distinct bits are at least
        # two step durations plus the inter-bit pause apart.
        min_separation = max(int(2 * template_len * self.min_separation_factor), 1)
        events = self._find_events(bit_matched, times, min_separation, sigma)

        step_sigma = filtered_noise_sigma(
            robust_noise_sigma(signal),
            triangle_template(template_len),
            spectrogram.window_overlap,
        )

        bits: list[int | None] = []
        snrs: list[float] = []
        for event in events:
            snrs.append(event.snr_db)
            confirmed = self._confirm_steps(
                step_matched, times, event, template_len, step_sigma
            )
            if event.snr_db >= self.snr_threshold_db and confirmed:
                bits.append(0 if event.sign > 0 else 1)
            else:
                bits.append(None)

        return GestureDecodeResult(
            bits=bits,
            events=events,
            matched_output=step_matched,
            signal=signal,
            snr_db_per_bit=snrs,
        )

    def _confirm_steps(
        self,
        step_matched: np.ndarray,
        times_s: np.ndarray,
        event: "GestureEvent",
        template_len: int,
        step_sigma: float,
    ) -> bool:
        """Check that a bit-level peak is backed by its two steps.

        A '0' bit (positive bit-level peak) must show a step-level peak
        in its first half and a trough in its second half, both
        ``step_confirmation_sigma`` strong; a '1' bit the reverse.
        """
        center = int(np.argmin(np.abs(times_s - event.time_s)))
        left = step_matched[max(center - template_len, 0) : center + 1]
        right = step_matched[center : center + template_len + 1]
        if len(left) == 0 or len(right) == 0:
            return False
        need = self.step_confirmation_sigma * step_sigma
        if event.sign > 0:
            return float(left.max()) >= need and float(right.min()) <= -need
        return float(left.min()) <= -need and float(right.max()) >= need

    def measure_snr_db(self, spectrogram: MotionSpectrogram) -> float:
        """Best matched-filter SNR in the trace, decoded or not.

        Used by the material sweep (Fig. 7-6b), which reports SNR even
        for trials whose gesture was not decodable.
        """
        signal = angle_signed_signal(spectrogram, self.dc_guard_deg)
        times = spectrogram.times_s
        hop_s = float(np.median(np.diff(times)))
        template_len = max(int(round(self.step_duration_s / hop_s)), 3)
        template = bit_template(template_len)
        matched = np.convolve(signal, template[::-1], mode="same")
        sigma = filtered_noise_sigma(
            robust_noise_sigma(signal), template, spectrogram.window_overlap
        )
        peak = float(np.max(np.abs(matched)))
        if peak <= 0:
            return float("-inf")
        return 10.0 * math.log10(peak / sigma)
