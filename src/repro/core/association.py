"""Multi-target angle tracking: from A'[theta, n] to discrete tracks.

The paper reads its spectrograms by eye: "there will be as many curved
lines as moving humans" (§5.2).  This module automates that reading —
per-window peak extraction followed by nearest-neighbour data
association with track lifecycle management (tentative / confirmed /
coasting / dead), a textbook single-hypothesis tracker.

Tracks expose the quantity the paper reasons about: the signed angle
trajectory theta(t) of each mover, from which approach/retreat episodes
and turnarounds can be read off programmatically (used by the
trajectory-summary API and the intrusion-detection example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.signal import find_peaks

from repro.core.tracking import MotionSpectrogram


@dataclass
class AngleObservation:
    """One detected peak in one spectrogram window."""

    time_s: float
    theta_deg: float
    strength_db: float


def extract_observations(
    spectrogram: MotionSpectrogram,
    threshold_db: float = 10.0,
    dc_guard_deg: float = 6.0,
    min_separation_deg: float = 10.0,
    max_peaks: int = 4,
) -> list[list[AngleObservation]]:
    """Per-window peak lists from the normalized dB image.

    The DC stripe is masked; peaks must rise ``threshold_db`` above the
    window floor and sit at least ``min_separation_deg`` apart.
    """
    if max_peaks < 1:
        raise ValueError("max_peaks must be positive")
    db = spectrogram.normalized_db()
    grid = spectrogram.theta_grid_deg
    step = float(np.median(np.diff(grid)))
    distance_bins = max(int(min_separation_deg / step), 1)
    observations: list[list[AngleObservation]] = []
    for row_index, row in enumerate(db):
        masked = row.copy()
        masked[np.abs(grid) < dc_guard_deg] = 0.0
        peaks, properties = find_peaks(
            masked, height=threshold_db, distance=distance_bins
        )
        order = np.argsort(properties["peak_heights"])[::-1][:max_peaks]
        window_obs = [
            AngleObservation(
                time_s=float(spectrogram.times_s[row_index]),
                theta_deg=float(grid[peaks[i]]),
                strength_db=float(properties["peak_heights"][i]),
            )
            for i in order
        ]
        window_obs.sort(key=lambda o: o.theta_deg)
        observations.append(window_obs)
    return observations


@dataclass
class Track:
    """One mover's angle trajectory."""

    track_id: int
    times_s: list[float] = field(default_factory=list)
    thetas_deg: list[float] = field(default_factory=list)
    strengths_db: list[float] = field(default_factory=list)
    misses: int = 0
    hits: int = 0

    @property
    def last_theta(self) -> float:
        return self.thetas_deg[-1]

    @property
    def duration_s(self) -> float:
        if len(self.times_s) < 2:
            return 0.0
        return self.times_s[-1] - self.times_s[0]

    def predict(self) -> float:
        """Constant-velocity angle prediction for the next window."""
        if len(self.thetas_deg) < 2:
            return self.last_theta
        return float(
            np.clip(2 * self.thetas_deg[-1] - self.thetas_deg[-2], -90.0, 90.0)
        )

    def add(self, observation: AngleObservation) -> None:
        self.times_s.append(observation.time_s)
        self.thetas_deg.append(observation.theta_deg)
        self.strengths_db.append(observation.strength_db)
        self.hits += 1
        self.misses = 0

    def episodes(self) -> list[tuple[str, float, float]]:
        """Approach/retreat episodes: (direction, start, end) triples.

        Positive theta = moving toward the device (§5.1), so a sign
        change in the track is a turnaround.
        """
        if not self.thetas_deg:
            return []
        result = []
        current = "toward" if self.thetas_deg[0] >= 0 else "away"
        start = self.times_s[0]
        for time_s, theta in zip(self.times_s, self.thetas_deg):
            direction = "toward" if theta >= 0 else "away"
            if direction != current:
                result.append((current, start, time_s))
                current, start = direction, time_s
        result.append((current, start, self.times_s[-1]))
        return result


@dataclass(frozen=True)
class TrackerConfig:
    """Association and lifecycle parameters."""

    gate_deg: float = 18.0
    max_misses: int = 4
    confirm_hits: int = 5

    def __post_init__(self) -> None:
        if self.gate_deg <= 0:
            raise ValueError("gate must be positive")
        if self.max_misses < 1 or self.confirm_hits < 1:
            raise ValueError("lifecycle counts must be positive")


class AngleTracker:
    """Greedy nearest-neighbour tracker over angle observations."""

    def __init__(self, config: TrackerConfig | None = None):
        self.config = config if config is not None else TrackerConfig()
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._next_id = 0

    def _associate(self, observations: list[AngleObservation]) -> None:
        unmatched = list(observations)
        # Strongest-first greedy matching within the gate.
        for track in sorted(self._active, key=lambda t: -t.hits):
            if not unmatched:
                break
            predicted = track.predict()
            best = min(unmatched, key=lambda o: abs(o.theta_deg - predicted))
            if abs(best.theta_deg - predicted) <= self.config.gate_deg:
                track.add(best)
                unmatched.remove(best)
            else:
                track.misses += 1
        for leftover in unmatched:
            track = Track(self._next_id)
            self._next_id += 1
            track.add(leftover)
            self._active.append(track)

    def _reap(self) -> None:
        survivors = []
        for track in self._active:
            if track.misses > self.config.max_misses:
                if track.hits >= self.config.confirm_hits:
                    self._finished.append(track)
            else:
                survivors.append(track)
        self._active = survivors

    def step(self, observations: list[AngleObservation]) -> None:
        """Feed one window's observations."""
        matched_any = bool(observations)
        if not matched_any:
            for track in self._active:
                track.misses += 1
        else:
            self._associate(observations)
        self._reap()

    def run(self, per_window_observations: list[list[AngleObservation]]) -> list[Track]:
        """Feed a whole spectrogram's observations; return confirmed
        tracks sorted by start time."""
        for window in per_window_observations:
            self.step(window)
        tracks = self._finished + [
            t for t in self._active if t.hits >= self.config.confirm_hits
        ]
        tracks.sort(key=lambda t: t.times_s[0])
        return tracks


def track_spectrogram(
    spectrogram: MotionSpectrogram,
    tracker_config: TrackerConfig | None = None,
    threshold_db: float = 10.0,
) -> list[Track]:
    """One-call pipeline: spectrogram -> confirmed angle tracks."""
    observations = extract_observations(spectrogram, threshold_db=threshold_db)
    return AngleTracker(tracker_config).run(observations)


def count_simultaneous_tracks(tracks: list[Track], times_s: np.ndarray) -> np.ndarray:
    """How many confirmed tracks are live at each instant — a
    track-based occupancy estimate (compare the §5.2 variance one)."""
    counts = np.zeros(len(times_s), dtype=int)
    for track in tracks:
        start, end = track.times_s[0], track.times_s[-1]
        counts += ((times_s >= start) & (times_s <= end)).astype(int)
    return counts
