"""Smoothed MUSIC: Eqs. 5.2-5.3 of the thesis.

With multiple humans, the superimposed returns are *correlated* — all
bodies reflect the same transmitted signal — which defeats plain MUSIC.
Spatial smoothing (Shan, Wax & Kailath 1985) restores rank: each
emulated array of size w is split into overlapping subarrays of size
w' < w, whose correlation matrices are summed before the eigen
decomposition (§5.2).

The pseudospectrum (Eq. 5.3) projects each steering vector onto the
noise subspace and inverts the norm, producing the sharp
"super-resolution" peaks the paper relies on.

The arithmetic lives in the batched kernel layer (:mod:`repro.dsp`);
this module is the single-window orchestration over it — a batch of
one, which the kernels guarantee is bit-identical to the same window
inside a larger batch (the property the streaming tracker's golden
equivalence rests on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import WAVELENGTH_M
from repro.dsp.backend import DspBackend, active_backend
from repro.dsp.covariance import smoothed_covariance_batch
from repro.dsp.eig import (
    REASON_OK,
    classify_covariance_batch,
    estimate_source_counts_batch,
)
from repro.dsp.steering import steering_matrix
from repro.errors import DegenerateCovarianceError
from repro.telemetry.context import get_telemetry


def smoothed_correlation_matrix(
    window: np.ndarray, subarray_size: int, forward_backward: bool = True
) -> np.ndarray:
    """Spatially-smoothed correlation matrix R[n] (Eq. 5.2 + smoothing).

    Args:
        window: w consecutive channel measurements (the emulated array).
        subarray_size: w' < w; the paper partitions each array "into
            overlapping sub-arrays of size w' < w" and sums their
            correlation matrices.
        forward_backward: additionally average with the
            complex-conjugate reversed subarrays, a standard
            decorrelation refinement that tightens the rank restoration.

    A batch-of-one view over
    :func:`repro.dsp.covariance.smoothed_covariance_batch`; the frozen
    per-subarray loop survives as
    :func:`repro.dsp.reference.smoothed_correlation_matrix_reference`.
    """
    window = np.asarray(window, dtype=complex)
    if window.ndim != 1:
        raise ValueError("window must be one-dimensional")
    return smoothed_covariance_batch(
        window[np.newaxis, :], subarray_size, forward_backward
    )[0]


def check_covariance_conditioning(
    eigenvalues: np.ndarray, condition_limit: float
) -> None:
    """Raise :class:`DegenerateCovarianceError` when the smoothed
    covariance cannot support a MUSIC subspace split.

    Three degeneracies, all produced by real hardware faults:

    * non-finite eigenvalues — NaN/Inf samples leaked into the window;
    * a dead window (trace ~ 0) — an overflow gap or a gain dropout
      left nothing to decompose;
    * eigenvalue spread beyond ``condition_limit`` — a saturated or
      constant window collapses the covariance toward rank one, the
      noise subspace loses meaning, and the pseudospectrum inverts
      numerical dust.

    ``eigenvalues`` must be sorted in descending order.  The decision
    is delegated to :func:`repro.dsp.eig.classify_covariance_batch` so
    the per-window guard and the batched pipeline's vectorized screen
    can never disagree.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    reason = classify_covariance_batch(eigenvalues[np.newaxis, :], condition_limit)[0]
    if reason == REASON_OK:
        return
    if reason == "non-finite":
        raise DegenerateCovarianceError(
            "covariance has non-finite eigenvalues", reason="non-finite"
        )
    if reason == "dead":
        raise DegenerateCovarianceError(
            "covariance is numerically zero (dead window)", reason="dead"
        )
    smallest = max(float(eigenvalues[-1]), np.finfo(float).tiny)
    with np.errstate(over="ignore"):
        condition = float(eigenvalues[0]) / smallest
    raise DegenerateCovarianceError(
        f"covariance condition number {condition:.3g} exceeds "
        f"limit {condition_limit:.3g}",
        reason="ill-conditioned",
    )


def estimate_source_count(
    eigenvalues: np.ndarray, max_sources: int = 4, dominance_db: float = 6.0
) -> int:
    """How many eigenvectors belong to the signal subspace.

    The paper keeps "the strongest eigenvectors, which in our case
    correspond to the few moving humans, as well as the DC value"
    (§5.2).  We count eigenvalues that stand ``dominance_db`` above the
    noise level, estimated as the median of the smaller half of the
    spectrum, capping at ``max_sources``.

    ``eigenvalues`` must be sorted in descending order.  The count is
    delegated to :func:`repro.dsp.eig.estimate_source_counts_batch`,
    the vectorized form the batched pipeline uses.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if len(eigenvalues) < 2:
        raise ValueError("need at least two eigenvalues")
    if np.any(np.diff(eigenvalues) > 1e-9 * max(abs(eigenvalues[0]), 1.0)):
        raise ValueError("eigenvalues must be sorted in descending order")
    return int(
        estimate_source_counts_batch(
            eigenvalues[np.newaxis, :], max_sources, dominance_db
        )[0]
    )


@dataclass
class MusicResult:
    """Spectrum of one emulated-array window.

    Attributes:
        theta_grid_deg: angles evaluated.
        pseudospectrum: A'[theta] (linear, unnormalized).
        num_sources: size of the signal subspace used.
        eigenvalues: full eigenvalue spectrum (descending).
    """

    theta_grid_deg: np.ndarray
    pseudospectrum: np.ndarray
    num_sources: int
    eigenvalues: np.ndarray

    def normalized_db(self, floor_db: float = 0.0) -> np.ndarray:
        """20 log10 of the pseudospectrum, shifted so its minimum sits
        at ``floor_db`` — the dB image the counting metric integrates
        (Eqs. 5.4-5.5)."""
        magnitudes = np.maximum(self.pseudospectrum, np.finfo(float).tiny)
        db = 20.0 * np.log10(magnitudes)
        return db - db.min() + floor_db

    def peak_angles_deg(self, count: int | None = None) -> np.ndarray:
        """Angles of the strongest local maxima, strongest first."""
        spectrum = self.pseudospectrum
        interior = np.arange(1, len(spectrum) - 1)
        is_peak = (spectrum[interior] >= spectrum[interior - 1]) & (
            spectrum[interior] >= spectrum[interior + 1]
        )
        peak_indices = interior[is_peak]
        if len(peak_indices) == 0:
            peak_indices = np.array([int(np.argmax(spectrum))])
        order = np.argsort(spectrum[peak_indices])[::-1]
        ranked = peak_indices[order]
        if count is not None:
            ranked = ranked[:count]
        return self.theta_grid_deg[ranked]


def smoothed_music_spectrum(
    window: np.ndarray,
    theta_grid_deg: np.ndarray,
    spacing_m: float,
    subarray_size: int | None = None,
    max_sources: int = 4,
    num_sources: int | None = None,
    wavelength_m: float = WAVELENGTH_M,
    forward_backward: bool = True,
    condition_limit: float | None = None,
    backend: DspBackend | None = None,
) -> MusicResult:
    """Run smoothed MUSIC on one emulated-array window.

    Args:
        window: w consecutive channel measurements.
        theta_grid_deg: angles to evaluate (paper: [-90, 90]).
        spacing_m: emulated element spacing delta = 2 v T.
        subarray_size: w'; defaults to half the window (rounded down),
            a standard smoothing choice.
        max_sources: cap for automatic source-count estimation.
        num_sources: override the automatic estimate (e.g. for tests).
        forward_backward: see :func:`smoothed_correlation_matrix`.
        condition_limit: when set, run the
            :func:`check_covariance_conditioning` degeneracy guard and
            raise :class:`repro.errors.DegenerateCovarianceError` for
            windows MUSIC cannot handle (the tracking pipeline catches
            this and falls back to plain beamforming).  ``None``
            (default) preserves the unguarded behaviour for synthetic
            noise-free inputs, whose rank-deficient covariances are
            legitimate.
        backend: route the kernels through an explicit
            :class:`~repro.dsp.backend.DspBackend` instead of the
            process-wide active one.  This analytic API exposes the
            intermediate covariance/eigenvector objects, so under a
            budgeted backend it carries that backend's error budget;
            only the fused batched path
            (:func:`repro.core.tracking.estimate_windows_batch`)
            additionally guarantees exact guard-decision parity.

    Raises:
        DegenerateCovarianceError: the window contains non-finite
            samples, or ``condition_limit`` is set and tripped.
    """
    backend = backend if backend is not None else active_backend()
    window = np.asarray(window, dtype=complex)
    if window.ndim != 1:
        raise ValueError("window must be one-dimensional")
    if not np.all(np.isfinite(window)):
        raise DegenerateCovarianceError(
            "window contains non-finite samples", reason="non-finite"
        )
    w = len(window)
    if subarray_size is None:
        subarray_size = max(w // 2, 2)
    covariance = backend.smoothed_covariance_batch(
        window[np.newaxis, :], subarray_size, forward_backward
    )
    values, vectors = backend.eigh_descending_batch(covariance)
    eigenvalues = values[0]
    telemetry = get_telemetry()
    if telemetry.enabled:
        # The per-window eigenvalue spectrum is the signal-quality
        # measure MUSIC stands on (gap = signal-vs-noise subspace
        # separation); record it before the degeneracy guard so
        # rejected windows leave their evidence behind too.
        telemetry.metrics.counter("music.windows").inc()
        telemetry.events.emit(
            "music.eigenvalues",
            eigenvalues=eigenvalues,
            window_size=w,
            subarray_size=subarray_size,
        )
    if condition_limit is not None:
        check_covariance_conditioning(eigenvalues, condition_limit)
    if num_sources is None:
        num_sources = estimate_source_count(eigenvalues, max_sources)
    if not 0 < num_sources < subarray_size:
        raise ValueError("source count must be in (0, subarray size)")

    # Eq. 5.3: 1 / sum_j || u_j^H a(theta) ||^2 over noise eigenvectors —
    # dips to zero where a(theta) lies in the signal subspace.
    steering = steering_matrix(
        theta_grid_deg,
        subarray_size,
        spacing_m,
        wavelength_m,
        dtype=backend.steering_dtype,
    )
    pseudospectrum = backend.music_pseudospectra_batch(
        steering, vectors, np.array([num_sources])
    )[0]
    return MusicResult(
        theta_grid_deg=np.asarray(theta_grid_deg, dtype=float),
        pseudospectrum=pseudospectrum,
        num_sources=num_sources,
        eigenvalues=eigenvalues,
    )
