"""A message layer over the gesture channel.

Chapter 6 closes by noting Wi-Vi "can evolve by borrowing other
existing principles and practices from today's communication systems,
such as adding a simple code to ensure reliability, or reserving a
certain pattern of '0's and '1's for packet preambles".  This module
builds that layer:

* **Framing** — a preamble bit pattern marks the start of a message and
  carries the payload length, so the receiver can tell a deliberate
  message from stray motion.
* **Erasure coding** — Wi-Vi's gesture errors are erasures, never bit
  flips (§7.5), which is exactly the channel a simple parity-based
  erasure code handles optimally: any single erased bit per block is
  recoverable.
* **Text codec** — 7-bit ASCII packing so humans can gesture short
  words.

The layer is deliberately simple (the paper's interface "is still very
basic") but complete: encode -> gesture -> decode round-trips through
the simulated wall.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Start-of-frame pattern.  Five gestures (~11 s of preamble at the
#: paper's 2.2 s/gesture) is the compromise between sync robustness and
#: the human's patience; the pattern has no period-1 or period-2
#: structure, so casual shuffling cannot fake it.
PREAMBLE_BITS: tuple[int, ...] = (1, 1, 0, 1, 0)

#: Number of bits in the length field (messages up to 15 payload bits;
#: gesturing is slow — the paper's subjects needed 8.8 s for 4 bits).
LENGTH_FIELD_BITS = 4

#: Data bits per parity block.
BLOCK_DATA_BITS = 3


class FramingError(ValueError):
    """The received bit stream does not contain a valid frame."""


def _to_bit_list(bits) -> list[int]:
    result = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        result.append(int(bit))
    return result


# ----------------------------------------------------------------------
# Erasure coding
# ----------------------------------------------------------------------

def add_parity(data_bits: list[int], block_size: int = BLOCK_DATA_BITS) -> list[int]:
    """Append one even-parity bit to each block of ``block_size`` bits.

    On an erasure channel a single missing bit per block is exactly
    recoverable: the parity pins down the erased value.  (A flipped bit
    would corrupt silently — but Wi-Vi does not flip bits, §7.5.)
    """
    if block_size < 1:
        raise ValueError("block size must be positive")
    data = _to_bit_list(data_bits)
    encoded: list[int] = []
    for start in range(0, len(data), block_size):
        block = data[start : start + block_size]
        encoded.extend(block)
        encoded.append(sum(block) % 2)
    return encoded


def recover_erasures(
    coded_bits: list[int | None], block_size: int = BLOCK_DATA_BITS
) -> list[int | None]:
    """Recover single erasures per parity block; strip the parity bits.

    The block structure (including a shorter trailing block) is
    inferred from the coded length: ``add_parity`` maps d data bits to
    ``d + ceil(d / block_size)`` coded bits.  Returns the data bits,
    with ``None`` where a block had more than one erasure
    (unrecoverable).
    """
    if block_size < 1:
        raise ValueError("block size must be positive")
    stride = block_size + 1
    total = len(coded_bits)
    full_blocks, remainder = divmod(total, stride)
    # A trailing partial block holds remainder-1 data bits + 1 parity.
    block_lengths = [stride] * full_blocks
    if remainder:
        block_lengths.append(remainder)

    data: list[int | None] = []
    start = 0
    for length in block_lengths:
        block = list(coded_bits[start : start + length])
        start += length
        erased = [i for i, bit in enumerate(block) if bit is None]
        if len(erased) == 1:
            known_sum = sum(bit for bit in block if bit is not None)
            block[erased[0]] = known_sum % 2
        # The last element of every block is the parity bit.
        data.extend(block[:-1])
    return data


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def frame_message(payload_bits) -> list[int]:
    """Wrap payload bits in a frame: preamble, length, parity-coded body."""
    payload = _to_bit_list(payload_bits)
    if len(payload) >= 2**LENGTH_FIELD_BITS:
        raise ValueError(
            f"payload of {len(payload)} bits exceeds the "
            f"{2**LENGTH_FIELD_BITS - 1}-bit frame limit"
        )
    length_bits = [
        (len(payload) >> shift) & 1 for shift in range(LENGTH_FIELD_BITS - 1, -1, -1)
    ]
    return list(PREAMBLE_BITS) + add_parity(length_bits) + add_parity(payload)


def _coded_length(data_bits: int, block_size: int = BLOCK_DATA_BITS) -> int:
    full, rem = divmod(data_bits, block_size)
    return data_bits + full + (1 if rem else 0)


def deframe_message(received_bits: list[int | None]) -> list[int | None]:
    """Locate the frame in a received bit stream and return the payload.

    The preamble may not contain erasures (it is the synchronization
    anchor); the length field and payload tolerate one erasure per
    parity block.

    Raises :class:`FramingError` when no frame is found or the length
    field is unrecoverable.
    """
    preamble = list(PREAMBLE_BITS)
    length_coded = _coded_length(LENGTH_FIELD_BITS)
    failure: str | None = None
    for offset in range(0, max(len(received_bits) - len(preamble) + 1, 0)):
        window = list(received_bits[offset : offset + len(preamble)])
        # Erasure-tolerant sync: a None matches anything, but at most
        # one — two unknowns make the anchor too ambiguous.
        erased = sum(1 for bit in window if bit is None)
        matches = all(bit is None or bit == p for bit, p in zip(window, preamble))
        if not matches or erased > 1:
            continue
        cursor = offset + len(preamble)
        length_block = list(received_bits[cursor : cursor + length_coded])
        if len(length_block) < length_coded:
            failure = "frame truncated inside the length field"
            continue  # possibly a false sync; keep scanning
        length_bits = recover_erasures(length_block)
        if any(bit is None for bit in length_bits):
            failure = "length field unrecoverable"
            continue
        payload_length = 0
        for bit in length_bits:
            payload_length = (payload_length << 1) | bit
        cursor += length_coded
        payload_coded_length = _coded_length(payload_length)
        payload_block = list(received_bits[cursor : cursor + payload_coded_length])
        if len(payload_block) < payload_coded_length:
            payload_block += [None] * (payload_coded_length - len(payload_block))
        payload = recover_erasures(payload_block)
        return payload[:payload_length]
    raise FramingError(failure or "no preamble found in the received bits")


# ----------------------------------------------------------------------
# Text codec
# ----------------------------------------------------------------------

def text_to_bits(text: str) -> list[int]:
    """Pack ASCII text as 7 bits per character, MSB first."""
    bits: list[int] = []
    for character in text:
        code = ord(character)
        if code > 127:
            raise ValueError(f"non-ASCII character {character!r}")
        bits.extend((code >> shift) & 1 for shift in range(6, -1, -1))
    return bits


def bits_to_text(bits: list[int | None]) -> str:
    """Unpack 7-bit ASCII; characters containing erasures render '?'."""
    characters = []
    for start in range(0, len(bits) - 6, 7):
        group = bits[start : start + 7]
        if any(bit is None for bit in group):
            characters.append("?")
            continue
        value = 0
        for bit in group:
            value = (value << 1) | bit
        characters.append(chr(value))
    return "".join(characters)


# ----------------------------------------------------------------------
# End-to-end message API
# ----------------------------------------------------------------------

@dataclass
class MessageReport:
    """Outcome of decoding one gestured message."""

    payload_bits: list[int | None]
    erasures_on_air: int
    erasures_after_code: int
    recovered: bool


def encode_message(payload_bits) -> list[int]:
    """Payload -> gesture bit sequence (preamble + length + coded body)."""
    return frame_message(payload_bits)


def decode_message(received_bits: list[int | None]) -> MessageReport:
    """Received gesture bits -> payload, correcting single erasures."""
    on_air = sum(1 for bit in received_bits if bit is None)
    payload = deframe_message(received_bits)
    remaining = sum(1 for bit in payload if bit is None)
    return MessageReport(
        payload_bits=payload,
        erasures_on_air=on_air,
        erasures_after_code=remaining,
        recovered=remaining == 0,
    )
