"""Simulation substrate replacing the paper's USRP testbed.

Two granularities:

* :mod:`repro.simulator.waveform` — sample-level OFDM links through
  DAC/channel/ADC, used for the nulling experiments where saturation
  and quantization matter (Fig. 7-7, Lemma 4.1.1).
* :mod:`repro.simulator.timeseries` — direct synthesis of the nulled
  channel time series h[n] from scene geometry, used for the tracking,
  counting, and gesture experiments (Figs. 5-2 through 7-6).
* :mod:`repro.simulator.experiment` — trial protocols mirroring §7.2:
  rooms, subject pools, trial counts.
"""

from repro.simulator.experiment import (
    ExperimentConfig,
    counting_trial,
    gesture_trial,
    tracking_trial,
)
from repro.simulator.timeseries import (
    ChannelSeries,
    ChannelSeriesSimulator,
    TimeSeriesConfig,
)
from repro.simulator.waveform import SimulatedNullingLink, WaveformLinkConfig

__all__ = [
    "ChannelSeries",
    "ChannelSeriesSimulator",
    "ExperimentConfig",
    "SimulatedNullingLink",
    "TimeSeriesConfig",
    "WaveformLinkConfig",
    "counting_trial",
    "gesture_trial",
    "tracking_trial",
]
