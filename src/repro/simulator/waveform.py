"""Waveform-level OFDM link for the nulling experiments.

Implements the :class:`~repro.core.nulling.NullingTransceiver` protocol
against simulated channels: training symbols are OFDM-modulated, pushed
through the transmit chains (power scaling, DAC, PA clipping), the
frequency-selective channels of both antennas, and the receive chain
(thermal noise, AGC, saturating ADC), then demodulated and
least-squares estimated per subcarrier — the real prototype's loop,
minus the air (§7.1: "MIMO nulling is implemented directly into the UHD
driver").

The dominant real-world limit on nulling depth is not thermal noise but
transmission-to-transmission calibration jitter (oscillator phase
noise, PA gain drift): each transmission is scaled by ``1 + epsilon``
with a small random complex ``epsilon``.  A jitter standard deviation
around 0.8% yields the ~42 dB mean nulling the paper reports (§4.1),
with the trial-to-trial spread of Fig. 7-7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import db_to_linear
from repro.hardware.adc import SaturatingAdc
from repro.hardware.mimo import MimoFrontEnd
from repro.ofdm.estimation import average_symbol_estimates, ls_channel_estimate
from repro.ofdm.modulation import OfdmConfig, OfdmModem
from repro.ofdm.preamble import training_burst
from repro.rf.channel import ChannelModel


@dataclass(frozen=True)
class WaveformLinkConfig:
    """Knobs of the simulated nulling link.

    Attributes:
        num_training_symbols: OFDM symbols averaged per measurement.
        impairment_std: per-transmission complex gain jitter (fraction).
        sounding_power_w: per-antenna power during channel sounding.
        agc_headroom: full-scale margin above the measured peak when
            the receiver sets its ADC range.
    """

    num_training_symbols: int = 8
    impairment_std: float = 0.006
    sounding_power_w: float = 0.00125
    agc_headroom: float = 1.5

    def __post_init__(self) -> None:
        if self.num_training_symbols < 1:
            raise ValueError("need at least one training symbol")
        if self.impairment_std < 0:
            raise ValueError("impairment must be non-negative")
        if self.sounding_power_w <= 0 or self.agc_headroom <= 1.0:
            raise ValueError("power must be positive and headroom above 1")


class SimulatedNullingLink:
    """A 2-TX / 1-RX OFDM link over frequency-selective channels."""

    def __init__(
        self,
        channel1: ChannelModel,
        channel2: ChannelModel,
        rng: np.random.Generator,
        config: WaveformLinkConfig | None = None,
        ofdm: OfdmConfig | None = None,
        front_end: MimoFrontEnd | None = None,
    ):
        self.config = config if config is not None else WaveformLinkConfig()
        self.modem = OfdmModem(ofdm)
        self.front_end = front_end if front_end is not None else MimoFrontEnd()
        self.rng = rng
        frequencies = self.modem.config.subcarrier_frequencies_hz()
        self._response1 = channel1.frequency_response(frequencies)
        self._response2 = channel2.frequency_response(frequencies)
        self.front_end.tx1.set_power_w(self.config.sounding_power_w)
        self.front_end.tx2.set_power_w(self.config.sounding_power_w)
        self._sounding_amplitude = math.sqrt(self.config.sounding_power_w)
        self._auto_range()

    # ------------------------------------------------------------------
    # Receiver auto-ranging (AGC)
    # ------------------------------------------------------------------

    def _set_adc_full_scale(self, peak_amplitude: float) -> None:
        full_scale = max(peak_amplitude * self.config.agc_headroom, 1e-12)
        self.front_end.rx.adc = SaturatingAdc(
            bits=self.front_end.rx.adc.bits, full_scale=full_scale
        )

    def _auto_range(self) -> None:
        """Set the ADC range from the un-nulled static signal — the
        starting condition in which the flash dominates."""
        peak = self._sounding_amplitude * float(
            np.max(np.abs(self._response1) + np.abs(self._response2))
        )
        self._set_adc_full_scale(peak)

    def rerange_to_residual(self, precoder: np.ndarray) -> None:
        """Tighten the ADC range around the nulled residual — the
        receive-gain boost the paper applies once nulling holds
        (§4.1.2 fn.)."""
        residual = self.measure_residual(precoder)
        scale = math.sqrt(self.front_end.tx1.power_w)
        peak = float(np.max(np.abs(residual))) * scale
        self._set_adc_full_scale(max(peak, 1e-12))

    # ------------------------------------------------------------------
    # Physical round trip
    # ------------------------------------------------------------------

    def _jitter(self) -> complex:
        if self.config.impairment_std == 0:
            return 1.0 + 0j
        sigma = self.config.impairment_std / math.sqrt(2.0)
        return 1.0 + complex(
            self.rng.normal(0.0, sigma), self.rng.normal(0.0, sigma)
        )

    def _round_trip(
        self, symbols1: np.ndarray | None, symbols2: np.ndarray | None
    ) -> np.ndarray:
        """Transmit frequency-domain symbol grids on each antenna
        (``None`` keeps an antenna silent) and return the received
        grid, in digital units, with receive gain removed."""
        received = None
        for symbols, chain, response in (
            (symbols1, self.front_end.tx1, self._response1),
            (symbols2, self.front_end.tx2, self._response2),
        ):
            if symbols is None:
                continue
            time_domain = self.modem.modulate(symbols)
            waveform = chain.transmit(time_domain)
            actual = self.modem.demodulate(waveform) * self._jitter()
            contribution = self.modem.apply_channel_frequency_domain(actual, response)
            received = contribution if received is None else received + contribution
        if received is None:
            raise ValueError("at least one antenna must transmit")
        air_time = self.modem.modulate(received)
        digital = self.front_end.receive(air_time, self.rng)
        gain_amplitude = math.sqrt(db_to_linear(self.front_end.rx.gain_db))
        return self.modem.demodulate(digital) / gain_amplitude

    # ------------------------------------------------------------------
    # NullingTransceiver protocol
    # ------------------------------------------------------------------

    def sound_antenna(self, antenna_index: int) -> np.ndarray:
        """Estimate the per-subcarrier channel of one antenna alone.

        Estimates are normalized to the sounding amplitude so they are
        in physical channel units regardless of later power boosts.
        """
        if antenna_index not in (0, 1):
            raise ValueError("antenna index must be 0 or 1")
        training = training_burst(self.modem.config, self.config.num_training_symbols)
        if antenna_index == 0:
            received = self._round_trip(training, None)
        else:
            received = self._round_trip(None, training)
        estimates = ls_channel_estimate(received, training)
        current = math.sqrt(
            self.front_end.tx1.power_w if antenna_index == 0 else self.front_end.tx2.power_w
        )
        return average_symbol_estimates(estimates) / current

    def measure_residual(self, precoder: np.ndarray) -> np.ndarray:
        """Transmit x on antenna 1 and p*x on antenna 2 concurrently;
        return the residual channel per subcarrier, in the same
        physical units as :meth:`sound_antenna`."""
        precoder = np.asarray(precoder, dtype=complex)
        training = training_burst(self.modem.config, self.config.num_training_symbols)
        received = self._round_trip(training, training * precoder)
        estimates = ls_channel_estimate(received, training)
        return average_symbol_estimates(estimates) / math.sqrt(self.front_end.tx1.power_w)

    def boost_power(self, boost_db: float) -> None:
        """Raise transmit power (§4.1.2); the receiver re-ranges later
        via :meth:`rerange_to_residual` if asked."""
        self.front_end.boost_power_db(boost_db)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def true_combined_channel(self, precoder: np.ndarray) -> np.ndarray:
        """Noise-free h1 + p*h2 per subcarrier (for tests)."""
        precoder = np.asarray(precoder, dtype=complex)
        return self._response1 + precoder * self._response2

    @property
    def subcarrier_count(self) -> int:
        return self.modem.config.num_used
