"""Vectorized moving-path gain computation.

The time-series simulator's inner loop evaluates, per channel sample,
the bistatic path of every body scatterer via both transmit antennas —
hundreds of thousands of small computations per 25 s trace.  This
module batches that math over all scatterers of a timestep with numpy,
replicating :meth:`repro.environment.scene.Scene.scatterer_path` (and
the interior-bounce construction) bit-for-bit in vector form; a test
asserts agreement with the scalar path to float precision.
"""

from __future__ import annotations

import math

import numpy as np

from repro.environment.scene import Scene
from repro.rf.antennas import DirectionalAntenna

_FOUR_PI = 4.0 * math.pi


def _antenna_amplitude(antenna: DirectionalAntenna, cosines: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`DirectionalAntenna.amplitude_gain`.

    ``cosines`` is cos(angle off the +x boresight) for each target.
    """
    peak = 10.0 ** (antenna.boresight_gain_dbi / 10.0)
    floor = 10.0 ** (-antenna.front_to_back_db / 10.0)
    order = antenna.cosine_order
    shaped = np.where(
        cosines > 0.0,
        np.maximum(np.power(np.maximum(cosines, 0.0), order), floor),
        floor,
    )
    return np.sqrt(peak * shaped)


def _wall_amplitude(scene: Scene, x_positions: np.ndarray) -> np.ndarray:
    """Vectorized round-trip wall traversal plus interior absorption."""
    if scene.room is None:
        return np.ones_like(x_positions)
    wall = scene.room.wall
    behind = x_positions > wall.position_x_m
    depth = np.maximum(x_positions - wall.far_face_x_m, 0.0)
    absorption_db = 2.0 * scene.interior_absorption_db_per_m * depth
    through = wall.material.round_trip_amplitude * 10.0 ** (-absorption_db / 20.0)
    return np.where(behind, through, 1.0)


def batched_moving_gain(
    scene: Scene,
    tx_x: float,
    tx_y: float,
    positions: np.ndarray,
    rcs: np.ndarray,
    wavelength_m: float | None = None,
) -> complex:
    """Coherent gain of all moving scatterers via one transmit antenna.

    Args:
        scene: the scene providing geometry/material parameters.
        tx_x, tx_y: transmit-antenna position.
        positions: scatterer positions, shape (S, 2).
        rcs: scatterer cross-sections, shape (S,).
        wavelength_m: override for subcarrier-offset evaluation
            (phases shift with frequency; amplitudes barely).
    """
    if positions.size == 0:
        return 0j
    rx = scene.device.rx
    antenna = scene.device.antenna
    wavelength = wavelength_m if wavelength_m is not None else scene.wavelength_m

    dx_tx = positions[:, 0] - tx_x
    dy_tx = positions[:, 1] - tx_y
    d_tx = np.maximum(np.hypot(dx_tx, dy_tx), 0.1)
    dx_rx = positions[:, 0] - rx.x
    dy_rx = positions[:, 1] - rx.y
    d_rx = np.maximum(np.hypot(dx_rx, dy_rx), 0.1)

    gain_tx = _antenna_amplitude(antenna, dx_tx / d_tx)
    gain_rx = _antenna_amplitude(antenna, dx_rx / d_rx)
    radar = np.sqrt(wavelength**2 * rcs / (_FOUR_PI**3 * d_tx**2 * d_rx**2))
    wall = _wall_amplitude(scene, positions[:, 0])
    amplitudes = gain_tx * gain_rx * radar * wall
    distances = d_tx + d_rx

    total = np.sum(amplitudes * np.exp(2j * np.pi * distances / wavelength))

    if scene.multipath and scene.room is not None:
        y_low, y_high = scene.room.y_range
        _, x_back = scene.room.x_range
        reflection = 10.0 ** (scene.interior_wall_reflectivity_db / 20.0)
        images = (
            np.stack([positions[:, 0], 2.0 * y_low - positions[:, 1]], axis=1),
            np.stack([positions[:, 0], 2.0 * y_high - positions[:, 1]], axis=1),
            np.stack([2.0 * x_back - positions[:, 0], positions[:, 1]], axis=1),
        )
        for image in images:
            d_return = np.maximum(
                np.hypot(image[:, 0] - rx.x, image[:, 1] - rx.y), 0.1
            )
            bounce_radar = np.sqrt(
                wavelength**2 * rcs / (_FOUR_PI**3 * d_tx**2 * d_return**2)
            )
            bounce_amp = gain_tx * gain_rx * bounce_radar * wall * reflection
            bounce_dist = d_tx + d_return
            total += np.sum(
                bounce_amp * np.exp(2j * np.pi * bounce_dist / wavelength)
            )
    return complex(total)


def scatterer_snapshot(scene: Scene, time_s: float) -> tuple[np.ndarray, np.ndarray]:
    """All moving scatterers at one instant: positions (S, 2), rcs (S,)."""
    xs, ys, rcs = [], [], []
    for human in scene.humans:
        for scatterer in human.scatterers(time_s):
            xs.append(scatterer.position.x)
            ys.append(scatterer.position.y)
            rcs.append(scatterer.rcs_m2)
    if not xs:
        return np.empty((0, 2)), np.empty(0)
    return np.stack([np.array(xs), np.array(ys)], axis=1), np.array(rcs)


def fast_moving_gain_series(
    scene: Scene,
    times_s: np.ndarray,
    precoder: complex,
    wavelength_m: float | None = None,
) -> np.ndarray:
    """Vectorized replacement for the simulator's moving-gain loop."""
    gains = np.zeros(len(times_s), dtype=complex)
    tx1 = scene.device.tx1
    tx2 = scene.device.tx2
    for index, time_s in enumerate(times_s):
        positions, rcs = scatterer_snapshot(scene, float(time_s))
        gains[index] = batched_moving_gain(
            scene, tx1.x, tx1.y, positions, rcs, wavelength_m
        ) + precoder * batched_moving_gain(
            scene, tx2.x, tx2.y, positions, rcs, wavelength_m
        )
    return gains
