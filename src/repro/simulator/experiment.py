"""Trial protocols mirroring the paper's evaluation setup (§7.2).

Experiments ran in two Stata-center conference rooms (7 x 4 m and
11 x 7 m, 6" hollow walls) and through the Fairchild building's 8"
concrete wall, with 8 subjects of different builds; tracking trials
asked subjects to "enter a room, close the door, and move at will";
gesture trials placed a subject at a set distance from the wall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.tracking import (
    MotionSpectrogram,
    TrackingConfig,
    compute_beamformed_spectrogram,
    compute_spectrogram,
)
from repro.environment.geometry import Point
from repro.environment.human import BodyModel, Human
from repro.environment.objects import conference_room_furniture, outside_clutter
from repro.environment.scene import Scene
from repro.environment.trajectories import (
    GESTURE_DURATION_MEAN_S,
    GESTURE_DURATION_STD_S,
    STEP_LENGTH_RANGE_M,
    GestureTrajectory,
    RandomWaypointTrajectory,
)
from repro.environment.walls import (
    Room,
    Wall,
    stata_conference_room_large,
    stata_conference_room_small,
)
from repro.rf.materials import Material
from repro.simulator.timeseries import (
    ChannelSeries,
    ChannelSeriesSimulator,
    TimeSeriesConfig,
)


@dataclass(frozen=True)
class Subject:
    """One human subject: a body plus personal gesture parameters."""

    body: BodyModel
    step_length_m: float
    step_duration_s: float
    name: str = "subject"


def make_subject_pool(rng: np.random.Generator, count: int = 8) -> list[Subject]:
    """Draw a pool like the paper's 8 volunteers of "different heights
    and builds" (§7.2).  Step lengths span the observed 2-3 feet and a
    gesture (two steps) takes 2.2 s +/- 0.4 s (§7.5)."""
    if count < 1:
        raise ValueError("need at least one subject")
    subjects = []
    for index in range(count):
        gesture_duration = float(
            np.clip(
                rng.normal(GESTURE_DURATION_MEAN_S, GESTURE_DURATION_STD_S), 1.4, 3.2
            )
        )
        step_length = float(rng.uniform(*STEP_LENGTH_RANGE_M))
        # Long steps take longer: cap the average step speed at
        # 0.72 m/s (comfortable single-step pace) so peak speed stays
        # within the 1 m/s the tracker assumes.
        step_duration = max(gesture_duration / 2.0, step_length / 0.72)
        subjects.append(
            Subject(
                body=BodyModel.sample(rng),
                step_length_m=step_length,
                step_duration_s=step_duration,
                name=f"subject-{index}",
            )
        )
    return subjects


@dataclass
class ExperimentConfig:
    """Shared configuration of a simulated campaign."""

    timeseries: TimeSeriesConfig = field(default_factory=TimeSeriesConfig)
    tracking: TrackingConfig = field(default_factory=TrackingConfig)
    furniture_count: int = 8
    near_clutter_count: int = 4


@dataclass
class TrialResult:
    """Everything one trial produced."""

    scene: Scene
    series: ChannelSeries
    spectrogram: MotionSpectrogram


def _crowding_mobility(num_humans: int, room: Room) -> float:
    """Freedom of movement shrinks as the room fills (§7.4): "adding a
    human to a congested space is expected to add less spatial
    variance".  Crowding scales with density, so the same three people
    are freer in the 11 x 7 room than in the 7 x 4 one."""
    if num_humans <= 1:
        return 1.0
    reference_area_m2 = 28.0  # the small Stata conference room
    density_scale = reference_area_m2 / room.area_m2
    return max(1.0 / (1.0 + 0.06 * (num_humans - 1) * density_scale), 0.5)


def build_tracking_scene(
    room: Room,
    num_humans: int,
    duration_s: float,
    rng: np.random.Generator,
    subjects: list[Subject] | None = None,
    config: ExperimentConfig | None = None,
) -> Scene:
    """A closed room with ``num_humans`` moving at will."""
    if num_humans < 0:
        raise ValueError("human count must be non-negative")
    config = config if config is not None else ExperimentConfig()
    mobility = _crowding_mobility(num_humans, room)
    humans = []
    for index in range(num_humans):
        subject = (
            subjects[index % len(subjects)]
            if subjects
            else Subject(BodyModel.sample(rng), 0.75, 1.1, f"walk-{index}")
        )
        trajectory = RandomWaypointTrajectory(
            room, rng, duration_s, mobility_factor=mobility
        )
        humans.append(
            Human(
                trajectory=trajectory,
                body=subject.body,
                gait_phase=float(rng.uniform(0.0, 1.0)),
                name=subject.name,
            )
        )
    furniture = conference_room_furniture(room, rng, config.furniture_count)
    clutter = outside_clutter(rng, config.near_clutter_count)
    return Scene(
        room=room, humans=humans, static_reflectors=furniture + clutter
    )


def tracking_trial(
    room: Room,
    num_humans: int,
    duration_s: float,
    rng: np.random.Generator,
    subjects: list[Subject] | None = None,
    config: ExperimentConfig | None = None,
) -> TrialResult:
    """One "move at will" trial: scene, nulled trace, spectrogram."""
    config = config if config is not None else ExperimentConfig()
    scene = build_tracking_scene(room, num_humans, duration_s, rng, subjects, config)
    simulator = ChannelSeriesSimulator(scene, config.timeseries, rng)
    series = simulator.simulate(duration_s)
    spectrogram = compute_spectrogram(series.samples, config.tracking)
    return TrialResult(scene=scene, series=series, spectrogram=spectrogram)


def counting_trial(
    room: Room,
    num_humans: int,
    duration_s: float,
    rng: np.random.Generator,
    subjects: list[Subject] | None = None,
    config: ExperimentConfig | None = None,
) -> TrialResult:
    """A §7.4 counting trial (25 s in the paper).  Identical to a
    tracking trial; kept separate for protocol clarity."""
    return tracking_trial(room, num_humans, duration_s, rng, subjects, config)


def build_gesture_scene(
    room: Room,
    distance_from_wall_m: float,
    bits: list[int],
    subject: Subject,
    rng: np.random.Generator,
    config: ExperimentConfig | None = None,
    orientation_jitter_deg: float = 8.0,
) -> tuple[Scene, GestureTrajectory]:
    """A subject at ``distance_from_wall_m`` performing ``bits``.

    The subject "does not exactly know where the Wi-Vi device is"
    (Fig. 6-2c); their step axis points at the wall with a random
    slant of up to ``orientation_jitter_deg``.
    """
    config = config if config is not None else ExperimentConfig()
    base = Point(
        room.wall.far_face_x_m + distance_from_wall_m, rng.uniform(-0.25, 0.25)
    )
    slant = np.radians(rng.uniform(-orientation_jitter_deg, orientation_jitter_deg))
    toward_device = Point(-float(np.cos(slant)), -float(np.sin(slant)))
    trajectory = GestureTrajectory(
        base_position=base,
        bits=bits,
        toward_device=toward_device,
        step_length_m=subject.step_length_m,
        step_duration_s=subject.step_duration_s,
    )
    # A deliberate step swings the limbs far less than walking; damping
    # the swing reduces body-fading variance during gestures.
    gesture_body = replace(subject.body, limb_swing_m=0.08)
    human = Human(
        trajectory=trajectory,
        body=gesture_body,
        gait_phase=float(rng.uniform(0.0, 1.0)),
        name=subject.name,
    )
    furniture = conference_room_furniture(room, rng, config.furniture_count)
    clutter = outside_clutter(rng, config.near_clutter_count)
    scene = Scene(room=room, humans=[human], static_reflectors=furniture + clutter)
    return scene, trajectory


def gesture_trial(
    room: Room,
    distance_from_wall_m: float,
    bits: list[int],
    subject: Subject,
    rng: np.random.Generator,
    config: ExperimentConfig | None = None,
) -> tuple[TrialResult, GestureTrajectory]:
    """One gesture trial at a given distance (§7.5)."""
    config = config if config is not None else ExperimentConfig()
    scene, trajectory = build_gesture_scene(
        room, distance_from_wall_m, bits, subject, rng, config
    )
    simulator = ChannelSeriesSimulator(scene, config.timeseries, rng)
    series = simulator.simulate(trajectory.duration_s())
    # The decoder runs on the plain-beamforming spectrogram, whose
    # magnitudes are physical (see angle_signed_signal).
    spectrogram = compute_beamformed_spectrogram(series.samples, config.tracking)
    return TrialResult(scene=scene, series=series, spectrogram=spectrogram), trajectory


def room_for_material(material: Material, depth_m: float = 7.0, width_m: float = 5.0) -> Room:
    """A room behind a wall of the given material (§7.6 sweep)."""
    return Room(wall=Wall(material, position_x_m=1.0), depth_m=depth_m, width_m=width_m)


def pick_room_for_distance(distance_m: float) -> Room:
    """The §7.5 protocol: trials beyond 6 m use the larger conference
    room (the smaller one is only 7 m deep)."""
    if distance_m > 6.0:
        return stata_conference_room_large()
    return stata_conference_room_small()
