"""Channel-time-series simulation: the post-nulling view of a scene.

After nulling, the received channel is

    h[n] = residual_DC + sum_moving [g1(t_n) + p * g2(t_n)] + noise[n]

where ``g_i`` is the coherent gain of the moving scatterers via
transmit antenna i, ``p = -h1_static / h2_static`` is the nulling
precoder (which does *not* cancel moving paths — their geometry differs
from the static channels it was computed for), and residual_DC is the
imperfectly-nulled static channel ("minuscule errors in channel
estimates ... registered as a residual DC", §5.1 fn. 4).

Noise on each channel measurement has three components:

* thermal noise, reduced by the coherent averaging of the 3.2 ms of
  samples behind each measurement (§7.1),
* residual-clutter jitter: clock/oscillator phase jitter re-modulates
  the huge static signal, so a fraction of the *pre-null* static
  amplitude reappears as wideband noise — the dominant limit, and the
  reason denser (more reflective) walls are harder to see through even
  after nulling (Fig. 7-6),
* an ADC quantization floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    BANDWIDTH_HZ,
    CHANNEL_SAMPLE_RATE_HZ,
    POWER_BOOST_DB,
    db_to_linear,
    thermal_noise_power_w,
)
from repro.environment.scene import Scene
from repro.rf.channel import PathKind


@dataclass(frozen=True)
class TimeSeriesConfig:
    """Knobs of the channel-series simulator.

    Attributes:
        sample_rate_hz: channel-measurement rate (312.5 Hz: one
            emulated-array element per 3.2 ms, §7.1).
        tx_power_w: per-antenna transmit power after the 12 dB boost.
            1.25 mW base power boosted by 12 dB lands at the 20 mW
            edge of the USRP linear range (§7.5).
        nulling_mean_db: mean nulling depth drawn for a trace when not
            fixed explicitly; the prototype averages 42 dB (§4.1).
        nulling_std_db: trial-to-trial spread of the nulling depth
            (Fig. 7-7 spans roughly 30-55 dB).
        clutter_jitter: fraction of the pre-null static amplitude that
            reappears per-sample as clutter noise (clock jitter).
        noise_figure_db: receive-chain noise figure.
        coherent_samples: baseband samples averaged into one channel
            measurement (3.2 ms at 5 MHz = 16000).
        quantization_floor: absolute channel-amplitude noise floor from
            the ADC.
        num_subcarrier_streams: how many spaced subcarriers the capture
            measures independently before combining (§7.1: "channel
            measurements across the different subcarriers are combined
            to improve the SNR").  1 (default) keeps the narrowband
            carrier-only behaviour.  Within a 5 MHz band all
            subcarriers fade together (indoor coherence bandwidth is
            hundreds of MHz), so combining buys thermal-noise
            averaging, not fading diversity — quantified in the
            subcarrier-diversity ablation bench.
        subcarrier_span_hz: total frequency span the diversity streams
            are spread over (the signal bandwidth).
    """

    sample_rate_hz: float = CHANNEL_SAMPLE_RATE_HZ
    tx_power_w: float = 0.00125 * db_to_linear(POWER_BOOST_DB)
    nulling_mean_db: float = 42.0
    nulling_std_db: float = 4.0
    clutter_jitter: float = 2.6e-3
    noise_figure_db: float = 7.0
    coherent_samples: int = 16000
    quantization_floor: float = 3e-9
    num_subcarrier_streams: int = 1
    subcarrier_span_hz: float = BANDWIDTH_HZ

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0 or self.tx_power_w <= 0:
            raise ValueError("rates and powers must be positive")
        if self.coherent_samples < 1:
            raise ValueError("coherent averaging needs at least one sample")
        if not 0 <= self.clutter_jitter < 1:
            raise ValueError("clutter jitter must be a small fraction")
        if self.num_subcarrier_streams < 1:
            raise ValueError("need at least one subcarrier stream")
        if self.subcarrier_span_hz <= 0:
            raise ValueError("subcarrier span must be positive")

    def subcarrier_offsets_hz(self) -> np.ndarray:
        """Baseband centre frequencies of the diversity streams."""
        k = self.num_subcarrier_streams
        if k == 1:
            return np.array([0.0])
        return np.linspace(-self.subcarrier_span_hz / 2, self.subcarrier_span_hz / 2, k)

    @property
    def thermal_sigma(self) -> float:
        """Channel-amplitude standard deviation of thermal noise after
        coherent averaging."""
        noise_power = thermal_noise_power_w(BANDWIDTH_HZ, self.noise_figure_db)
        return math.sqrt(noise_power / (self.tx_power_w * self.coherent_samples))


@dataclass
class ChannelSeries:
    """A simulated nulled-channel trace.

    Attributes:
        times_s: sample instants.
        samples: complex channel measurements h[n].
        dc_residual: the static residual carried in every sample.
        nulling_db: nulling depth realized for this trace.
        precoder: the narrowband p used for the moving-path combination.
        noise_sigma: total per-sample noise standard deviation.
    """

    times_s: np.ndarray
    samples: np.ndarray
    dc_residual: complex
    nulling_db: float
    precoder: complex
    noise_sigma: float

    @property
    def sample_period_s(self) -> float:
        if len(self.times_s) < 2:
            raise ValueError("series too short to have a period")
        return float(self.times_s[1] - self.times_s[0])


class ChannelSeriesSimulator:
    """Synthesizes nulled channel traces from a scene."""

    def __init__(
        self,
        scene: Scene,
        config: TimeSeriesConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.scene = scene
        self.config = config if config is not None else TimeSeriesConfig()
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Static (nulled) part
    # ------------------------------------------------------------------

    def static_gains(self) -> tuple[complex, complex]:
        """Narrowband static channels from the two transmit antennas."""
        return (
            self.scene.static_gain(self.scene.device.tx1),
            self.scene.static_gain(self.scene.device.tx2),
        )

    def draw_nulling_db(self) -> float:
        """Draw a per-trace nulling depth (clipped to a sane range)."""
        depth = self.rng.normal(self.config.nulling_mean_db, self.config.nulling_std_db)
        return float(np.clip(depth, 20.0, 60.0))

    # ------------------------------------------------------------------
    # Moving part
    # ------------------------------------------------------------------

    def _moving_gain_series(self, times_s: np.ndarray, precoder: complex) -> np.ndarray:
        """Coherent moving-path gain at each instant, via both antennas.

        Uses :meth:`Scene.moving_paths` when available so scene options
        (interior multipath) flow through; falls back to direct bounce
        construction for lightweight scene stand-ins.
        """
        from repro.environment.scene import Scene as _Scene
        from repro.simulator.fastpath import fast_moving_gain_series

        if type(self.scene) is _Scene:
            return fast_moving_gain_series(self.scene, times_s, precoder)

        gains = np.zeros(len(times_s), dtype=complex)
        tx1 = self.scene.device.tx1
        tx2 = self.scene.device.tx2
        wavelength = self.scene.wavelength_m
        use_moving_paths = hasattr(self.scene, "moving_paths")
        for index, time_s in enumerate(times_s):
            t = float(time_s)
            total = 0j
            if use_moving_paths:
                for path in self.scene.moving_paths(tx1, t):
                    total += path.gain(wavelength)
                for path in self.scene.moving_paths(tx2, t):
                    total += precoder * path.gain(wavelength)
            else:
                for human in self.scene.humans:
                    for scatterer in human.scatterers(t):
                        path1 = self.scene.scatterer_path(
                            tx1, scatterer.position, scatterer.rcs_m2, PathKind.MOVING
                        )
                        path2 = self.scene.scatterer_path(
                            tx2, scatterer.position, scatterer.rcs_m2, PathKind.MOVING
                        )
                        total += path1.gain(wavelength)
                        total += precoder * path2.gain(wavelength)
            gains[index] = total
        return gains

    # ------------------------------------------------------------------
    # Trace synthesis
    # ------------------------------------------------------------------

    def simulate(
        self, duration_s: float, nulling_db: float | None = None
    ) -> ChannelSeries:
        """Produce a nulled channel trace of ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        num_samples = int(round(duration_s * self.config.sample_rate_hz))
        if num_samples < 2:
            raise ValueError("duration too short for the sample rate")
        times = np.arange(num_samples) / self.config.sample_rate_hz

        static1, static2 = self.static_gains()
        if static2 == 0:
            raise ValueError("static channel via antenna 2 is zero; cannot precode")
        precoder = -static1 / static2

        depth_db = self.draw_nulling_db() if nulling_db is None else float(nulling_db)
        pre_null_amplitude = math.sqrt((abs(static1) ** 2 + abs(static2) ** 2) / 2.0)
        residual_amplitude = pre_null_amplitude * 10.0 ** (-depth_db / 20.0)
        residual_phase = self.rng.uniform(0.0, 2.0 * math.pi)
        dc_residual = residual_amplitude * complex(
            math.cos(residual_phase), math.sin(residual_phase)
        )

        moving = self._moving_gain_series(times, precoder)

        clutter_sigma = pre_null_amplitude * self.config.clutter_jitter
        noise_sigma = math.sqrt(
            self.config.thermal_sigma**2
            + clutter_sigma**2
            + self.config.quantization_floor**2
        )
        noise = noise_sigma / math.sqrt(2.0) * (
            self.rng.standard_normal(num_samples)
            + 1j * self.rng.standard_normal(num_samples)
        )

        samples = dc_residual + moving + noise
        return ChannelSeries(
            times_s=times,
            samples=samples,
            dc_residual=dc_residual,
            nulling_db=depth_db,
            precoder=precoder,
            noise_sigma=noise_sigma,
        )

    def simulate_diversity(
        self, duration_s: float, nulling_db: float | None = None
    ) -> list[ChannelSeries]:
        """One trace per diversity subcarrier (§7.1 combining).

        All streams share the same trajectories, nulling depth, and
        clutter-jitter realization (oscillator jitter is common to the
        whole band); thermal noise is independent per stream and the
        moving-path *phases* shift slightly with the subcarrier
        frequency.  Combine coherently with
        :meth:`combine_diversity_series` (thermal-noise averaging) or
        non-coherently with
        :func:`repro.core.tracking.compute_diversity_spectrogram`.
        """
        from repro.constants import CARRIER_FREQUENCY_HZ, SPEED_OF_LIGHT
        from repro.simulator.fastpath import fast_moving_gain_series

        if duration_s <= 0:
            raise ValueError("duration must be positive")
        offsets = self.config.subcarrier_offsets_hz()
        if not isinstance(self.scene, Scene):
            raise TypeError("diversity capture requires a plain Scene")
        num_samples = int(round(duration_s * self.config.sample_rate_hz))
        if num_samples < 2:
            raise ValueError("duration too short for the sample rate")
        times = np.arange(num_samples) / self.config.sample_rate_hz

        depth_db = self.draw_nulling_db() if nulling_db is None else float(nulling_db)
        # One oscillator-jitter realization for the whole band.
        jitter = (
            self.rng.standard_normal(num_samples)
            + 1j * self.rng.standard_normal(num_samples)
        ) / math.sqrt(2.0)
        residual_phase = self.rng.uniform(0.0, 2.0 * math.pi)

        streams = []
        for offset_hz in offsets:
            wavelength = SPEED_OF_LIGHT / (CARRIER_FREQUENCY_HZ + float(offset_hz))
            static1 = self._static_gain_at(self.scene.device.tx1, wavelength)
            static2 = self._static_gain_at(self.scene.device.tx2, wavelength)
            if static2 == 0:
                raise ValueError("static channel via antenna 2 is zero")
            precoder = -static1 / static2
            pre_null = math.sqrt((abs(static1) ** 2 + abs(static2) ** 2) / 2.0)
            dc = (
                pre_null
                * 10.0 ** (-depth_db / 20.0)
                * complex(math.cos(residual_phase), math.sin(residual_phase))
            )
            moving = fast_moving_gain_series(self.scene, times, precoder, wavelength)
            thermal = self.config.thermal_sigma / math.sqrt(2.0) * (
                self.rng.standard_normal(num_samples)
                + 1j * self.rng.standard_normal(num_samples)
            )
            clutter = pre_null * self.config.clutter_jitter * jitter
            quant = self.config.quantization_floor / math.sqrt(2.0) * (
                self.rng.standard_normal(num_samples)
                + 1j * self.rng.standard_normal(num_samples)
            )
            noise_sigma = math.sqrt(
                self.config.thermal_sigma**2
                + (pre_null * self.config.clutter_jitter) ** 2
                + self.config.quantization_floor**2
            )
            streams.append(
                ChannelSeries(
                    times_s=times,
                    samples=dc + moving + thermal + clutter + quant,
                    dc_residual=dc,
                    nulling_db=depth_db,
                    precoder=precoder,
                    noise_sigma=noise_sigma,
                )
            )
        return streams

    @staticmethod
    def combine_diversity_series(streams: list[ChannelSeries]) -> ChannelSeries:
        """Coherently average diversity streams into one series.

        Within the 5 MHz band the per-subcarrier signal components are
        phase-aligned to within a fraction of a radian (coherence
        bandwidth of an indoor scene is hundreds of MHz), so a plain
        mean preserves the motion phase history while *independent*
        thermal noise averages down by sqrt(K).  Clock-jitter clutter
        is common to the band and does not average — combining buys
        SNR only in the thermal-limited regime (see the subcarrier-
        diversity ablation bench).
        """
        if not streams:
            raise ValueError("need at least one stream")
        length = len(streams[0].samples)
        if any(len(s.samples) != length for s in streams):
            raise ValueError("streams must share a time base")
        combined = np.mean([s.samples for s in streams], axis=0)
        return ChannelSeries(
            times_s=streams[0].times_s,
            samples=combined,
            dc_residual=complex(np.mean([s.dc_residual for s in streams])),
            nulling_db=streams[0].nulling_db,
            precoder=streams[0].precoder,
            # Approximate: exact only in the thermal-limited regime.
            noise_sigma=streams[0].noise_sigma / math.sqrt(len(streams)),
        )

    def _static_gain_at(self, tx, wavelength_m: float) -> complex:
        """Static channel gain evaluated at a shifted carrier."""
        total = self.scene.direct_path(tx).gain(wavelength_m)
        flash = self.scene.flash_path(tx)
        if flash is not None:
            total += flash.gain(wavelength_m)
        for reflector in self.scene.static_reflectors:
            total += self.scene.scatterer_path(
                tx, reflector.position, reflector.rcs_m2, PathKind.STATIC
            ).gain(wavelength_m)
        return total
