"""The assembled Wi-Vi device: calibrate, image, or receive gestures.

§3.2: "Wi-Vi can be used in one of two modes ... In mode 1, it can be
used to image moving objects behind a wall and track them.  In mode 2
... Wi-Vi functions as a gesture-based interface."

:class:`WiViDevice` wires the full stack together the way the real
prototype does: Algorithm 1 runs over the waveform-level link against
the scene's *static* channels (the flash), and the achieved nulling
depth then feeds the channel-series capture that the tracking, counting
and gesture pipelines consume.  This is the object the examples and the
CLI drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.gestures import GestureDecodeResult, GestureDecoder
from repro.core.nulling import (
    NullingResult,
    NullingRetryOutcome,
    run_nulling,
    run_nulling_with_retry,
)
from repro.core.tracking import (
    MotionSpectrogram,
    TrackingConfig,
    compute_beamformed_spectrogram,
    compute_spectrogram,
)
from repro.environment.scene import Scene
from repro.rf.channel import ChannelModel
from repro.simulator.timeseries import (
    ChannelSeries,
    ChannelSeriesSimulator,
    TimeSeriesConfig,
)
from repro.simulator.waveform import SimulatedNullingLink, WaveformLinkConfig
from repro.telemetry.context import get_telemetry


@dataclass
class WiViDeviceConfig:
    """End-to-end device configuration."""

    waveform: WaveformLinkConfig = field(default_factory=WaveformLinkConfig)
    timeseries: TimeSeriesConfig = field(default_factory=TimeSeriesConfig)
    tracking: TrackingConfig = field(default_factory=TrackingConfig)


class NotCalibratedError(RuntimeError):
    """Capture was attempted before nulling calibration."""


class WiViDevice:
    """A Wi-Vi unit pointed at a scene.

    Usage::

        device = WiViDevice(scene, rng)
        nulling = device.calibrate()        # Algorithm 1
        spectrogram = device.image(10.0)    # mode 1: track movers
        decoded = device.receive_gestures(12.0)  # mode 2
    """

    def __init__(
        self,
        scene: Scene,
        rng: np.random.Generator | None = None,
        config: WiViDeviceConfig | None = None,
    ):
        self.scene = scene
        self.rng = rng if rng is not None else np.random.default_rng()
        self.config = config if config is not None else WiViDeviceConfig()
        self._nulling: NullingResult | None = None
        self._clock_s = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def clock_s(self) -> float:
        """The device's monotonically-advancing local time."""
        return self._clock_s

    def advance_clock(self, seconds: float) -> None:
        """Let scene time pass without capturing (e.g. retry backoff)."""
        if seconds < 0:
            raise ValueError("the clock only runs forward")
        self._clock_s += seconds

    # ------------------------------------------------------------------
    # Calibration (Chapter 4)
    # ------------------------------------------------------------------

    @property
    def is_calibrated(self) -> bool:
        return self._nulling is not None

    @property
    def nulling(self) -> NullingResult:
        if self._nulling is None:
            raise NotCalibratedError("run calibrate() first")
        return self._nulling

    def _static_channels(self) -> tuple[ChannelModel, ChannelModel]:
        """The channels nulling calibrates against: every static path.

        §4.1 notes nulling can run in the presence of movers — each
        estimate spans milliseconds, short against human motion — so
        calibrating on the static subset is the steady-state outcome.
        """
        ch1 = ChannelModel(
            self.scene.paths(self.scene.device.tx1, self._clock_s)
        ).static_subset()
        ch2 = ChannelModel(
            self.scene.paths(self.scene.device.tx2, self._clock_s)
        ).static_subset()
        return ch1, ch2

    def calibrate(self) -> NullingResult:
        """Run Algorithm 1 against the scene and store the result."""
        telemetry = get_telemetry()
        with telemetry.span("device.calibrate") as span:
            ch1, ch2 = self._static_channels()
            link = SimulatedNullingLink(ch1, ch2, self.rng, self.config.waveform)
            self._nulling = run_nulling(link)
            span.set("nulling_db", round(self._nulling.nulling_db, 3))
            if telemetry.enabled:
                telemetry.events.emit(
                    "nulling.summary",
                    nulling_db=self._nulling.nulling_db,
                    iterations=self._nulling.iterations,
                    converged=self._nulling.converged,
                    final_residual_power=self._nulling.final_residual_power,
                )
        return self._nulling

    def calibrate_with_retry(self, **retry_kwargs) -> NullingRetryOutcome:
        """Run Algorithm 1 under the bounded-retry policy.

        Backoff between attempts is charged to the device clock, so a
        retried calibration lets scene time pass just as a real device
        waiting out a transient would.  Keyword arguments are passed to
        :func:`repro.core.nulling.run_nulling_with_retry`.

        Raises:
            CalibrationError: every attempt failed (the clock has still
                advanced by the accumulated backoff).
        """
        ch1, ch2 = self._static_channels()
        link = SimulatedNullingLink(ch1, ch2, self.rng, self.config.waveform)
        outcome = run_nulling_with_retry(link, **retry_kwargs)
        self.advance_clock(outcome.backoff_s)
        self._nulling = outcome.result
        return outcome

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def capture(self, duration_s: float) -> ChannelSeries:
        """Record a nulled channel trace with the calibrated depth.

        The device clock advances, so consecutive captures see
        consecutive segments of each human's trajectory.
        """
        depth = min(self.nulling.nulling_db, 60.0)
        with get_telemetry().span(
            "device.capture", duration_s=duration_s, nulling_db=round(depth, 3)
        ):
            simulator = ChannelSeriesSimulator(
                _TimeShiftedScene(self.scene, self._clock_s),
                self.config.timeseries,
                self.rng,
            )
            series = simulator.simulate(duration_s, nulling_db=depth)
        self._clock_s += duration_s
        return series

    # ------------------------------------------------------------------
    # Mode 1: imaging / tracking (Chapter 5)
    # ------------------------------------------------------------------

    def image(self, duration_s: float) -> MotionSpectrogram:
        """Capture and produce the smoothed-MUSIC A'[theta, n] image."""
        with get_telemetry().span("device.image", duration_s=duration_s):
            series = self.capture(duration_s)
            return compute_spectrogram(series.samples, self.config.tracking)

    # ------------------------------------------------------------------
    # Mode 2: gesture interface (Chapter 6)
    # ------------------------------------------------------------------

    def receive_gestures(
        self, duration_s: float, decoder: GestureDecoder | None = None
    ) -> GestureDecodeResult:
        """Capture and decode gestures performed behind the wall."""
        series = self.capture(duration_s)
        spectrogram = compute_beamformed_spectrogram(
            series.samples, self.config.tracking
        )
        decoder = decoder if decoder is not None else GestureDecoder()
        return decoder.decode(spectrogram)

    def reset_clock(self) -> None:
        """Rewind the device clock (for repeated trials over one scene)."""
        self._clock_s = 0.0


class _TimeShiftedScene:
    """A view of a scene whose time axis starts at ``offset_s``.

    Lets consecutive :meth:`WiViDevice.capture` calls walk through the
    humans' trajectories instead of replaying them from zero.  Only the
    surface the simulator touches is forwarded.
    """

    def __init__(self, scene: Scene, offset_s: float):
        self._scene = scene
        self._offset_s = offset_s
        self.device = scene.device
        self.humans = [_TimeShiftedHuman(h, offset_s) for h in scene.humans]
        self.wavelength_m = scene.wavelength_m

    def static_gain(self, tx):
        return self._scene.static_gain(tx)

    def scatterer_path(self, tx, position, rcs_m2, kind):
        return self._scene.scatterer_path(tx, position, rcs_m2, kind)


class _TimeShiftedHuman:
    """Forwarding wrapper shifting a human's time axis.

    Forwards the :class:`repro.environment.human.Human` surface
    explicitly; anything else raises immediately instead of silently
    delegating, so a typo against the wrapper cannot masquerade as a
    real attribute lookup.
    """

    def __init__(self, human, offset_s: float):
        self._human = human
        self._offset_s = offset_s

    def scatterers(self, time_s: float):
        return self._human.scatterers(time_s + self._offset_s)

    @property
    def trajectory(self):
        return self._human.trajectory

    @property
    def body(self):
        return self._human.body

    @property
    def gait_phase(self):
        return self._human.gait_phase

    @property
    def name(self):
        return self._human.name

    def __getattr__(self, name):
        raise AttributeError(
            f"_TimeShiftedHuman forwards only the Human surface "
            f"(trajectory, body, gait_phase, name, scatterers); "
            f"{name!r} is not part of it"
        )
