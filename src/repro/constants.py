"""Physical and system constants used throughout the Wi-Vi reproduction.

Wi-Vi operates in the 2.4 GHz ISM band (thesis §3) with a wavelength of
12.5 cm, and the prototype transmits 5 MHz-wide Wi-Fi OFDM signals
because the USRP N210 cannot stream 20 MHz in real time (§7.1).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Wi-Vi carrier frequency: centre of the 2.4 GHz ISM band (Hz).
CARRIER_FREQUENCY_HZ = 2.4e9

#: Carrier wavelength (m).  The thesis quotes 12.5 cm (§2.3).
WAVELENGTH_M = SPEED_OF_LIGHT / CARRIER_FREQUENCY_HZ

#: Signal bandwidth used by the prototype (§7.1): 5 MHz, down from the
#: 20 MHz Wi-Fi channel so nulling can run in real time on USRPs.
BANDWIDTH_HZ = 5e6

#: Number of OFDM subcarriers per symbol, including DC (§7.1).
NUM_SUBCARRIERS = 64

#: Complex baseband sample rate of the prototype (samples/s).
SAMPLE_RATE_HZ = BANDWIDTH_HZ

#: ISAR emulated-array duration: samples spanning 0.32 s are averaged
#: into an array of w = 100 elements (§7.1).
ISAR_WINDOW_SECONDS = 0.32

#: Emulated antenna-array size w (§7.1).
ISAR_ARRAY_SIZE = 100

#: Effective channel-measurement period of one emulated array element:
#: 0.32 s / 100 elements = 3.2 ms.
CHANNEL_SAMPLE_PERIOD_S = ISAR_WINDOW_SECONDS / ISAR_ARRAY_SIZE

#: Effective channel-measurement rate (Hz).
CHANNEL_SAMPLE_RATE_HZ = 1.0 / CHANNEL_SAMPLE_PERIOD_S

#: Default assumed human walking speed (m/s); the thesis substitutes a
#: comfortable walking speed because the true speed is unknown (§5.1).
DEFAULT_HUMAN_SPEED_MPS = 1.0

#: Power-boost applied after initial nulling, limited by the USRP
#: transmitter's linear range (§4.1.2 footnote): 12 dB.
POWER_BOOST_DB = 12.0

#: Linear transmit-power range of the USRP N210 (§7.5): about 20 mW.
USRP_LINEAR_TX_POWER_W = 0.020

#: Wi-Fi regulatory power limit quoted for comparison (§7.5): 100 mW.
WIFI_TX_POWER_LIMIT_W = 0.100

#: Gain of the LP0965 directional antennas used by the prototype (§7.1).
ANTENNA_GAIN_DBI = 6.0

#: Matched-filter SNR threshold below which Wi-Vi refuses to decode a
#: gesture (Fig. 7-4 caption): 3 dB.
GESTURE_SNR_THRESHOLD_DB = 3.0

#: Boltzmann constant (J/K) for thermal-noise computations.
BOLTZMANN_CONSTANT = 1.380649e-23

#: Reference temperature for noise figures (K).
REFERENCE_TEMPERATURE_K = 290.0


def db_to_linear(db: float) -> float:
    """Convert a power ratio in dB to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises ``ValueError`` for non-positive ratios, for which dB is
    undefined.
    """
    if ratio <= 0:
        raise ValueError(f"cannot express non-positive power ratio {ratio!r} in dB")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0:
        raise ValueError(f"cannot express non-positive power {watts!r} in dBm")
    return linear_to_db(watts / 1e-3)


def amplitude_db(amplitude: float) -> float:
    """Convert a linear *amplitude* ratio to dB (20 log10)."""
    if amplitude <= 0:
        raise ValueError(f"cannot express non-positive amplitude {amplitude!r} in dB")
    return 20.0 * math.log10(amplitude)


def thermal_noise_power_w(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power kTB over ``bandwidth_hz``, in watts.

    ``noise_figure_db`` adds receiver noise on top of the thermal floor.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    floor = BOLTZMANN_CONSTANT * REFERENCE_TEMPERATURE_K * bandwidth_hz
    return floor * db_to_linear(noise_figure_db)
