"""Seeded chaos schedules: deterministic transport/runtime fault plans.

The transport twin of :mod:`repro.faults.schedule`.  Where a fault
schedule corrupts *signal* over capture time, a chaos schedule mangles
*operations* — pushes a client sends, ticks a scheduler runs, replies
a server writes — so its domain is the integer operation index, not
the clock.  That choice is what makes a chaos run replayable: a wall
clock drifts between runs, but "the 7th push of session 3 is
truncated" does not.

The seeding mirrors the faults layer exactly: each kind draws its
events from a child generator seeded ``(seed, kind_index)``, so one
kind's draw never perturbs another's, and two calls to
:meth:`ChaosSchedule.generate` with the same config, horizon, and seed
produce *identical* schedules — the property the chaos determinism
test pins down.

Default rates model a hostile-but-plausible network: roughly one
transport event per ~8 client operations at ``rate_scale=1``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class ChaosKind(enum.Enum):
    """The chaos taxonomy injected at the transport/runtime boundary."""

    TRUNCATE_FRAME = "truncate-frame"
    CORRUPT_FRAME = "corrupt-frame"
    OVERSIZED_FRAME = "oversized-frame"
    DISCONNECT = "disconnect"
    SLOW_LORIS = "slow-loris"
    DUPLICATE_PUSH = "duplicate-push"
    REORDER_PUSH = "reorder-push"
    STALL_TICK = "stall-tick"
    REPLY_LATENCY = "reply-latency"


#: Stable ordering used for child-generator seeding and tie-breaking
#: events landing on the same operation index.
KIND_ORDER: tuple[ChaosKind, ...] = (
    ChaosKind.TRUNCATE_FRAME,
    ChaosKind.CORRUPT_FRAME,
    ChaosKind.OVERSIZED_FRAME,
    ChaosKind.DISCONNECT,
    ChaosKind.SLOW_LORIS,
    ChaosKind.DUPLICATE_PUSH,
    ChaosKind.REORDER_PUSH,
    ChaosKind.STALL_TICK,
    ChaosKind.REPLY_LATENCY,
)

#: Kinds a client applies to its own outbound pushes.
CLIENT_KINDS: frozenset[ChaosKind] = frozenset(
    {
        ChaosKind.TRUNCATE_FRAME,
        ChaosKind.CORRUPT_FRAME,
        ChaosKind.OVERSIZED_FRAME,
        ChaosKind.DISCONNECT,
        ChaosKind.SLOW_LORIS,
        ChaosKind.DUPLICATE_PUSH,
        ChaosKind.REORDER_PUSH,
    }
)

#: Kinds the server runtime applies to itself.
SERVER_KINDS: frozenset[ChaosKind] = frozenset(
    {ChaosKind.STALL_TICK, ChaosKind.REPLY_LATENCY}
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled chaos action.

    Attributes:
        kind: which transport failure fires.
        op_index: the 0-based operation (push / tick / reply) it
            strikes.
        magnitude: kind-specific strength — a truncation fraction, a
            stall duration in seconds, a dribble delay — see
            :mod:`repro.chaos.injector` for the interpretation.
    """

    kind: ChaosKind
    op_index: int
    magnitude: float

    def describe(self) -> str:
        return f"{self.kind.value} @ op {self.op_index} mag={self.magnitude:.3g}"


@dataclass(frozen=True)
class ChaosScheduleConfig:
    """Arrival rates and magnitudes of the injected chaos mix.

    Rates are expected events per 100 operations; ``rate_scale``
    multiplies all of them so a soak can sweep overall chaos pressure
    with one knob (mirroring ``FaultScheduleConfig.rate_scale``).

    Attributes:
        truncate_min_fraction: a truncated frame keeps at least this
            fraction of its bytes (the exact fraction is drawn
            uniformly up to ``truncate_max_fraction`` from the event's
            child generator).
        slow_loris_delay_s: pause between dribbled chunks.
        slow_loris_chunk_bytes: bytes per dribbled chunk.
        stall_tick_delay_s: how long a stalled scheduler tick sleeps —
            set it beyond the watchdog timeout to force the serial
            degraded path.
        reply_latency_s: artificial delay before a reply write.
    """

    truncate_frame_rate: float = 2.0
    corrupt_frame_rate: float = 3.0
    oversized_frame_rate: float = 1.0
    disconnect_rate: float = 3.0
    slow_loris_rate: float = 2.0
    duplicate_push_rate: float = 2.0
    reorder_push_rate: float = 2.0
    stall_tick_rate: float = 1.5
    reply_latency_rate: float = 2.0
    rate_scale: float = 1.0

    truncate_min_fraction: float = 0.1
    truncate_max_fraction: float = 0.9
    slow_loris_delay_s: float = 0.005
    slow_loris_chunk_bytes: int = 64
    stall_tick_delay_s: float = 0.25
    reply_latency_s: float = 0.05

    def __post_init__(self) -> None:
        for name, rate in self.rates().items():
            if rate < 0:
                raise ValueError(f"{name} rate must be non-negative")
        if self.rate_scale < 0:
            raise ValueError("rate scale must be non-negative")
        if not 0 < self.truncate_min_fraction <= self.truncate_max_fraction < 1:
            raise ValueError("truncate fractions must satisfy 0 < min <= max < 1")
        if self.slow_loris_chunk_bytes < 1:
            raise ValueError("slow-loris chunk size must be positive")
        for name in ("slow_loris_delay_s", "stall_tick_delay_s", "reply_latency_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def rates(self) -> dict[ChaosKind, float]:
        """Effective per-kind rates per 100 ops (after ``rate_scale``)."""
        return {
            ChaosKind.TRUNCATE_FRAME: self.truncate_frame_rate * self.rate_scale,
            ChaosKind.CORRUPT_FRAME: self.corrupt_frame_rate * self.rate_scale,
            ChaosKind.OVERSIZED_FRAME: self.oversized_frame_rate * self.rate_scale,
            ChaosKind.DISCONNECT: self.disconnect_rate * self.rate_scale,
            ChaosKind.SLOW_LORIS: self.slow_loris_rate * self.rate_scale,
            ChaosKind.DUPLICATE_PUSH: self.duplicate_push_rate * self.rate_scale,
            ChaosKind.REORDER_PUSH: self.reorder_push_rate * self.rate_scale,
            ChaosKind.STALL_TICK: self.stall_tick_rate * self.rate_scale,
            ChaosKind.REPLY_LATENCY: self.reply_latency_rate * self.rate_scale,
        }

    def _magnitude(self, kind: ChaosKind, rng: np.random.Generator) -> float:
        if kind is ChaosKind.TRUNCATE_FRAME:
            return float(
                rng.uniform(self.truncate_min_fraction, self.truncate_max_fraction)
            )
        if kind is ChaosKind.SLOW_LORIS:
            return self.slow_loris_delay_s
        if kind is ChaosKind.STALL_TICK:
            return self.stall_tick_delay_s
        if kind is ChaosKind.REPLY_LATENCY:
            return self.reply_latency_s
        return 0.0


@dataclass(frozen=True)
class ChaosSchedule:
    """A sorted, immutable list of chaos events over an op horizon.

    Build one deterministically with :meth:`generate`, or construct
    directly from explicit events (tests and scripted scenarios).
    """

    events: tuple[ChaosEvent, ...]
    horizon_ops: int
    seed: int | None = None

    @classmethod
    def generate(
        cls,
        config: ChaosScheduleConfig,
        horizon_ops: int,
        seed: int,
    ) -> ChaosSchedule:
        """Draw a schedule: Poisson arrivals per kind, seeded per kind."""
        if horizon_ops <= 0:
            raise ValueError("schedule horizon must be positive")
        events: list[ChaosEvent] = []
        rates = config.rates()
        for index, kind in enumerate(KIND_ORDER):
            rate = rates[kind]
            if rate == 0:
                continue
            rng = np.random.default_rng([int(seed), index])
            count = int(rng.poisson(rate * horizon_ops / 100.0))
            ops = np.sort(rng.integers(0, horizon_ops, count))
            for op in ops:
                events.append(
                    ChaosEvent(
                        kind=kind,
                        op_index=int(op),
                        magnitude=config._magnitude(kind, rng),
                    )
                )
        events.sort(key=lambda e: (e.op_index, KIND_ORDER.index(e.kind)))
        return cls(events=tuple(events), horizon_ops=horizon_ops, seed=seed)

    def events_at(self, op_index: int) -> list[ChaosEvent]:
        """Events striking one operation, in kind order."""
        return [event for event in self.events if event.op_index == op_index]

    def events_of(self, kinds: frozenset[ChaosKind]) -> list[ChaosEvent]:
        """The sub-schedule of the given kinds, original order."""
        return [event for event in self.events if event.kind in kinds]

    def describe(self) -> list[str]:
        """Human-readable, deterministic event log."""
        return [event.describe() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


def scheduled_chaos_count(config: ChaosScheduleConfig, horizon_ops: int) -> float:
    """Expected number of events a schedule of this horizon draws."""
    return sum(config.rates().values()) * horizon_ops / 100.0
