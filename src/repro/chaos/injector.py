"""Applies a chaos schedule at the transport/runtime boundary.

Two injectors split the taxonomy by where the damage is done:

* :class:`ClientChaos` mangles a client's *outbound pushes* — the
  operation domain is the push index.  It never touches the socket
  itself; the resilient client (:mod:`repro.serve.resilient`) asks it
  what to do to push *n* and for the mangled bytes, then performs the
  writes/aborts, so the injector stays a pure, deterministic function
  of (schedule, seed, op).
* :class:`ServerChaos` stalls the *server's own runtime* — delayed
  scheduler ticks (exercising the watchdog's serial degraded path) and
  artificial reply latency (exercising client read timeouts).  Its
  operation domains are the tick index and the reply index.

Both keep an append-only ``log`` of every event actually applied,
mirroring :class:`repro.faults.injector.FaultInjector`.  A client log
is bit-for-bit reproducible across runs: the op domain is the push
index and every magnitude/choice comes from child generators seeded
``(seed, op, kind)``.  A server log is schedule-deterministic (same
seed, same planned events) but application-dependent — how many ticks
a run takes depends on load timing — which is why the chaos-soak
determinism gate compares client logs and schedules, not server
application logs (see DESIGN.md §11).

Corruption is deliberately *guaranteed-invalid*: a random bit flip in
a base64 samples field could decode to different-but-valid samples and
silently diverge the served columns, so :meth:`ClientChaos.corrupt`
only applies mutations a conforming server must reject (non-UTF-8
lead byte, broken JSON punctuation, an amputated closing brace).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.schedule import (
    CLIENT_KINDS,
    KIND_ORDER,
    SERVER_KINDS,
    ChaosEvent,
    ChaosKind,
    ChaosSchedule,
)
from repro.telemetry.context import get_telemetry


@dataclass(frozen=True)
class ChaosLogEntry:
    """One applied chaos action, as recorded by an injector."""

    op_index: int
    kind: ChaosKind
    detail: str

    def describe(self) -> str:
        return f"op {self.op_index} {self.kind.value}: {self.detail}"


class ClientChaos:
    """Deterministic push-mangling plan for one client session.

    Every decision — which corruption variant, where to cut a
    truncated frame, whether a disconnect strikes before or after the
    bytes went out — is drawn from a child generator seeded
    ``(seed, op_index, kind_index)``, so the applied log depends only
    on the schedule and the op sequence, never on timing.
    """

    def __init__(self, schedule: ChaosSchedule, seed: int):
        self.schedule = schedule
        self.seed = int(seed)
        self.log: list[ChaosLogEntry] = []
        self._by_op: dict[int, list[ChaosEvent]] = {}
        for event in schedule.events_of(CLIENT_KINDS):
            self._by_op.setdefault(event.op_index, []).append(event)

    def plan_for(self, op_index: int) -> list[ChaosEvent]:
        """The client-side events striking push ``op_index``."""
        return list(self._by_op.get(op_index, ()))

    def _rng(self, op_index: int, kind: ChaosKind) -> np.random.Generator:
        return np.random.default_rng(
            [self.seed, int(op_index), KIND_ORDER.index(kind)]
        )

    def record(self, op_index: int, kind: ChaosKind, detail: str) -> None:
        """Log one applied action (and count it in telemetry)."""
        self.log.append(ChaosLogEntry(op_index=op_index, kind=kind, detail=detail))
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter(f"chaos.client.{kind.value}").inc()

    # ------------------------------------------------------------------
    # Mangling primitives (pure; the resilient client does the I/O)
    # ------------------------------------------------------------------

    def corrupt(self, data: bytes, op_index: int) -> tuple[bytes, str]:
        """A guaranteed-invalid mutation of one encoded frame.

        Returns the corrupted line (newline framing preserved, so the
        server's reader recovers on the next line) and a detail string
        for the log.
        """
        variant = int(self._rng(op_index, ChaosKind.CORRUPT_FRAME).integers(0, 3))
        body = bytearray(data)
        if variant == 0:
            body[0] = 0xFF  # not valid UTF-8
            detail = "non-utf8 lead byte"
        elif variant == 1:
            body[0] = ord("#")  # not valid JSON
            detail = "broken JSON punctuation"
        else:
            # Drop the closing brace, keep the newline.
            brace = bytes(body).rfind(b"}")
            if brace >= 0:
                del body[brace]
            detail = "amputated closing brace"
        return bytes(body), detail

    def truncate(
        self, data: bytes, event: ChaosEvent
    ) -> tuple[bytes, str]:
        """The torn prefix of a frame (no newline — framing is lost)."""
        keep = max(1, int(len(data) * event.magnitude))
        keep = min(keep, len(data) - 1)  # never the full line
        torn = data[:keep]
        if torn.endswith(b"\n"):
            torn = torn[:-1]
        # Log the seeded fraction, not byte counts: frame length varies
        # with the width of the server-assigned session id, and the log
        # must be bit-identical across runs against a shared server.
        return torn, f"kept fraction {event.magnitude:.4f}"

    def oversize_frame(self, limit_bytes: int) -> tuple[bytes, str]:
        """A syntactically plausible frame just beyond the size limit."""
        prefix = b'{"type":"ping","pad":"'
        suffix = b'"}\n'
        pad = limit_bytes + 1 - len(prefix) - len(suffix)
        return (
            prefix + b"A" * max(pad, 1) + suffix,
            f"{limit_bytes + 1} bytes vs limit {limit_bytes}",
        )

    def disconnect_after_send(self, op_index: int) -> bool:
        """Whether a disconnect strikes after the push bytes went out.

        ``True`` is the nastier half: the server may have applied the
        push and the reply is lost, so resume idempotency (replay from
        the pre-push checkpoint) is what keeps the columns equal.
        """
        return bool(self._rng(op_index, ChaosKind.DISCONNECT).integers(0, 2))


class ServerChaos:
    """Self-inflicted runtime stalls for a chaos-mode server."""

    def __init__(self, schedule: ChaosSchedule, wrap: bool = True):
        self.schedule = schedule
        #: Re-apply the schedule modulo its horizon, so a long-lived
        #: server keeps injecting however many ticks/replies it serves.
        self.wrap = wrap
        self.log: list[ChaosLogEntry] = []
        self._tick_op = 0
        self._reply_op = 0
        self._by_op: dict[tuple[ChaosKind, int], list[ChaosEvent]] = {}
        for event in schedule.events_of(SERVER_KINDS):
            self._by_op.setdefault((event.kind, event.op_index), []).append(event)

    def _events(self, kind: ChaosKind, op: int) -> list[ChaosEvent]:
        if self.wrap and self.schedule.horizon_ops > 0:
            op = op % self.schedule.horizon_ops
        return self._by_op.get((kind, op), [])

    def _record(self, op: int, kind: ChaosKind, detail: str) -> None:
        self.log.append(ChaosLogEntry(op_index=op, kind=kind, detail=detail))
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter(f"chaos.server.{kind.value}").inc()
            telemetry.events.emit(
                "chaos.injected", kind=kind.value, op_index=op, detail=detail
            )

    async def before_tick(self) -> None:
        """Called by the scheduler loop before each tick; may stall it."""
        import asyncio

        op = self._tick_op
        self._tick_op += 1
        for event in self._events(ChaosKind.STALL_TICK, op):
            self._record(op, event.kind, f"stalled tick {event.magnitude:.3f}s")
            await asyncio.sleep(event.magnitude)

    async def before_reply(self) -> None:
        """Called by the server before each reply write; may delay it."""
        import asyncio

        op = self._reply_op
        self._reply_op += 1
        for event in self._events(ChaosKind.REPLY_LATENCY, op):
            self._record(op, event.kind, f"delayed reply {event.magnitude:.3f}s")
            await asyncio.sleep(event.magnitude)
