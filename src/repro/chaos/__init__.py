"""repro.chaos — seeded transport/runtime fault injection.

The transport-domain twin of :mod:`repro.faults`: where the faults
layer corrupts samples at the hardware boundary, the chaos layer
mangles the serving stack's *operations* — torn and corrupted wire
frames, mid-push disconnects, slow-loris byte dribble, duplicated and
reordered pushes, stalled scheduler ticks, delayed replies.  One seed
reproduces an entire chaos plan bit-for-bit (schedules are drawn from
per-kind child generators exactly like fault schedules), which is what
lets the chaos soak gate on *identical* event logs across runs.

The serve stack is expected to survive everything this package throws:
see :mod:`repro.serve.resilient` for the client half (reconnect,
backoff, resume-from-checkpoint) and DESIGN.md §11 for the failure
matrix.
"""

from repro.chaos.injector import ChaosLogEntry, ClientChaos, ServerChaos
from repro.chaos.schedule import (
    CLIENT_KINDS,
    KIND_ORDER,
    SERVER_KINDS,
    ChaosEvent,
    ChaosKind,
    ChaosSchedule,
    ChaosScheduleConfig,
    scheduled_chaos_count,
)

__all__ = [
    "CLIENT_KINDS",
    "ChaosEvent",
    "ChaosKind",
    "ChaosLogEntry",
    "ChaosSchedule",
    "ChaosScheduleConfig",
    "ClientChaos",
    "KIND_ORDER",
    "SERVER_KINDS",
    "ServerChaos",
    "scheduled_chaos_count",
]
