"""Narrowband Doppler-radar baseline (§2.1).

The pre-Wi-Vi narrowband systems (Ram & Ling; Kim & Ling) "ignore the
flash effect and try to operate in presence of high interference caused
by reflections off the wall.  They typically rely on detecting the
Doppler shift caused by moving objects ... However, the flash effect
limits their detection capabilities.  Hence, most of these systems are
demonstrated either in simulation, or in free space" (§2.1).

This module implements exactly that receiver: a single un-nulled
continuous-wave channel digitized by a finite-range ADC whose gain is
set by the (huge) static return, followed by DC removal and a Doppler
spectrogram.  Through a wall, the target's micro-variations fall below
the ADC's quantization floor and detection fails; in free space the
same pipeline works — reproducing the paper's critique and motivating
MIMO nulling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import thermal_noise_power_w
from repro.environment.scene import Scene
from repro.hardware.adc import SaturatingAdc


@dataclass(frozen=True)
class DopplerConfig:
    """Receiver parameters.

    Attributes:
        sample_rate_hz: slow-time sampling rate of the CW receiver.
        adc_bits: converter resolution; the AGC ranges full scale to
            the total received signal, so the effective floor for the
            weak moving component is ``full_scale / 2**bits``.
        agc_headroom: full-scale margin above the static return.
        tx_power_w: CW transmit power.
        oscillator_jitter: fractional amplitude/phase jitter of the CW
            oscillator per sample.  The jitter rides on the *entire*
            received signal — dominated by the un-nulled static flash —
            and lands inside the Doppler band, which is the real-world
            reason un-nulled CW radars drown behind reflective walls.
            (Wi-Vi suffers the same jitter, but only on the 40 dB
            smaller *nulled* residual.)
        detection_snr_db: Doppler-band energy over the noise floor
            required to declare motion.
    """

    sample_rate_hz: float = 312.5
    adc_bits: int = 11
    agc_headroom: float = 1.5
    tx_power_w: float = 0.02
    oscillator_jitter: float = 4.0e-3
    detection_snr_db: float = 10.0

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0 or self.tx_power_w <= 0:
            raise ValueError("rates and powers must be positive")
        if self.adc_bits < 1:
            raise ValueError("ADC needs at least one bit")


@dataclass
class DopplerResult:
    """Detector output.

    Attributes:
        doppler_hz: frequency axis of the Doppler spectrum.
        spectrum: magnitude spectrum of the DC-removed channel.
        band_snr_db: energy in the human-Doppler band (1-40 Hz) over
            the out-of-band floor.
        detected: whether the band SNR cleared the threshold.
        saturated: whether the ADC clipped (gain forced low).
    """

    doppler_hz: np.ndarray
    spectrum: np.ndarray
    band_snr_db: float
    detected: bool
    saturated: bool


class DopplerDetector:
    """A single-antenna CW Doppler receiver over a Wi-Vi scene."""

    def __init__(self, config: DopplerConfig | None = None):
        self.config = config if config is not None else DopplerConfig()

    def _received_series(
        self, scene: Scene, duration_s: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, bool]:
        """Digitized CW samples: static + moving + noise through the
        AGC-ranged ADC."""
        num = max(int(duration_s * self.config.sample_rate_hz), 4)
        times = np.arange(num) / self.config.sample_rate_hz
        tx = scene.device.tx1
        static = scene.static_gain(tx)
        amplitude = math.sqrt(self.config.tx_power_w)
        samples = np.empty(num, dtype=complex)
        for index, time_s in enumerate(times):
            samples[index] = amplitude * (static + scene.moving_gain(tx, float(time_s)))
        noise_power = thermal_noise_power_w(20e6, noise_figure_db=7.0)
        samples += math.sqrt(noise_power / 2.0) * (
            rng.standard_normal(num) + 1j * rng.standard_normal(num)
        )
        # Oscillator jitter multiplies the whole received signal; with
        # the flash un-nulled, the static term dominates and the jitter
        # sidebands land squarely in the Doppler band.
        if self.config.oscillator_jitter > 0:
            jitter = self.config.oscillator_jitter / math.sqrt(2.0) * (
                rng.standard_normal(num) + 1j * rng.standard_normal(num)
            )
            samples += amplitude * static * jitter
        # AGC: the ADC must accommodate the full (static-dominated)
        # signal — this is the step nulling removes the need for.
        full_scale = float(np.max(np.abs(samples))) * self.config.agc_headroom
        adc = SaturatingAdc(bits=self.config.adc_bits, full_scale=max(full_scale, 1e-12))
        digitized = adc.convert(samples)
        return digitized, adc.saturates(samples)

    def detect(
        self, scene: Scene, duration_s: float, rng: np.random.Generator
    ) -> DopplerResult:
        """Run the Doppler pipeline over a scene."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        samples, saturated = self._received_series(scene, duration_s, rng)
        detrended = samples - samples.mean()
        window = np.hanning(len(detrended))
        spectrum = np.abs(np.fft.fftshift(np.fft.fft(detrended * window)))
        frequencies = np.fft.fftshift(
            np.fft.fftfreq(len(detrended), 1.0 / self.config.sample_rate_hz)
        )

        in_band = (np.abs(frequencies) >= 1.0) & (np.abs(frequencies) <= 40.0)
        out_band = np.abs(frequencies) > 60.0
        if not np.any(in_band) or not np.any(out_band):
            raise ValueError("duration too short for Doppler analysis")
        band_power = float(np.mean(spectrum[in_band] ** 2))
        floor_power = float(np.mean(spectrum[out_band] ** 2))
        snr_db = 10.0 * math.log10(band_power / max(floor_power, 1e-300))
        return DopplerResult(
            doppler_hz=frequencies,
            spectrum=spectrum,
            band_snr_db=snr_db,
            detected=snr_db > self.config.detection_snr_db,
            saturated=saturated,
        )
