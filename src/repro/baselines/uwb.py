"""Ultra-wideband pulse-radar baseline (§2.1).

State-of-the-art through-wall systems before Wi-Vi "separate
reflections off the wall from reflections from the objects behind the
wall based on their arrival time, and hence need to identify
sub-nanosecond delays (i.e., multi-GHz bandwidth) to filter the flash
effect" (§1).

This module implements that approach directly: a monostatic pulse
radar illuminates the scene, forms a range profile whose resolution is
``c / (2 B)``, gates out the range bins containing the wall flash, and
looks for a moving return in the remaining bins across slow-time.

The point of the baseline is its bandwidth dependence: at 2 GHz the
wall (range ~1 m) and a human at 4 m sit ~40 range bins apart and the
gate works; at Wi-Fi's 20 MHz one range bin spans 7.5 m, the wall and
the human share it, and gating removes the target along with the flash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.environment.scene import Scene
from repro.rf.channel import Path, PathKind


@dataclass(frozen=True)
class UwbConfig:
    """Pulse-radar parameters.

    Attributes:
        bandwidth_hz: pulse bandwidth; range resolution is c / (2 B).
            The systems the paper cites use ~2 GHz.
        max_range_m: extent of the range profile.
        pulse_rate_hz: slow-time sampling rate (pulses per second).
        noise_relative: range-profile noise floor relative to a unit
            reflector at 1 m.
    """

    bandwidth_hz: float = 2e9
    max_range_m: float = 16.0
    pulse_rate_hz: float = 100.0
    noise_relative: float = 1e-7

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0 or self.max_range_m <= 0 or self.pulse_rate_hz <= 0:
            raise ValueError("bandwidth, range, and pulse rate must be positive")

    @property
    def range_resolution_m(self) -> float:
        """Two-way range resolution c / (2 B)."""
        return SPEED_OF_LIGHT / (2.0 * self.bandwidth_hz)

    @property
    def num_bins(self) -> int:
        return max(int(math.ceil(self.max_range_m / self.range_resolution_m)), 1)


@dataclass
class UwbScanResult:
    """Output of one slow-time scan.

    Attributes:
        ranges_m: bin centres of the range profile.
        profiles: complex range profiles, shape (num_pulses, num_bins).
        gated_bins: indices removed by the wall gate.
        motion_energy: per-bin slow-time variance after gating.
        detected_range_m: range of the strongest moving return, or
            ``None`` when nothing rises above the detection threshold.
    """

    ranges_m: np.ndarray
    profiles: np.ndarray
    gated_bins: np.ndarray
    motion_energy: np.ndarray
    detected_range_m: float | None


class UwbRadar:
    """A monostatic time-gating pulse radar over a Wi-Vi scene."""

    def __init__(self, config: UwbConfig | None = None):
        self.config = config if config is not None else UwbConfig()

    # ------------------------------------------------------------------
    # Range profiles
    # ------------------------------------------------------------------

    def _paths_at(self, scene: Scene, time_s: float) -> list[Path]:
        return scene.paths(scene.device.tx1, time_s)

    def range_profile(self, scene: Scene, time_s: float) -> np.ndarray:
        """Complex range profile for one pulse.

        Each propagation path deposits its amplitude in the bin of its
        *round-trip-halved* distance; within-bin phase is carried at
        the pulse's centre frequency so slow-time motion is visible.
        """
        profile = np.zeros(self.config.num_bins, dtype=complex)
        resolution = self.config.range_resolution_m
        for path in self._paths_at(scene, time_s):
            bin_range = path.distance_m / 2.0  # monostatic: out and back
            index = int(bin_range / resolution)
            if 0 <= index < self.config.num_bins:
                profile[index] += path.gain(scene.wavelength_m)
        return profile

    def wall_gate(self, scene: Scene) -> np.ndarray:
        """Bins occupied by the direct path and wall flash (+1 guard).

        The gate is what UWB systems apply "in the analog domain before
        the signal reaches the ADC" (§1 fn.); here it simply zeroes the
        flash bins.
        """
        gated: set[int] = set()
        resolution = self.config.range_resolution_m
        for path in self._paths_at(scene, 0.0):
            if path.kind in (PathKind.FLASH, PathKind.DIRECT):
                index = int(path.distance_m / 2.0 / resolution)
                for guard in (index - 1, index, index + 1):
                    if 0 <= guard < self.config.num_bins:
                        gated.add(guard)
        return np.array(sorted(gated), dtype=int)

    # ------------------------------------------------------------------
    # Scan
    # ------------------------------------------------------------------

    def scan(
        self,
        scene: Scene,
        duration_s: float,
        rng: np.random.Generator,
        detection_factor: float = 8.0,
    ) -> UwbScanResult:
        """Collect pulses over ``duration_s`` and detect moving returns.

        Detection: after gating the wall bins, the slow-time standard
        deviation of each remaining bin is compared against
        ``detection_factor`` times the noise floor.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        num_pulses = max(int(duration_s * self.config.pulse_rate_hz), 2)
        times = np.arange(num_pulses) / self.config.pulse_rate_hz
        profiles = np.stack([self.range_profile(scene, float(t)) for t in times])
        noise = self.config.noise_relative / math.sqrt(2.0) * (
            rng.standard_normal(profiles.shape)
            + 1j * rng.standard_normal(profiles.shape)
        )
        profiles = profiles + noise

        gated = self.wall_gate(scene)
        cleaned = profiles.copy()
        cleaned[:, gated] = 0.0

        motion = cleaned.std(axis=0)
        threshold = detection_factor * self.config.noise_relative
        ranges = (np.arange(self.config.num_bins) + 0.5) * self.config.range_resolution_m
        candidates = np.where(motion > threshold)[0]
        detected = (
            float(ranges[candidates[np.argmax(motion[candidates])]])
            if len(candidates)
            else None
        )
        return UwbScanResult(
            ranges_m=ranges,
            profiles=profiles,
            gated_bins=gated,
            motion_energy=motion,
            detected_range_m=detected,
        )

    def wall_and_target_share_bin(self, scene: Scene, target_range_m: float) -> bool:
        """Whether the wall gate would also swallow the target —
        the narrowband failure mode (§1)."""
        gated = self.wall_gate(scene)
        index = int(target_range_m / self.config.range_resolution_m)
        return bool(np.isin(index, gated))
