"""Baseline through-wall sensing systems the paper positions against.

§2.1 describes two families:

* **Ultra-wideband pulse radars** (Ralston et al., Yang & Fathy) that
  isolate the wall's flash *in time*: with 2 GHz of bandwidth, the
  wall's reflection arrives in an earlier range bin than the human's
  and can be gated out.  :mod:`repro.baselines.uwb` implements the
  time-gating pipeline and shows exactly why it needs GHz of
  bandwidth — at Wi-Fi's 20 MHz the wall and the human land in the
  same range bin.
* **Narrowband Doppler radars** (Ram et al., Kim & Ling) that ignore
  the flash and look for Doppler shifts.  :mod:`repro.baselines.doppler`
  implements the Doppler detector and reproduces the paper's critique:
  it works in free space but "the flash effect limits their detection
  capabilities" through real walls (§2.1) because the un-nulled static
  signal saturates the receiver.
"""

from repro.baselines.doppler import DopplerDetector, DopplerResult
from repro.baselines.uwb import UwbRadar, UwbScanResult

__all__ = ["DopplerDetector", "DopplerResult", "UwbRadar", "UwbScanResult"]
