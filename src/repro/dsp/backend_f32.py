"""The float32 fast path: real-symmetric MUSIC with an error budget.

Spectrogram columns are *displayed*, not differentiated, so the
serving hot path can trade precision for throughput — provided the
trade is explicit.  This backend runs the fused smoothed-MUSIC pass in
float32 and escalates every window it cannot certify back to the
float64 reference kernels, which buys two properties at once:

* **Exact guard parity.**  Degeneracy / fallback / source-count
  decisions near any threshold are re-taken by the reference kernels
  (the escalation triggers are deliberately wider than float32's
  error bars), so the decisions the health machine and the estimator
  labels depend on match :class:`~repro.dsp.backend.NumpyFloat64Backend`
  exactly — on clean data *and* on NaN-burst / saturated /
  rank-degenerate windows.
* **A bounded column budget.**  Accepted fast-path rows keep the
  Eq. 5.3 noise-projection denominator within
  ``den_budget_per_m * w'`` per angle of the reference (measured two
  orders of magnitude inside that on the bench trace) and the
  dominant angle within one grid bin; the conformance suite
  (``tests/dsp/test_backend_conformance.py``) enforces both.

The speed comes from the centrohermitian structure of the
forward-backward averaged covariance: ``J R* J = R``, so the unitary

    Q = (1/sqrt(2)) [[I, iI], [J, -iJ]]        (w' even)

maps R to the **real symmetric** ``C = Q^H R Q`` with identical
eigenvalues, and the whole eigenproblem runs through LAPACK's real
``ssyevd`` instead of the complex ``cheevd``/``zheevd``.  MUSIC
projections never need the complex eigenvectors back: with
``B = conj(S) Q`` (S the steering table), ``|S^H u|^2 = |B v|^2`` for
``u = Q v``, evaluated as two real matmuls.  Windows with odd ``w'``
or non-forward-backward covariances take the reference path.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dsp.backend import (
    DEFAULT_BACKEND,
    DspBackend,
    MusicBatchResult,
    get_backend,
    register_backend,
)
from repro.dsp.eig import REASON_OK
from repro.dsp.steering import steering_matrix
from repro.dsp.windows import subarray_view

_EPS32 = float(np.finfo(np.float32).eps)


def _real_transform(m: int) -> np.ndarray:
    """The unitary Q with ``Q^H R Q`` real for centrohermitian R."""
    p = m // 2
    identity = np.eye(p)
    q = np.zeros((m, m), dtype=complex)
    q[:p, :p] = identity
    q[:p, p:] = 1j * identity
    q[p:, :p] = identity[::-1]
    q[p:, p:] = -1j * identity[::-1]
    q /= np.sqrt(2.0)
    return q


@register_backend
class NumpyFloat32Backend(DspBackend):
    """Budgeted float32 MUSIC with escalation to the float64 kernels."""

    name = "numpy-float32"
    description = (
        "float32 fast path (real-symmetric eigh via the centrohermitian "
        "transform); budgeted, escalates uncertifiable windows to float64"
    )
    steering_dtype = np.complex64
    bit_exact = False
    #: Accepted rows keep |den - den_ref| <= den_budget_per_m * w' per
    #: angle (den in [0, w']).  Bench-measured worst case is ~1.3e-5*w';
    #: the budget leaves two orders of magnitude of headroom and the
    #: conformance suite enforces it on adversarial windows.
    den_budget_per_m = 1e-3

    #: Escalation triggers (each provably or empirically wider than the
    #: float32 error bars, so non-escalated rows are certainly clean):
    #: condition numbers beyond this (or half the configured limit,
    #: whichever is smaller) re-run in float64 — any window the
    #: reference guard would reject at the default 1e12 limit shows a
    #: float32 condition estimate far above 1e5.
    COND_ESCALATE = 1e5
    #: Traces at float32's resolution floor (the reference "dead"
    #: threshold is float64-tiny, unrepresentable in float32).
    TRACE_ESCALATE = 1e-35
    #: Source-count border: eigenvalues within max(rtol * threshold,
    #: ulps * eps32 * lam1) of the dominance threshold could flip the
    #: count, so the row re-runs in float64.
    COUNT_BORDER_RTOL = 3e-3
    COUNT_BORDER_ULPS = 256.0
    #: Signal/noise split gaps below this fraction of lam1 make the
    #: noise-subspace rotation error-prone; escalate.
    GAP_ESCALATE_REL = 1e-4

    def __init__(self) -> None:
        self._steering_memo: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    # -- helpers --------------------------------------------------------

    def _transformed_steering(
        self, config: Any
    ) -> tuple[np.ndarray, np.ndarray]:
        """``B = conj(S) Q`` split into contiguous float32 Re/Im parts."""
        thetas = np.ascontiguousarray(
            np.atleast_1d(config.theta_grid_deg), dtype=float
        )
        key = (
            int(config.subarray_size),
            float(config.spacing_m),
            float(config.wavelength_m),
            thetas.tobytes(),
        )
        memo = self._steering_memo.get(key)
        if memo is not None:
            return memo
        steering = steering_matrix(
            thetas,
            config.subarray_size,
            config.spacing_m,
            config.wavelength_m,
        )
        transformed = steering.conj() @ _real_transform(config.subarray_size)
        memo = (
            np.ascontiguousarray(transformed.real, dtype=np.float32),
            np.ascontiguousarray(transformed.imag, dtype=np.float32),
        )
        if len(self._steering_memo) >= 16:
            self._steering_memo.pop(next(iter(self._steering_memo)))
        self._steering_memo[key] = memo
        return memo

    # -- kernel overrides ----------------------------------------------

    def beamform_batch(self, windows: np.ndarray, steering: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows).astype(np.complex64, copy=False)
        steering = np.asarray(steering).astype(np.complex64, copy=False)
        projected = np.matmul(steering.conj(), windows[:, :, np.newaxis])[:, :, 0]
        return np.abs(projected).astype(float)

    # -- the fused pass -------------------------------------------------

    def music_batch(self, windows: np.ndarray, config: Any) -> MusicBatchResult:
        m = int(config.subarray_size)
        if m % 2:
            # The real transform needs an even subarray; rare configs
            # with odd w' take the exact path wholesale.
            return get_backend(DEFAULT_BACKEND).music_batch(windows, config)
        windows = np.asarray(windows, dtype=complex)
        num_windows = windows.shape[0]
        num_angles = len(config.theta_grid_deg)
        power = np.zeros((num_windows, num_angles))
        out_counts = np.zeros(num_windows, dtype=int)
        reasons = np.full(num_windows, REASON_OK, dtype=object)
        eigenvalues = np.zeros((num_windows, m))
        if num_windows == 0:
            return MusicBatchResult(power, out_counts, reasons, eigenvalues)

        stack32 = windows.astype(np.complex64)
        subarrays = np.ascontiguousarray(subarray_view(stack32, m))
        covariance = np.matmul(subarrays.transpose(0, 2, 1), subarrays.conj())
        covariance /= np.float32(subarrays.shape[1])
        covariance = np.complex64(0.5) * (
            covariance + covariance[:, ::-1, ::-1].conj()
        )

        # Centrohermitian -> real symmetric, assembled by quadrant from
        # A = R[:p,:p] and the column-reversed BJ = R[:p,p:] J.
        p = m // 2
        top_left = covariance[:, :p, :p]
        top_right_j = covariance[:, :p, p:][:, :, ::-1]
        real_cov = np.empty((num_windows, m, m), dtype=np.float32)
        real_cov[:, :p, :p] = top_left.real + top_right_j.real
        real_cov[:, :p, p:] = -top_left.imag + top_right_j.imag
        real_cov[:, p:, :p] = top_left.imag + top_right_j.imag
        real_cov[:, p:, p:] = top_left.real - top_right_j.real
        real_cov = np.float32(0.5) * (real_cov + real_cov.transpose(0, 2, 1))

        finite = np.isfinite(real_cov).all(axis=(1, 2))
        if not finite.all():
            # Placeholder so the stacked eigh cannot throw; these rows
            # escalate below and never use the placeholder results.
            real_cov[~finite] = np.eye(m, dtype=np.float32)
        values, vectors = np.linalg.eigh(real_cov)
        values = np.ascontiguousarray(values[:, ::-1])
        vectors = np.ascontiguousarray(vectors[:, :, ::-1])

        tiny32 = np.float32(np.finfo(np.float32).tiny)
        lam1 = values[:, 0]
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            condition = lam1 / np.maximum(values[:, -1], tiny32)
        trace = values.sum(axis=1)

        noise = np.maximum(np.median(values[:, m // 2 :], axis=1), tiny32)
        threshold = noise * np.float32(10.0 ** (6.0 / 10.0))
        cap = min(int(config.max_sources), m - 1)
        counts = np.clip((values > threshold[:, None]).sum(axis=1), 1, cap)
        border_tol = np.maximum(
            np.float32(self.COUNT_BORDER_RTOL) * threshold,
            np.float32(self.COUNT_BORDER_ULPS * _EPS32) * np.abs(lam1),
        )
        counts_wide = np.clip(
            (values > (threshold - border_tol)[:, None]).sum(axis=1), 1, cap
        )
        counts_narrow = np.clip(
            (values > (threshold + border_tol)[:, None]).sum(axis=1), 1, cap
        )
        rows = np.arange(num_windows)
        split_gap = values[rows, counts - 1] - values[rows, np.minimum(counts, m - 1)]

        cond_limit32 = min(self.COND_ESCALATE, 0.5 * float(config.condition_limit))
        escalate = (
            ~finite
            | ~np.isfinite(values).all(axis=1)
            | (trace <= np.float32(self.TRACE_ESCALATE))
            | (condition > np.float32(cond_limit32))
            | (counts_wide != counts_narrow)
            | (split_gap < np.float32(self.GAP_ESCALATE_REL) * np.abs(lam1))
        )

        fast = np.flatnonzero(~escalate)
        if fast.size:
            re_b, im_b = self._transformed_steering(config)
            # |B v|^2 with real v: two real matmuls replace the complex
            # projection; (num_angles, m) @ (n, m, m) -> (n, num_angles, m).
            proj_re = np.matmul(re_b, vectors[fast])
            proj_im = np.matmul(im_b, vectors[fast])
            squared = proj_re * proj_re + proj_im * proj_im
            noise_mask = (
                np.arange(m)[None, :] >= counts[fast][:, None]
            ).astype(np.float32)
            denominator = np.einsum("naj,nj->na", squared, noise_mask)
            denominator = np.maximum(
                denominator.astype(float), np.finfo(float).tiny
            )
            power[fast] = np.sqrt(1.0 / denominator)
            out_counts[fast] = counts[fast]
            eigenvalues[fast] = values[fast].astype(float)

        slow = np.flatnonzero(escalate)
        if slow.size:
            exact = get_backend(DEFAULT_BACKEND).music_batch(windows[slow], config)
            power[slow] = exact.power
            out_counts[slow] = exact.source_counts
            reasons[slow] = exact.reasons
            eigenvalues[slow] = exact.eigenvalues
        return MusicBatchResult(
            power=power,
            source_counts=out_counts,
            reasons=reasons,
            eigenvalues=eigenvalues,
        )
