"""Stacked eigendecomposition and vectorized covariance screening.

``np.linalg.eigh`` batches natively over a (num_windows, w', w') stack
— one gufunc call replaces num_windows Python-level decompositions.
The conditioning guard and the source-count estimate that the legacy
pipeline ran per window are mirrored here as row-wise vectorized
passes; their decisions must match the sequential versions in
:mod:`repro.core.music` *exactly*, which is why those public functions
now delegate to these kernels rather than keeping parallel arithmetic.
"""

from __future__ import annotations

import numpy as np

#: Reason value for windows that pass the conditioning screen.
REASON_OK = ""


def eigh_descending_batch(
    covariance: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecompose a stack of Hermitian matrices, descending order.

    Returns ``(eigenvalues, eigenvectors)`` with shapes (n, m) and
    (n, m, m); ``eigenvalues[k]`` is sorted descending and
    ``eigenvectors[k][:, j]`` is the eigenvector of ``eigenvalues[k][j]``
    — the ordering MUSIC's signal/noise split expects.
    """
    covariance = np.asarray(covariance)
    if covariance.ndim != 3:
        raise ValueError("covariance must be a (n, m, m) stack")
    values, vectors = np.linalg.eigh(covariance)
    # eigh returns ascending order; flip to descending.
    return np.ascontiguousarray(values[:, ::-1]), vectors[:, :, ::-1]


def classify_covariance_batch(
    eigenvalues: np.ndarray, condition_limit: float
) -> np.ndarray:
    """Vectorized degeneracy screen over a stack of eigenvalue rows.

    Mirrors :func:`repro.core.music.check_covariance_conditioning`
    (which delegates here): per row, flag

    * ``"non-finite"`` — NaN/Inf eigenvalues;
    * ``"dead"`` — trace ~ 0, nothing to decompose;
    * ``"ill-conditioned"`` — eigenvalue spread beyond
      ``condition_limit`` (compared multiplicatively, since the ratio
      itself can overflow).

    ``eigenvalues`` must be (n, m) rows sorted descending.  Returns an
    object array of reason strings, :data:`REASON_OK` for healthy rows;
    precedence matches the sequential guard (non-finite, then dead,
    then ill-conditioned).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if eigenvalues.ndim != 2:
        raise ValueError("eigenvalues must be a (n, m) stack of rows")
    tiny = np.finfo(float).tiny
    reasons = np.full(eigenvalues.shape[0], REASON_OK, dtype=object)
    with np.errstate(invalid="ignore"):
        smallest = np.maximum(eigenvalues[:, -1], tiny)
        ill = eigenvalues[:, 0] > condition_limit * smallest
        dead = np.sum(eigenvalues, axis=1) <= tiny
    finite = np.all(np.isfinite(eigenvalues), axis=1)
    reasons[ill] = "ill-conditioned"
    reasons[dead] = "dead"
    reasons[~finite] = "non-finite"
    return reasons


def estimate_source_counts_batch(
    eigenvalues: np.ndarray, max_sources: int = 4, dominance_db: float = 6.0
) -> np.ndarray:
    """Signal-subspace sizes for a stack of eigenvalue rows.

    Vectorized mirror of
    :func:`repro.core.music.estimate_source_count` (which delegates
    here): per row, the noise level is the median of the smaller half
    of the spectrum, and eigenvalues standing ``dominance_db`` above it
    are counted as sources, clamped to ``[1, min(max_sources, m - 1)]``.

    ``eigenvalues`` must be (n, m) rows sorted descending with m >= 2.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if eigenvalues.ndim != 2:
        raise ValueError("eigenvalues must be a (n, m) stack of rows")
    m = eigenvalues.shape[1]
    if m < 2:
        raise ValueError("need at least two eigenvalues")
    if max_sources < 1:
        raise ValueError("max_sources must be positive")
    tiny = np.finfo(float).tiny
    noise_level = np.maximum(np.median(eigenvalues[:, m // 2 :], axis=1), tiny)
    threshold = noise_level * 10.0 ** (dominance_db / 10.0)
    counts = np.sum(eigenvalues > threshold[:, np.newaxis], axis=1)
    return np.clip(counts, 1, min(max_sources, m - 1)).astype(int)
