"""Optional numba-JIT backend, auto-detected at import.

The backend registers unconditionally so ``repro backends`` can report
*why* it is unusable, but :meth:`NumbaBackend.available` returns False
whenever numba cannot be imported — selection then raises a typed
:class:`~repro.errors.DspBackendError` instead of an ImportError from
the middle of the hot path.

When numba is present, the smoothed-covariance contraction — the
batch's largest single cost after the eigendecomposition — runs as a
JIT-compiled ``prange`` loop over windows, parallelizing across cores
where the BLAS-threaded reference path is serialized by small matmul
shapes.  Everything downstream (eigh, guard, counts, pseudospectra)
stays on the float64 reference kernels, and rows whose guard or
source-count decision sits within float64 reassociation distance of a
threshold are re-run through the reference covariance, so guard
decisions match the default backend exactly; the only budget is the
reassociated covariance sum (``den_budget_per_m = 1e-9``).

This is the ">= 3x over the 3850 windows/s baseline" candidate on
multi-core hardware; single-core containers without numba fall back
to ``numpy-float32`` (~2x) as the fastest available backend.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dsp.backend import (
    DEFAULT_BACKEND,
    DspBackend,
    MusicBatchResult,
    get_backend,
    register_backend,
)
from repro.dsp.windows import subarray_view

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except Exception as exc:  # noqa: BLE001 - any import failure disables it
    numba = None
    _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"
else:  # pragma: no cover
    _IMPORT_ERROR = ""


def _covariance_kernel(subarrays, num_subarrays, out):  # pragma: no cover
    """Plain-python covariance loop handed to ``numba.njit``.

    ``subarrays``: (num_windows, num_subarrays, w') complex128;
    ``out``: (num_windows, w', w') complex128.  Forward-backward
    averaging happens outside (a pure permutation, cheap in numpy).
    """
    num_windows = subarrays.shape[0]
    size = subarrays.shape[2]
    for n in numba.prange(num_windows):
        for i in range(size):
            for j in range(size):
                acc = 0.0 + 0.0j
                for s in range(num_subarrays):
                    acc += subarrays[n, s, i] * np.conj(subarrays[n, s, j])
                out[n, i, j] = acc / num_subarrays


@register_backend
class NumbaBackend(DspBackend):
    """JIT-parallel covariance over the float64 reference kernels."""

    name = "numba"
    description = (
        "numba-JIT parallel covariance over float64 reference kernels "
        "(auto-detected; unavailable when numba is not importable)"
    )
    steering_dtype = np.complex128
    bit_exact = False
    #: float64 arithmetic throughout — the only deviation from the
    #: reference is the reassociated covariance accumulation order.
    den_budget_per_m = 1e-9

    #: Guard/count decisions within this relative distance of their
    #: thresholds re-run on the reference covariance.
    BORDER_RTOL = 1e-9

    _jit = None

    @classmethod
    def available(cls) -> tuple[bool, str]:
        if numba is None:
            return False, f"numba is not importable ({_IMPORT_ERROR})"
        return True, ""

    @classmethod
    def _kernel(cls):  # pragma: no cover - needs numba
        if cls._jit is None:
            cls._jit = numba.njit(parallel=True, cache=True)(_covariance_kernel)
        return cls._jit

    def smoothed_covariance_batch(  # pragma: no cover - needs numba
        self, windows: np.ndarray, subarray_size: int, forward_backward: bool = True
    ) -> np.ndarray:
        windows = np.asarray(windows, dtype=complex)
        if windows.ndim != 2:
            raise ValueError("windows must be two-dimensional (a stack of windows)")
        num_subarrays = windows.shape[1] - subarray_size + 1
        subarrays = np.ascontiguousarray(subarray_view(windows, subarray_size))
        covariance = np.empty(
            (windows.shape[0], subarray_size, subarray_size), dtype=complex
        )
        self._kernel()(subarrays, num_subarrays, covariance)
        if forward_backward:
            covariance = 0.5 * (covariance + covariance[:, ::-1, ::-1].conj())
        return covariance

    def music_batch(  # pragma: no cover - needs numba
        self, windows: np.ndarray, config: Any
    ) -> MusicBatchResult:
        result = super().music_batch(windows, config)
        values = result.eigenvalues
        num_windows = values.shape[0]
        if num_windows == 0:
            return result
        # Decisions that sit within reassociation distance of a guard
        # or dominance threshold re-run on the reference covariance so
        # they match the default backend bit for bit.
        tiny = np.finfo(float).tiny
        lam1 = values[:, 0]
        lam_min = np.maximum(values[:, -1], tiny)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            condition = lam1 / lam_min
        noise = np.maximum(np.median(values[:, values.shape[1] // 2 :], axis=1), tiny)
        threshold = noise * 10.0 ** (6.0 / 10.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            near_count = np.any(
                np.abs(values / threshold[:, None] - 1.0) < self.BORDER_RTOL, axis=1
            )
        borderline = (
            ~np.isfinite(values).all(axis=1)
            | (values.sum(axis=1) <= 4.0 * tiny)
            | (np.abs(condition / config.condition_limit - 1.0) < self.BORDER_RTOL)
            | near_count
        )
        slow = np.flatnonzero(borderline)
        if slow.size:
            exact = get_backend(DEFAULT_BACKEND).music_batch(
                np.asarray(windows, dtype=complex)[slow], config
            )
            result.power[slow] = exact.power
            result.source_counts[slow] = exact.source_counts
            result.reasons[slow] = exact.reasons
            result.eigenvalues[slow] = exact.eigenvalues
        return result
