"""Batched spectrum projections: MUSIC pseudospectra and Eq. 5.1 rows.

Two projections close the pipeline: the MUSIC pseudospectrum (Eq. 5.3)
over the per-window noise subspace, and the plain beamformed magnitude
(Eq. 5.1) used by the gesture decoder and by the degeneracy fallback.
Both are expressed over whole window stacks here, with each window's
result computed by its own inner gufunc slice so it does not depend on
batch size (the batch-stability contract of
:mod:`repro.dsp.covariance`).
"""

from __future__ import annotations

import numpy as np


def music_pseudospectra_batch(
    steering: np.ndarray, eigenvectors: np.ndarray, source_counts: np.ndarray
) -> np.ndarray:
    """Eq. 5.3 for a stack of windows with per-window subspace sizes.

    Args:
        steering: (num_angles, m) steering table (typically the shared
            read-only array from :mod:`repro.dsp.steering`).
        eigenvectors: (n, m, m) stack, columns sorted by descending
            eigenvalue (:func:`repro.dsp.eig.eigh_descending_batch`).
        source_counts: (n,) signal-subspace sizes, each in (0, m).

    Per window: ``1 / sqrt(sum_j ||a(theta)^H u_j||^2)`` over the noise
    eigenvectors ``j >= source_counts[n]``.  The varying split is
    handled with a zero/one mask over eigenvector columns — adding
    exact zeros is lossless, so the masked contraction matches slicing
    the noise subspace per window.

    Returns (n, num_angles) float magnitudes.
    """
    steering = np.asarray(steering)
    eigenvectors = np.asarray(eigenvectors)
    source_counts = np.asarray(source_counts, dtype=int)
    if eigenvectors.ndim != 3:
        raise ValueError("eigenvectors must be a (n, m, m) stack")
    m = eigenvectors.shape[-1]
    if steering.ndim != 2 or steering.shape[1] != m:
        raise ValueError("steering must be (num_angles, m)")
    if np.any((source_counts < 1) | (source_counts >= m)):
        raise ValueError("source count must be in (0, subarray size)")
    projections = np.matmul(steering, eigenvectors.conj())
    magnitudes = np.abs(projections) ** 2
    noise_mask = (np.arange(m) >= source_counts[:, np.newaxis]).astype(float)
    denominator = np.einsum("naj,nj->na", magnitudes, noise_mask)
    denominator = np.maximum(denominator, np.finfo(float).tiny)
    return np.sqrt(1.0 / denominator)


def beamform_batch(windows: np.ndarray, steering: np.ndarray) -> np.ndarray:
    """|a(theta)^H h| (Eq. 5.1) for a stack of windows.

    Args:
        windows: (n, w) stack of emulated-array windows.
        steering: (num_angles, w) steering table.

    Each window is its own (num_angles, w) x (w, 1) product inside the
    stacked matmul, so per-window results are independent of batch
    size.  Returns (n, num_angles) float magnitudes.
    """
    windows = np.ascontiguousarray(windows, dtype=complex)
    if windows.ndim != 2:
        raise ValueError("windows must be two-dimensional (a stack of windows)")
    steering = np.asarray(steering)
    if steering.ndim != 2 or steering.shape[1] != windows.shape[1]:
        raise ValueError("steering must be (num_angles, window size)")
    products = np.matmul(steering.conj(), windows[:, :, np.newaxis])
    return np.abs(products[:, :, 0])
