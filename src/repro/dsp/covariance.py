"""Batched spatially-smoothed covariance (Eq. 5.2 + smoothing).

The legacy hot path accumulated one ``np.outer`` per subarray per
window — ~69 small Python-level outer products for every w = 100
window.  Here the (num_windows, num_subarrays, w') subarray view is
contracted in one stacked matmul: for each window n,

    R[n] = (1 / num_subarrays) * sum_s sub[n, s] (x) sub[n, s]^H

optionally forward-backward averaged with the exchange-reversed
conjugate, the standard decorrelation refinement.

Batch-stability contract: every operation applies per window through a
gufunc or elementwise loop over a contiguous stack, so a batch of one
produces exactly the bits the same window produces inside a larger
batch.  The streaming tracker's golden equivalence with the offline
pipeline rests on this property holding for every kernel in the
package.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.windows import subarray_view


def smoothed_covariance_batch(
    windows: np.ndarray, subarray_size: int, forward_backward: bool = True
) -> np.ndarray:
    """Smoothed covariance matrices for a whole stack of windows.

    Args:
        windows: (num_windows, w) stack of emulated-array windows.
        subarray_size: w' < w; each window is partitioned "into
            overlapping sub-arrays of size w' < w" whose correlation
            matrices are summed (§5.2).
        forward_backward: additionally average with the
            complex-conjugate reversed subarrays.

    Returns:
        (num_windows, w', w') complex Hermitian stack.
    """
    windows = np.asarray(windows, dtype=complex)
    if windows.ndim != 2:
        raise ValueError("windows must be two-dimensional (a stack of windows)")
    w = windows.shape[1]
    num_subarrays = w - subarray_size + 1
    # Contiguous copy normalizes the memory layout so the per-window
    # matmul takes the same code path whether the stack came from a
    # strided series view (offline) or a single buffered window
    # (streaming) — part of the batch-stability contract.
    subarrays = np.ascontiguousarray(subarray_view(windows, subarray_size))
    covariance = np.matmul(subarrays.transpose(0, 2, 1), subarrays.conj())
    covariance /= num_subarrays
    if forward_backward:
        # J R* J with exchange matrix J is exactly a reversal of both
        # axes; the permutation is lossless so this matches the legacy
        # explicit-J product bit for bit.
        covariance = 0.5 * (covariance + covariance[:, ::-1, ::-1].conj())
    return covariance
