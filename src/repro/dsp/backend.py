"""Pluggable DSP backends behind one kernel-stack protocol.

The batched kernels (:mod:`repro.dsp.covariance` / ``eig`` /
``spectrum`` / ``steering``) were hard-wired to float64 NumPy; this
module re-layers them behind a :class:`DspBackend` protocol so the
same orchestration code (``core/tracking``, the serve scheduler, the
streaming tracker) can run on alternative implementations:

* :class:`NumpyFloat64Backend` — the reference backend, delegating to
  the existing kernels verbatim.  **Bit-identical to the pre-backend
  code paths** and the default: every golden test (streaming vs
  offline, capture replay, serve equivalence) runs on it unchanged.
* ``numpy-float32`` (:mod:`repro.dsp.backend_f32`) — a fast path that
  computes MUSIC through a real-symmetric float32 eigendecomposition
  with an explicit per-column error budget, escalating any window the
  budget cannot certify back to the float64 kernels so degeneracy /
  fallback guard decisions match the reference *exactly*.
* ``numba`` (:mod:`repro.dsp.backend_numba`) — an optional JIT
  backend, auto-detected: it registers always but reports itself
  unavailable when numba cannot be imported.

Selection is **per process**: the ``REPRO_DSP_BACKEND`` environment
variable (read once, lazily) or ``repro --dsp-backend`` picks the
active backend; :func:`set_active_backend` switches it explicitly and
:func:`use_backend` scopes a switch (tests, benches).  Every consumer
asks :func:`active_backend` at call time, so one process never mixes
backends within a batch — which is what keeps the batch-stability
contract (batch-of-one == batched row, per backend) meaningful.

Telemetry: each selection emits a ``dsp.backend`` event carrying the
backend name and sets the ``dsp.backend`` gauge to the backend's
registration ordinal (gauges are numeric; the name rides the event
and the Prometheus ``repro_dsp_backend_info{backend="..."}`` sample
the observe gateway exports).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.dsp.covariance import smoothed_covariance_batch
from repro.dsp.eig import (
    REASON_OK,
    classify_covariance_batch,
    eigh_descending_batch,
    estimate_source_counts_batch,
)
from repro.dsp.spectrum import beamform_batch, music_pseudospectra_batch
from repro.dsp.steering import steering_matrix
from repro.errors import DspBackendError
from repro.telemetry.context import get_telemetry

#: Environment variable naming the per-process backend.
ENV_VAR = "REPRO_DSP_BACKEND"

#: The reference backend every golden test runs on.
DEFAULT_BACKEND = "numpy-float64"


@dataclass
class MusicBatchResult:
    """One backend pass over a stack of finite windows.

    Attributes:
        power: (num_windows, num_angles) float64 pseudospectra; rows
            whose ``reasons`` entry is not :data:`REASON_OK` are
            undefined (the caller patches them with the beamforming
            fallback).
        source_counts: (num_windows,) signal-subspace sizes; 0 for
            rejected rows.
        reasons: (num_windows,) object array of guard decisions —
            :data:`REASON_OK`, ``"dead"``, ``"ill-conditioned"``, or
            ``"non-finite"`` — matching the reference guard exactly
            for every conforming backend.
        eigenvalues: (num_windows, w') descending eigenvalue spectra,
            the telemetry evidence (``music.eigenvalues`` events).
    """

    power: np.ndarray
    source_counts: np.ndarray
    reasons: np.ndarray
    eigenvalues: np.ndarray


class DspBackend:
    """Protocol + reference implementation of the batched kernel stack.

    Subclasses override individual kernels or the fused
    :meth:`music_batch` pass; anything not overridden delegates to the
    float64 reference kernels, so a backend only has to implement the
    parts it accelerates.  Contracts every backend must keep (enforced
    by ``tests/dsp/test_backend_conformance.py``):

    * **Guard parity** — :meth:`music_batch` reasons equal the
      reference guard decisions exactly, on any input.
    * **Batch stability** — a batch of one is bit-identical to the
      same window inside a larger batch, per backend.
    * **Accuracy** — ``bit_exact`` backends match the reference to the
      bit; budgeted backends keep the noise-projection residual within
      ``den_budget_per_m * w'`` per angle and the dominant angle
      within one grid bin (spectrogram columns are displayed, not
      differentiated).
    """

    #: Registry key; also the ``REPRO_DSP_BACKEND`` value.
    name: str = "abstract"
    description: str = ""
    #: dtype of steering tables this backend projects against (keys
    #: the per-(backend, dtype) steering-cache entries).
    steering_dtype: Any = np.complex128
    #: Whether results must equal the reference bit for bit.
    bit_exact: bool = False
    #: Budgeted backends: |den - den_ref| <= den_budget_per_m * w'
    #: per angle on accepted rows (den is the Eq. 5.3 denominator,
    #: bounded by w'); None means bit-exactness is the budget.
    den_budget_per_m: float | None = None

    @classmethod
    def available(cls) -> tuple[bool, str]:
        """``(importable, reason-if-not)`` — checked at selection."""
        return True, ""

    # -- kernel protocol (reference float64 delegates) -----------------

    def smoothed_covariance_batch(
        self, windows: np.ndarray, subarray_size: int, forward_backward: bool = True
    ) -> np.ndarray:
        return smoothed_covariance_batch(windows, subarray_size, forward_backward)

    def eigh_descending_batch(
        self, covariance: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return eigh_descending_batch(covariance)

    def classify_covariance_batch(
        self, eigenvalues: np.ndarray, condition_limit: float
    ) -> np.ndarray:
        return classify_covariance_batch(eigenvalues, condition_limit)

    def estimate_source_counts_batch(
        self,
        eigenvalues: np.ndarray,
        max_sources: int = 4,
        dominance_db: float = 6.0,
    ) -> np.ndarray:
        return estimate_source_counts_batch(eigenvalues, max_sources, dominance_db)

    def music_pseudospectra_batch(
        self,
        steering: np.ndarray,
        eigenvectors: np.ndarray,
        source_counts: np.ndarray,
    ) -> np.ndarray:
        return music_pseudospectra_batch(steering, eigenvectors, source_counts)

    def beamform_batch(self, windows: np.ndarray, steering: np.ndarray) -> np.ndarray:
        return beamform_batch(windows, steering)

    def steering_for(self, config: Any, array_size: int | None = None) -> np.ndarray:
        """The memoized steering table in this backend's dtype."""
        return steering_matrix(
            config.theta_grid_deg,
            config.subarray_size if array_size is None else array_size,
            config.spacing_m,
            config.wavelength_m,
            dtype=self.steering_dtype,
        )

    # -- fused passes ---------------------------------------------------

    def music_batch(self, windows: np.ndarray, config: Any) -> MusicBatchResult:
        """Smoothed MUSIC over a stack of finite windows.

        ``config`` is any object with the :class:`TrackingConfig`
        attributes (``subarray_size``, ``condition_limit``,
        ``max_sources``, ``theta_grid_deg``, ``spacing_m``,
        ``wavelength_m``).  The reference implementation is the exact
        kernel sequence the pre-backend ``estimate_windows_batch``
        ran, so the default backend stays bit-identical to it.
        """
        windows = np.asarray(windows, dtype=complex)
        num_windows = windows.shape[0]
        covariance = self.smoothed_covariance_batch(windows, config.subarray_size)
        values, vectors = self.eigh_descending_batch(covariance)
        reasons = self.classify_covariance_batch(values, config.condition_limit)
        counts = np.zeros(num_windows, dtype=int)
        power = np.zeros((num_windows, len(config.theta_grid_deg)))
        passed = reasons == REASON_OK
        if np.any(passed):
            source_counts = self.estimate_source_counts_batch(
                values[passed], config.max_sources
            )
            steering = self.steering_for(config)
            power[passed] = self.music_pseudospectra_batch(
                steering, vectors[passed], source_counts
            )
            counts[passed] = source_counts
        return MusicBatchResult(
            power=power,
            source_counts=counts,
            reasons=reasons,
            eigenvalues=values,
        )

    def beamform_fallback_batch(
        self, windows: np.ndarray, config: Any
    ) -> np.ndarray:
        """Plain Eq. 5.1 rows for windows MUSIC rejected.

        Non-finite samples are zeroed (beamforming degrades gracefully
        with missing elements), the per-window mean is removed, and
        the full-window steering table comes from the shared cache in
        this backend's dtype.
        """
        windows = np.asarray(windows, dtype=complex)
        patched = np.where(np.isfinite(windows), windows, 0.0)
        patched = patched - patched.mean(axis=1, keepdims=True)
        steering = self.steering_for(config, array_size=windows.shape[1])
        return np.asarray(
            self.beamform_batch(patched, steering), dtype=float
        )


class NumpyFloat64Backend(DspBackend):
    """The reference backend: the existing float64 kernels, verbatim."""

    name = DEFAULT_BACKEND
    description = "reference float64 NumPy kernels (bit-exact, default)"
    steering_dtype = np.complex128
    bit_exact = True


# ----------------------------------------------------------------------
# Registry and per-process selection
# ----------------------------------------------------------------------

_REGISTRY: dict[str, type[DspBackend]] = {}
_INSTANCES: dict[str, DspBackend] = {}
_ACTIVE: DspBackend | None = None


def register_backend(cls: type[DspBackend]) -> type[DspBackend]:
    """Class decorator adding a backend to the process registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("backend classes must set a concrete name")
    _REGISTRY[cls.name] = cls
    return cls


register_backend(NumpyFloat64Backend)


def backend_names() -> list[str]:
    """Registered names, registration order (the gauge ordinals)."""
    return list(_REGISTRY)


def get_backend(name: str) -> DspBackend:
    """The singleton instance for ``name``; raises when unusable."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise DspBackendError(
            f"unknown DSP backend {name!r}; registered: {', '.join(_REGISTRY)}"
        )
    ok, reason = cls.available()
    if not ok:
        raise DspBackendError(f"DSP backend {name!r} is unavailable: {reason}")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = cls()
    return instance


def set_active_backend(name: str | None = None) -> DspBackend:
    """Select the process-wide backend (``None`` -> env var -> default)."""
    global _ACTIVE
    if name is None or name == "":
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    backend = get_backend(name)
    _ACTIVE = backend
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.metrics.gauge("dsp.backend").set(
            float(backend_names().index(backend.name))
        )
        telemetry.events.emit(
            "dsp.backend",
            backend=backend.name,
            dtype=np.dtype(backend.steering_dtype).name,
            bit_exact=backend.bit_exact,
        )
    return backend


def active_backend() -> DspBackend:
    """The selected backend, resolving ``REPRO_DSP_BACKEND`` lazily."""
    if _ACTIVE is None:
        return set_active_backend(None)
    return _ACTIVE


def active_backend_name() -> str:
    """Shorthand for stamping snapshots, headers, and metrics."""
    return active_backend().name


@contextmanager
def use_backend(name: str) -> Iterator[DspBackend]:
    """Scope a backend switch (tests and benches); restores on exit."""
    global _ACTIVE
    previous = _ACTIVE
    backend = set_active_backend(name)
    try:
        yield backend
    finally:
        _ACTIVE = previous


@dataclass(frozen=True)
class BackendInfo:
    """One row of ``repro backends``."""

    name: str
    available: bool
    reason: str
    active: bool
    default: bool
    dtype: str
    bit_exact: bool


def backend_infos() -> list[BackendInfo]:
    """Availability snapshot of every registered backend."""
    active_name = active_backend().name
    infos = []
    for name, cls in _REGISTRY.items():
        ok, reason = cls.available()
        infos.append(
            BackendInfo(
                name=name,
                available=ok,
                reason=reason,
                active=name == active_name,
                default=name == DEFAULT_BACKEND,
                dtype=np.dtype(cls.steering_dtype).name,
                bit_exact=cls.bit_exact,
            )
        )
    return infos


def quick_conformance(name: str, num_windows: int = 32) -> str:
    """A fast oracle check for one backend (the CLI's status column).

    Runs a small deterministic batch — clean Gaussian windows plus a
    NaN-free saturated and a near-dead window — through the backend's
    fused :meth:`DspBackend.music_batch` and the reference backend,
    and reports ``"exact"`` / ``"pass(max_den_err=...)"`` / a
    ``"FAIL(...)"`` diagnosis.  ``"unavailable"`` when the backend
    cannot load.
    """
    from repro.core.tracking import TrackingConfig

    try:
        backend = get_backend(name)
    except DspBackendError:
        return "unavailable"
    reference = get_backend(DEFAULT_BACKEND)
    config = TrackingConfig()
    rng = np.random.default_rng(20260807)
    shape = (num_windows, config.window_size)
    windows = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    windows[-2] = 1e6 * (1.0 + 1.0j)  # saturated/constant: guard territory
    windows[-1] *= 1e-18  # near-dead
    result = backend.music_batch(windows, config)
    expected = reference.music_batch(windows, config)
    if not np.array_equal(result.reasons, expected.reasons):
        return "FAIL(guard decisions diverge from reference)"
    if not np.array_equal(result.source_counts, expected.source_counts):
        return "FAIL(source counts diverge from reference)"
    ok = expected.reasons == REASON_OK
    if backend.bit_exact:
        if np.array_equal(result.power[ok], expected.power[ok]):
            return "exact"
        return "FAIL(power not bit-exact)"
    with np.errstate(divide="ignore"):
        den = 1.0 / np.square(result.power[ok])
        den_ref = 1.0 / np.square(expected.power[ok])
    max_err = float(np.max(np.abs(den - den_ref))) if np.any(ok) else 0.0
    budget = (backend.den_budget_per_m or 0.0) * config.subarray_size
    if max_err > budget:
        return f"FAIL(max_den_err={max_err:.3g} over budget {budget:.3g})"
    return f"pass(max_den_err={max_err:.3g})"
