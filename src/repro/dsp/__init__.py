"""repro.dsp — batched kernels under the MUSIC/beamforming hot path.

The tracking pipeline's cost is one smoothed-MUSIC estimate per
emulated-array window; this package turns that per-window loop into
whole-stack kernels: strided window extraction
(:mod:`~repro.dsp.windows`), batched forward-backward smoothed
covariance (:mod:`~repro.dsp.covariance`), stacked eigendecomposition
with vectorized conditioning screens (:mod:`~repro.dsp.eig`),
process-wide memoized steering tables (:mod:`~repro.dsp.steering`),
and batched pseudospectrum/beamforming projections
(:mod:`~repro.dsp.spectrum`).

Two contracts hold across the package:

* **Batch stability** — each window's result is computed by its own
  inner gufunc slice over a normalized (contiguous) layout, so a batch
  of one is bit-identical to the same window inside a larger batch.
  This is what keeps the streaming tracker (one window at a time)
  bit-for-bit equal to the offline pipeline (all windows at once).
* **Oracle parity** — :mod:`repro.dsp.reference` freezes the original
  per-window implementations; the property suite holds the kernels to
  <= 1e-12 against them, including NaN-burst, saturated, and
  rank-degenerate windows whose guard decisions must match exactly.

The orchestration layers (:mod:`repro.core.music`,
:mod:`repro.core.beamforming`, :mod:`repro.core.tracking`) are thin
wrappers over these kernels, which is also the seam a future
GPU/numba backend would slot into.
"""

from repro.dsp.covariance import smoothed_covariance_batch
from repro.dsp.eig import (
    REASON_OK,
    classify_covariance_batch,
    eigh_descending_batch,
    estimate_source_counts_batch,
)
from repro.dsp.spectrum import beamform_batch, music_pseudospectra_batch
from repro.dsp.steering import (
    SteeringCacheInfo,
    cache_info,
    clear_cache,
    compute_steering_matrix,
    steering_matrix,
)
from repro.dsp.windows import sliding_windows, subarray_view, window_starts

__all__ = [
    "REASON_OK",
    "SteeringCacheInfo",
    "beamform_batch",
    "cache_info",
    "classify_covariance_batch",
    "clear_cache",
    "compute_steering_matrix",
    "eigh_descending_batch",
    "estimate_source_counts_batch",
    "music_pseudospectra_batch",
    "sliding_windows",
    "smoothed_covariance_batch",
    "steering_matrix",
    "subarray_view",
    "window_starts",
]
