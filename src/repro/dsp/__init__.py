"""repro.dsp — batched kernels under the MUSIC/beamforming hot path.

The tracking pipeline's cost is one smoothed-MUSIC estimate per
emulated-array window; this package turns that per-window loop into
whole-stack kernels: strided window extraction
(:mod:`~repro.dsp.windows`), batched forward-backward smoothed
covariance (:mod:`~repro.dsp.covariance`), stacked eigendecomposition
with vectorized conditioning screens (:mod:`~repro.dsp.eig`),
process-wide memoized steering tables (:mod:`~repro.dsp.steering`),
and batched pseudospectrum/beamforming projections
(:mod:`~repro.dsp.spectrum`).

The kernel stack is dispatched through a pluggable backend protocol
(:mod:`~repro.dsp.backend`): the reference
:class:`~repro.dsp.backend.NumpyFloat64Backend` delegates to the
modules above verbatim and stays the default; ``numpy-float32``
(:mod:`~repro.dsp.backend_f32`) is a budgeted fast path, and
``numba`` (:mod:`~repro.dsp.backend_numba`) an auto-detected JIT
backend.  Selection is per-process (``REPRO_DSP_BACKEND`` /
``repro --dsp-backend``).

Three contracts hold across the package, per backend:

* **Batch stability** — each window's result is computed by its own
  inner gufunc slice over a normalized (contiguous) layout, so a batch
  of one is bit-identical to the same window inside a larger batch.
  This is what keeps the streaming tracker (one window at a time)
  bit-for-bit equal to the offline pipeline (all windows at once).
* **Oracle parity** — :mod:`repro.dsp.reference` freezes the original
  per-window implementations; the property suite holds the float64
  kernels to <= 1e-12 against them, including NaN-burst, saturated,
  and rank-degenerate windows whose guard decisions must match
  exactly.
* **Backend conformance** — every registered backend matches the
  reference guard decisions exactly and keeps accepted columns inside
  its declared error budget (bit-exactness for float64); see
  ``tests/dsp/test_backend_conformance.py``.
"""

from repro.dsp import backend_f32, backend_numba  # noqa: F401 - register backends
from repro.dsp.backend import (
    DEFAULT_BACKEND,
    BackendInfo,
    DspBackend,
    MusicBatchResult,
    active_backend,
    active_backend_name,
    backend_infos,
    backend_names,
    get_backend,
    register_backend,
    set_active_backend,
    use_backend,
)
from repro.dsp.covariance import smoothed_covariance_batch
from repro.dsp.eig import (
    REASON_OK,
    classify_covariance_batch,
    eigh_descending_batch,
    estimate_source_counts_batch,
)
from repro.dsp.spectrum import beamform_batch, music_pseudospectra_batch
from repro.dsp.steering import (
    SteeringCacheInfo,
    cache_info,
    clear_cache,
    compute_steering_matrix,
    steering_matrix,
)
from repro.dsp.windows import sliding_windows, subarray_view, window_starts

__all__ = [
    "DEFAULT_BACKEND",
    "REASON_OK",
    "BackendInfo",
    "DspBackend",
    "MusicBatchResult",
    "SteeringCacheInfo",
    "active_backend",
    "active_backend_name",
    "backend_infos",
    "backend_names",
    "beamform_batch",
    "cache_info",
    "classify_covariance_batch",
    "clear_cache",
    "compute_steering_matrix",
    "eigh_descending_batch",
    "estimate_source_counts_batch",
    "get_backend",
    "music_pseudospectra_batch",
    "register_backend",
    "set_active_backend",
    "sliding_windows",
    "smoothed_covariance_batch",
    "steering_matrix",
    "subarray_view",
    "use_backend",
    "window_starts",
]
