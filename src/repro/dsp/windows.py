"""Sliding-window extraction without copies.

The tracking pipeline walks a channel series in overlapping
emulated-array windows (w = 100 samples, hop 25, §7.1), and spatial
smoothing walks each window in overlapping subarrays of size w' < w
(§5.2).  Materializing those with fancy indexing costs one copy per
window; a strided view exposes the whole stack at once so the batched
covariance and beamforming kernels can consume every window in one
shot.

Views returned here are read-only (they alias the caller's data);
kernels that need contiguous input copy explicitly.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def window_starts(num_samples: int, window_size: int, hop: int) -> np.ndarray:
    """Start index of every complete window, hop-spaced.

    Matches the offline pipeline's walk: the last window is the last
    one that fits entirely inside the series.
    """
    if window_size < 1:
        raise ValueError("window size must be positive")
    if hop < 1:
        raise ValueError("hop must be positive")
    if num_samples < window_size:
        raise ValueError("series shorter than one window")
    return np.arange(0, num_samples - window_size + 1, hop)


def sliding_windows(
    series: np.ndarray, window_size: int, hop: int
) -> tuple[np.ndarray, np.ndarray]:
    """All complete windows of a series as one strided view.

    Returns ``(starts, windows)`` where ``windows`` has shape
    (num_windows, window_size) and ``windows[k]`` aliases
    ``series[starts[k] : starts[k] + window_size]`` — no data is
    copied.  The view is read-only.
    """
    series = np.asarray(series)
    if series.ndim != 1:
        raise ValueError("series must be one-dimensional")
    starts = window_starts(len(series), window_size, hop)
    windows = sliding_window_view(series, window_size)[::hop]
    return starts, windows


def subarray_view(windows: np.ndarray, subarray_size: int) -> np.ndarray:
    """Overlapping smoothing subarrays of a stack of windows.

    For ``windows`` of shape (num_windows, w) returns a read-only view
    of shape (num_windows, num_subarrays, subarray_size) with
    ``num_subarrays = w - subarray_size + 1`` — the §5.2 partition of
    each emulated array, for every window at once.
    """
    windows = np.asarray(windows)
    if windows.ndim != 2:
        raise ValueError("windows must be two-dimensional (a stack of windows)")
    w = windows.shape[1]
    if not 1 < subarray_size <= w:
        raise ValueError("subarray size must be in (1, window size]")
    return sliding_window_view(windows, subarray_size, axis=1)
