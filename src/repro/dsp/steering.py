"""Process-wide memoized steering-matrix tables.

Every MUSIC projection and every Eq. 5.1 beamforming row needs the full
(num_angles, array_size) steering table.  Rebuilding it per window —
181 angles x up to w = 100 complex exponentials — used to dominate
fallback-heavy runs and was repeated per subcarrier stream by the
diversity combiner.  The table depends only on
(theta grid, array size, spacing, wavelength), so a small process-wide
cache serves every consumer — offline pipeline, streaming tracker,
diversity combining, and the benches — with the same read-only array.

Invalidation: there is none to do — a table is a pure function of its
key, so entries never go stale; the cache is bounded by LRU eviction
(:data:`MAX_CACHE_ENTRIES`) and :func:`clear_cache` exists for tests
that count hits and misses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.constants import WAVELENGTH_M

#: Entries kept before least-recently-used tables are evicted.  A
#: process realistically touches a handful of (grid, window-size)
#: shapes; the bound only guards against pathological churn.
MAX_CACHE_ENTRIES = 64

_lock = threading.Lock()
_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
_hits = 0
_misses = 0


def compute_steering_matrix(
    theta_grid_deg: np.ndarray,
    array_size: int,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
    dtype: np.dtype | type = np.complex128,
) -> np.ndarray:
    """Uncached steering table a(theta) over a grid of angles.

    ``a_i(theta) = exp(-j * 2*pi/lambda * i * delta * sin(theta))`` —
    the phase history a scatterer at angle theta induces under the
    ``exp(+j k d)`` channel convention (see
    :func:`repro.core.beamforming.steering_vector`, which delegates
    here so both spellings share one formula).  Shape
    (num_angles, array_size); always freshly allocated and writable.

    ``dtype`` narrows the table for reduced-precision backends; the
    phases are always evaluated in float64 first, so the complex64
    table is the correctly-rounded cast of the reference table.
    """
    if array_size < 1:
        raise ValueError("array size must be positive")
    thetas = np.atleast_1d(np.asarray(theta_grid_deg, dtype=float))
    indices = np.arange(array_size)
    phase = (
        2.0
        * np.pi
        / wavelength_m
        * np.outer(np.sin(np.radians(thetas)), indices)
        * spacing_m
    )
    table = np.exp(-1j * phase)
    if np.dtype(dtype) != table.dtype:
        table = table.astype(dtype)
    return table


def steering_matrix(
    theta_grid_deg: np.ndarray,
    array_size: int,
    spacing_m: float,
    wavelength_m: float = WAVELENGTH_M,
    dtype: np.dtype | type = np.complex128,
) -> np.ndarray:
    """Memoized steering table, shared process-wide.

    Returns the same **read-only** array for every call with the same
    (theta grid, array size, spacing, wavelength, dtype); copy before
    mutating.  This is the hot-path entry point — the offline pipeline,
    the streaming tracker, the degeneracy fallback, and the diversity
    combiner all key into the same table.

    The dtype is part of the cache key: a reduced-precision backend
    (``repro.dsp.backend_f32``) caches its complex64 tables alongside
    — never instead of — the float64 reference tables, so a float32
    session can't poison the default backend's cache.
    """
    global _hits, _misses
    thetas = np.ascontiguousarray(np.atleast_1d(theta_grid_deg), dtype=float)
    key = (
        int(array_size),
        float(spacing_m),
        float(wavelength_m),
        np.dtype(dtype).str,
        thetas.tobytes(),
    )
    with _lock:
        table = _cache.get(key)
        if table is not None:
            _hits += 1
            _cache.move_to_end(key)
            return table
    table = compute_steering_matrix(thetas, array_size, spacing_m, wavelength_m, dtype)
    table.setflags(write=False)
    with _lock:
        _misses += 1
        _cache[key] = table
        _cache.move_to_end(key)
        while len(_cache) > MAX_CACHE_ENTRIES:
            _cache.popitem(last=False)
    return table


@dataclass(frozen=True)
class SteeringCacheInfo:
    """Snapshot of the steering cache counters."""

    hits: int
    misses: int
    entries: int


def cache_info() -> SteeringCacheInfo:
    """Current hit/miss/entry counts of the process-wide cache."""
    with _lock:
        return SteeringCacheInfo(hits=_hits, misses=_misses, entries=len(_cache))


def clear_cache() -> None:
    """Drop every memoized table and reset the counters (for tests)."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
