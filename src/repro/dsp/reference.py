"""The pre-kernel per-window implementations, frozen as test oracles.

The batched kernel layer replaced a per-window hot path: an
``np.outer`` accumulation per subarray, one ``np.linalg.eigh`` per
window, a steering table rebuilt on every call.  These functions
preserve that original arithmetic — loop order, guard precedence,
fallback patching — so the property suite (``tests/dsp/``) can assert
the kernels match it to <= 1e-12 and the processing-time bench can
measure the speedup against it.

Reference code only: production paths must import the batched kernels.
Everything here is deliberately self-contained (no imports from
``repro.core``) so the oracle cannot drift when the orchestration
layers change.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.steering import compute_steering_matrix
from repro.errors import DegenerateCovarianceError

#: Estimator labels, mirroring repro.core.tracking.
_MUSIC = "music"
_BEAMFORMING = "beamforming"


def smoothed_correlation_matrix_reference(
    window: np.ndarray, subarray_size: int, forward_backward: bool = True
) -> np.ndarray:
    """The original per-subarray ``np.outer`` accumulation (Eq. 5.2)."""
    window = np.asarray(window, dtype=complex)
    if window.ndim != 1:
        raise ValueError("window must be one-dimensional")
    w = len(window)
    if not 1 < subarray_size <= w:
        raise ValueError("subarray size must be in (1, window size]")
    num_subarrays = w - subarray_size + 1
    correlation = np.zeros((subarray_size, subarray_size), dtype=complex)
    for start in range(num_subarrays):
        sub = window[start : start + subarray_size]
        correlation += np.outer(sub, sub.conj())
    correlation /= num_subarrays
    if forward_backward:
        exchange = np.eye(subarray_size)[::-1]
        correlation = 0.5 * (correlation + exchange @ correlation.conj() @ exchange)
    return correlation


def check_conditioning_reference(
    eigenvalues: np.ndarray, condition_limit: float
) -> None:
    """The original sequential degeneracy guard (descending input)."""
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if not np.all(np.isfinite(eigenvalues)):
        raise DegenerateCovarianceError(
            "covariance has non-finite eigenvalues", reason="non-finite"
        )
    tiny = np.finfo(float).tiny
    total = float(np.sum(eigenvalues))
    if total <= tiny:
        raise DegenerateCovarianceError(
            "covariance is numerically zero (dead window)", reason="dead"
        )
    smallest = max(float(eigenvalues[-1]), tiny)
    if float(eigenvalues[0]) > condition_limit * smallest:
        with np.errstate(over="ignore"):
            condition = float(eigenvalues[0]) / smallest
        raise DegenerateCovarianceError(
            f"covariance condition number {condition:.3g} exceeds "
            f"limit {condition_limit:.3g}",
            reason="ill-conditioned",
        )


def estimate_source_count_reference(
    eigenvalues: np.ndarray, max_sources: int = 4, dominance_db: float = 6.0
) -> int:
    """The original scalar source-count estimate (descending input)."""
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    noise_level = float(np.median(eigenvalues[len(eigenvalues) // 2 :]))
    noise_level = max(noise_level, np.finfo(float).tiny)
    threshold = noise_level * 10.0 ** (dominance_db / 10.0)
    count = int(np.sum(eigenvalues > threshold))
    return min(max(count, 1), max_sources, len(eigenvalues) - 1)


def music_frame_reference(window: np.ndarray, config) -> tuple[np.ndarray, int, str]:
    """One window of the old per-window spectrogram loop.

    Smoothed MUSIC under the degeneracy guard, with the plain Eq. 5.1
    beamforming fallback for rejected windows; ``config`` is a
    :class:`repro.core.tracking.TrackingConfig`.  Returns
    ``(power, num_sources, estimator)``.
    """
    window = np.asarray(window, dtype=complex)
    theta_grid = config.theta_grid_deg
    try:
        if not np.all(np.isfinite(window)):
            raise DegenerateCovarianceError(
                "window contains non-finite samples", reason="non-finite"
            )
        correlation = smoothed_correlation_matrix_reference(
            window, config.subarray_size
        )
        eigenvalues, eigenvectors = np.linalg.eigh(correlation)
        eigenvalues = eigenvalues[::-1].real.copy()
        eigenvectors = eigenvectors[:, ::-1]
        check_conditioning_reference(eigenvalues, config.condition_limit)
        num_sources = estimate_source_count_reference(
            eigenvalues, config.max_sources
        )
        noise_subspace = eigenvectors[:, num_sources:]
        steering = compute_steering_matrix(
            theta_grid, config.subarray_size, config.spacing_m, config.wavelength_m
        )
        projections = steering @ noise_subspace.conj()
        denominator = np.sum(np.abs(projections) ** 2, axis=1)
        denominator = np.maximum(denominator, np.finfo(float).tiny)
        return np.sqrt(1.0 / denominator), num_sources, _MUSIC
    except DegenerateCovarianceError:
        patched = np.where(np.isfinite(window), window, 0.0)
        patched = patched - patched.mean()
        steering = compute_steering_matrix(
            theta_grid, len(window), config.spacing_m, config.wavelength_m
        )
        return np.abs(steering.conj() @ patched), 0, _BEAMFORMING


def spectrogram_reference(
    series: np.ndarray, config
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The old window-at-a-time spectrogram walk.

    Returns ``(power, source_counts, estimators)`` with the same
    shapes and values the pre-kernel ``compute_spectrogram`` produced;
    ``config`` is a :class:`repro.core.tracking.TrackingConfig`.
    """
    series = np.asarray(series, dtype=complex)
    if series.ndim != 1:
        raise ValueError("channel series must be one-dimensional")
    if len(series) < config.window_size:
        raise ValueError("series shorter than one window")
    starts = np.arange(0, len(series) - config.window_size + 1, config.hop)
    theta_grid = config.theta_grid_deg
    power = np.empty((len(starts), len(theta_grid)))
    counts = np.empty(len(starts), dtype=int)
    estimators = np.empty(len(starts), dtype=object)
    for row, start in enumerate(starts):
        window = series[start : start + config.window_size]
        power[row], counts[row], estimators[row] = music_frame_reference(
            window, config
        )
    return power, counts, estimators
