"""Transmit and receive chains of a USRP-like software radio.

The transmit chain enforces the USRP's limited linear range: "the
linear transmit power range for USRPs is around 20 mW (i.e., beyond
this power the signal starts being clipped)" (§7.5).  The receive chain
applies gain ahead of a saturating ADC and injects thermal noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    BANDWIDTH_HZ,
    USRP_LINEAR_TX_POWER_W,
    db_to_linear,
)
from repro.hardware.adc import SaturatingAdc
from repro.hardware.dac import Dac
from repro.rf.noise import NoiseModel


@dataclass
class TransmitChain:
    """DAC plus power amplifier with a finite linear range.

    Digital samples are assumed normalized so that unit mean-square
    amplitude maps to ``power_w`` at the antenna.  Samples that would
    exceed the amplifier's linear range are soft-limited, which is the
    distortion the paper's 12 dB boost ceiling avoids (§4.1.2).
    """

    power_w: float = 0.00125
    linear_range_w: float = USRP_LINEAR_TX_POWER_W
    # OFDM has ~10 dB of peak-to-average ratio; give the DAC headroom
    # so it is the PA, not the DAC, that sets the clipping point.
    dac: Dac = field(default_factory=lambda: Dac(full_scale=8.0))

    def __post_init__(self) -> None:
        if self.power_w <= 0:
            raise ValueError("transmit power must be positive")
        if self.linear_range_w <= 0:
            raise ValueError("linear range must be positive")

    def set_power_w(self, power_w: float) -> None:
        if power_w <= 0:
            raise ValueError("transmit power must be positive")
        self.power_w = power_w

    def boost_db(self, boost_db: float) -> None:
        """Raise transmit power by ``boost_db`` (the §4.1.2 step)."""
        self.power_w *= db_to_linear(boost_db)

    @property
    def exceeds_linear_range(self) -> bool:
        """Whether the current power setting drives the PA nonlinear."""
        return self.power_w > self.linear_range_w

    def transmit(self, samples: np.ndarray) -> np.ndarray:
        """Produce the over-the-air waveform for digital ``samples``.

        Returns amplitude-scaled samples (sqrt(power) scaling); if the
        configured power exceeds the PA's linear range the excursion is
        clipped, distorting the waveform.
        """
        analog = self.dac.convert(np.asarray(samples, dtype=complex))
        amplitude = math.sqrt(self.power_w)
        waveform = amplitude * analog
        # The PA stays linear up to the linear-range average power plus
        # ~12 dB of peak headroom; excursions beyond that clip.
        clip_amplitude = math.sqrt(self.linear_range_w) * 4.0
        magnitude = np.abs(waveform)
        over = magnitude > clip_amplitude
        if np.any(over):
            waveform = np.where(
                over, waveform * (clip_amplitude / np.maximum(magnitude, 1e-30)), waveform
            )
        return waveform


@dataclass
class ReceiveChain:
    """Low-noise amplifier, thermal noise, and a saturating ADC.

    ``gain_db`` is the adjustable receive gain; the paper notes that
    after nulling "we can also boost the receive gain without
    saturating the receiver's ADC" (§4.1.2).
    """

    gain_db: float = 0.0
    adc: SaturatingAdc = field(default_factory=lambda: SaturatingAdc(bits=14, full_scale=1.0))
    noise: NoiseModel = field(default_factory=lambda: NoiseModel(BANDWIDTH_HZ))

    def receive(self, waveform: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Digitize an incident waveform: add noise, apply gain, convert."""
        waveform = np.asarray(waveform, dtype=complex)
        noisy = waveform + self.noise.sample(waveform.shape, rng)
        amplified = noisy * math.sqrt(db_to_linear(self.gain_db))
        return self.adc.convert(amplified)

    def saturates(self, waveform: np.ndarray) -> bool:
        """Whether ``waveform`` (pre-noise) would clip the ADC at the
        current gain."""
        amplified = np.asarray(waveform, dtype=complex) * math.sqrt(
            db_to_linear(self.gain_db)
        )
        return self.adc.saturates(amplified)


@dataclass
class UsrpN210:
    """One software radio: a transmit chain and a receive chain.

    The Wi-Vi prototype uses three of these — two transmitting, one
    receiving — on a shared clock (§7.1).
    """

    tx: TransmitChain = field(default_factory=TransmitChain)
    rx: ReceiveChain = field(default_factory=ReceiveChain)
    name: str = "usrp"
