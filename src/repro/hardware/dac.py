"""Digital-to-analog converter for the transmit path.

Transmit-side quantization is far less consequential than receive-side
(the USRP N210 DACs are 16-bit), but it is modelled so that the
waveform simulator is honest end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dac:
    """An ideal quantizing DAC with hard clipping at full scale.

    Attributes:
        bits: resolution per rail (USRP N210: 16).
        full_scale: output amplitude ceiling per rail.
    """

    bits: int = 16
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("DAC needs at least 1 bit")
        if self.full_scale <= 0:
            raise ValueError("full scale must be positive")

    @property
    def step(self) -> float:
        return 2.0 * self.full_scale / (2**self.bits)

    def _convert_rail(self, rail: np.ndarray) -> np.ndarray:
        clipped = np.clip(rail, -self.full_scale, self.full_scale - self.step)
        return np.round(clipped / self.step) * self.step

    def convert(self, samples: np.ndarray) -> np.ndarray:
        """Produce the analog waveform for digital ``samples``."""
        samples = np.asarray(samples, dtype=complex)
        return self._convert_rail(samples.real) + 1j * self._convert_rail(samples.imag)
