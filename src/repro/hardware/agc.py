"""Automatic gain control.

The waveform link ranges its ADC in two discrete jumps (sound at full
flash, tighten after nulling); a deployed receiver does it continuously.
This module provides that controller: a peak-tracking AGC with
asymmetric attack/decay — fast to back off when the input grows (to
avoid clipping), slow to recover gain (to avoid pumping) — plus the
headroom bookkeeping the nulling story depends on: how many effective
bits remain for a signal far below full scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class AgcController:
    """Peak-tracking AGC over block-wise complex baseband input.

    Attributes:
        target_level: desired peak amplitude after gain, relative to
            ADC full scale (leave headroom below 1.0).
        attack: log-domain step when the level must *drop* (1 =
            immediate back-off — a clipping receiver cannot wait).
        decay: log-domain step when gain may recover; small values
            recover over many blocks without pumping.
        min_gain, max_gain: hard gain range (linear amplitude).
    """

    target_level: float = 0.7
    attack: float = 1.0
    decay: float = 0.05
    min_gain: float = 1e-6
    max_gain: float = 1e6
    gain: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target_level <= 1.0:
            raise ValueError("target level must be in (0, 1]")
        for name in ("attack", "decay"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        if not 0 < self.min_gain <= self.max_gain:
            raise ValueError("need 0 < min_gain <= max_gain")

    def process(self, block: np.ndarray) -> np.ndarray:
        """Apply the current gain to a block and adapt for the next."""
        block = np.asarray(block, dtype=complex)
        if block.size == 0:
            raise ValueError("empty block")
        output = self.gain * block
        peak = float(np.max(np.abs(output)))
        if peak > 0:
            desired = self.gain * self.target_level / peak
            rate = self.attack if desired < self.gain else self.decay
            # Log-domain (multiplicative) step: symmetric over the
            # decades of dynamic range an AGC spans.
            self.gain *= (desired / self.gain) ** rate
            self.gain = float(np.clip(self.gain, self.min_gain, self.max_gain))
        return output

    def settle(self, block: np.ndarray, iterations: int = 200) -> float:
        """Run repeated adaptation on a stationary block; return the
        settled gain."""
        if iterations < 1:
            raise ValueError("need at least one iteration")
        for _ in range(iterations):
            self.process(block)
        return self.gain


def effective_bits(signal_amplitude: float, full_scale: float, adc_bits: int) -> float:
    """How many quantizer bits actually resolve a signal of the given
    amplitude when the converter is ranged to ``full_scale``.

    The flash-effect arithmetic in one formula: a target 40 dB below
    the flash-set full scale loses ~6.6 bits of resolution —
    ``bits - log2(full_scale / amplitude)``.
    """
    if signal_amplitude <= 0 or full_scale <= 0:
        raise ValueError("amplitudes must be positive")
    if adc_bits < 1:
        raise ValueError("need at least one bit")
    lost = math.log2(full_scale / signal_amplitude) if full_scale > signal_amplitude else 0.0
    return adc_bits - lost
