"""SDR hardware substrate: the USRP-like front end Wi-Vi runs on.

The flash effect is fundamentally an analog-to-digital conversion
problem: reflections off the wall "overwhelm the receiver's ADC,
preventing it from registering the minute variations due to reflections
from objects behind the wall" (§1).  This package models the parts of
the radio that create and constrain that problem: a saturating
quantizing ADC, a DAC, transmit chains with a finite linear power
range, receive gain, and a 2-TX + 1-RX MIMO front end on a shared
clock (§7.1).
"""

from repro.hardware.adc import SaturatingAdc
from repro.hardware.clock import SharedClock
from repro.hardware.dac import Dac
from repro.hardware.mimo import MimoFrontEnd
from repro.hardware.radio import ReceiveChain, TransmitChain, UsrpN210

__all__ = [
    "Dac",
    "MimoFrontEnd",
    "ReceiveChain",
    "SaturatingAdc",
    "SharedClock",
    "TransmitChain",
    "UsrpN210",
]
