"""Clocking.

The prototype "consists of three USRPs connected to an external clock
so that they act as one MIMO system" (§7.1).  Phase coherence between
the two transmitters and the receiver is what makes nulling possible at
all: the precoding ratio ``p = -h1/h2`` is only meaningful if all
radios share a carrier phase reference.

:class:`SharedClock` distributes a common carrier phase with optional
slow phase drift, letting tests show that nulling survives a shared
reference and degrades without one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SharedClock:
    """A common frequency/phase reference for all radios.

    Attributes:
        phase_drift_std_rad: standard deviation of the random-walk
            carrier phase increment per query.  Zero (default) models
            the wired external clock of the prototype.
    """

    phase_drift_std_rad: float = 0.0
    _phase_rad: float = 0.0

    def carrier_phase(self, rng: np.random.Generator | None = None) -> float:
        """Current common carrier phase, advancing the drift walk."""
        if self.phase_drift_std_rad > 0.0:
            if rng is None:
                raise ValueError("phase drift requires an rng")
            self._phase_rad += float(rng.normal(0.0, self.phase_drift_std_rad))
        return self._phase_rad

    def rotation(self, rng: np.random.Generator | None = None) -> complex:
        """Complex rotation applied by the current carrier phase."""
        phase = self.carrier_phase(rng)
        return complex(np.cos(phase), np.sin(phase))


@dataclass(frozen=True)
class IndependentClocks:
    """Unsynchronized radios: each query returns an unrelated phase.

    Used by tests to demonstrate that nulling collapses without the
    external clock the prototype requires.
    """

    def rotation(self, rng: np.random.Generator) -> complex:
        phase = rng.uniform(0.0, 2.0 * np.pi)
        return complex(np.cos(phase), np.sin(phase))
