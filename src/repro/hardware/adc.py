"""Saturating, quantizing analog-to-digital converter.

Two ADC behaviours drive the Wi-Vi design:

* **Saturation** — a strong flash clips the converter and destroys the
  weak superimposed target signal (§1); this is why the flash must be
  nulled *before* boosting power (§4.1.2).
* **Quantization** — after initial nulling, "residual reflections which
  were below the ADC quantization level become measurable" once power
  is boosted (§4.1.3), motivating iterative nulling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SaturatingAdc:
    """An ideal mid-rise quantizer with hard saturation.

    I and Q rails are converted independently, as in a real IQ
    receiver.

    Attributes:
        bits: resolution per rail.  The USRP N210 digitizes at 14 bits.
        full_scale: input amplitude at which a rail saturates, in the
            same (linear voltage) units as the samples.
    """

    bits: int = 14
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("ADC needs at least 1 bit")
        if self.full_scale <= 0:
            raise ValueError("full scale must be positive")

    @property
    def step(self) -> float:
        """Quantization step size (LSB voltage)."""
        return 2.0 * self.full_scale / (2**self.bits)

    @property
    def quantization_noise_power(self) -> float:
        """Complex quantization noise power (both rails): 2 * step^2 / 12."""
        return 2.0 * self.step**2 / 12.0

    def _convert_rail(self, rail: np.ndarray) -> np.ndarray:
        clipped = np.clip(rail, -self.full_scale, self.full_scale - self.step)
        levels = np.floor(clipped / self.step) + 0.5
        return levels * self.step

    def convert(self, samples: np.ndarray) -> np.ndarray:
        """Digitize complex baseband samples."""
        samples = np.asarray(samples, dtype=complex)
        return self._convert_rail(samples.real) + 1j * self._convert_rail(samples.imag)

    def saturation_fraction(self, samples: np.ndarray) -> float:
        """Fraction of samples with at least one clipped rail."""
        samples = np.asarray(samples, dtype=complex)
        limit = self.full_scale - self.step
        clipped = (np.abs(samples.real) > limit) | (np.abs(samples.imag) > limit)
        return float(np.mean(clipped))

    def saturates(self, samples: np.ndarray, tolerance: float = 0.001) -> bool:
        """Whether more than ``tolerance`` of the samples clip."""
        return self.saturation_fraction(samples) > tolerance
