"""Analog front-end impairments.

The paper's system tolerates real radio imperfections — nulling depth
is bounded by calibration drift, and the DC residual "fluctuates" with
clock jitter.  This module provides the standard impairment models the
simulator's aggregate jitter parameters stand in for, so their effect
can be studied in isolation: carrier-frequency offset, oscillator phase
noise (a Wiener random walk), and IQ imbalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def apply_cfo(samples: np.ndarray, cfo_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Rotate a stream by a constant carrier-frequency offset."""
    if sample_rate_hz <= 0:
        raise ValueError("sample rate must be positive")
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(len(samples))
    return samples * np.exp(2j * math.pi * cfo_hz * n / sample_rate_hz)


def phase_noise_walk(
    num_samples: int,
    linewidth_hz: float,
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A Wiener phase-noise trajectory (radians).

    The increment variance per sample is ``2*pi*linewidth / fs`` — the
    standard Lorentzian-linewidth oscillator model.
    """
    if num_samples < 1:
        raise ValueError("need at least one sample")
    if linewidth_hz < 0 or sample_rate_hz <= 0:
        raise ValueError("linewidth must be >= 0 and sample rate positive")
    if linewidth_hz == 0:
        return np.zeros(num_samples)
    sigma = math.sqrt(2.0 * math.pi * linewidth_hz / sample_rate_hz)
    return np.cumsum(rng.normal(0.0, sigma, num_samples))


def apply_phase_noise(
    samples: np.ndarray,
    linewidth_hz: float,
    sample_rate_hz: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Multiply a stream by a random-walk oscillator phase."""
    samples = np.asarray(samples, dtype=complex)
    walk = phase_noise_walk(len(samples), linewidth_hz, sample_rate_hz, rng)
    return samples * np.exp(1j * walk)


@dataclass(frozen=True)
class IqImbalance:
    """Gain/phase mismatch between the I and Q rails.

    Standard model: ``y = alpha * x + beta * conj(x)`` with
    ``alpha = cos(phi/2) + j*eps/2*sin(phi/2)`` etc.; we expose the
    physical knobs (gain mismatch in dB, phase mismatch in degrees) and
    derive alpha/beta.
    """

    gain_mismatch_db: float = 0.0
    phase_mismatch_deg: float = 0.0

    @property
    def alpha(self) -> complex:
        g = 10.0 ** (self.gain_mismatch_db / 20.0)
        phi = math.radians(self.phase_mismatch_deg)
        return 0.5 * (1.0 + g * complex(math.cos(phi), math.sin(phi)))

    @property
    def beta(self) -> complex:
        g = 10.0 ** (self.gain_mismatch_db / 20.0)
        phi = math.radians(self.phase_mismatch_deg)
        return 0.5 * (1.0 - g * complex(math.cos(phi), math.sin(phi)))

    def apply(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=complex)
        return self.alpha * samples + self.beta * np.conj(samples)

    @property
    def image_rejection_db(self) -> float:
        """Power of the desired signal over its mirror image."""
        if abs(self.beta) == 0:
            return float("inf")
        return 20.0 * math.log10(abs(self.alpha) / abs(self.beta))
