"""The 3-antenna MIMO front end: two transmitters, one receiver.

"Wi-Vi is essentially a 3-antenna MIMO device: two of the antennas are
used for transmitting and one is used for receiving" (§3.1).  The
front end owns the three radio chains and the precoding step: the
second transmitter sends ``p * x`` while the first sends ``x``
(Algorithm 1), so the two flight paths cancel at the receive antenna.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.clock import SharedClock
from repro.hardware.radio import ReceiveChain, TransmitChain


@dataclass
class MimoFrontEnd:
    """Two transmit chains and one receive chain on a shared clock."""

    tx1: TransmitChain = field(default_factory=TransmitChain)
    tx2: TransmitChain = field(default_factory=TransmitChain)
    rx: ReceiveChain = field(default_factory=ReceiveChain)
    clock: SharedClock = field(default_factory=SharedClock)

    def precode(
        self, samples: np.ndarray, precoder: complex | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split one stream into the two antenna streams (x, p * x).

        ``precoder`` may be a scalar or a per-sample / per-subcarrier
        array (nulling is performed on a subcarrier basis, §7.1).
        """
        samples = np.asarray(samples, dtype=complex)
        return samples, samples * precoder

    def transmit(
        self, samples1: np.ndarray, samples2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run both digital streams through their transmit chains."""
        return self.tx1.transmit(samples1), self.tx2.transmit(samples2)

    def boost_power_db(self, boost_db: float) -> None:
        """Boost both transmitters together (§4.1.2)."""
        self.tx1.boost_db(boost_db)
        self.tx2.boost_db(boost_db)

    def receive(self, waveform: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Digitize the superimposed incident waveform."""
        return self.rx.receive(waveform, rng)

    @property
    def total_tx_power_w(self) -> float:
        return self.tx1.power_w + self.tx2.power_w
