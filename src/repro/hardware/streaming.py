"""A UHD-style streaming interface over the simulated radios.

The prototype implements "MIMO nulling ... directly into the UHD
driver, so that it is performed in real-time" (§7.1).  This module
provides the driver-shaped surface that such an implementation talks
to: timestamped sample buffers, receive/transmit streamers with
bounded buffering, and overflow accounting — so the nulling controller
can be exercised the way it runs on hardware, burst by burst, instead
of against whole-trace arrays.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class StreamMetadata:
    """Metadata attached to every streamed buffer (UHD's rx_metadata)."""

    timestamp_s: float
    num_samples: int
    overflow: bool = False
    end_of_burst: bool = False


@dataclass
class StreamBuffer:
    """One timestamped chunk of complex baseband samples."""

    samples: np.ndarray
    metadata: StreamMetadata


class RxStreamer:
    """A bounded receive stream.

    A producer (the channel simulator) pushes buffers; the consumer
    (signal processing) pulls them.  When the consumer falls behind and
    the queue overflows, the oldest buffer is dropped and the next
    delivered buffer is flagged ``overflow=True`` — the UHD 'O' you see
    on a struggling host (the reason the prototype runs at 5 MHz
    rather than 20 MHz, §7.1).
    """

    def __init__(self, max_buffers: int = 16):
        if max_buffers < 1:
            raise ValueError("need at least one buffer slot")
        self._queue: deque[StreamBuffer] = deque()
        self._max_buffers = max_buffers
        self._overflowed = False
        self._closed = False
        self._clock_s = 0.0
        #: Buffers evicted by overflow.
        self.overflow_count = 0
        #: Samples lost inside those evicted buffers — the quantity a
        #: consumer needs to reconstruct how much signal time vanished
        #: (buffers are not all the same size).
        self.dropped_sample_count = 0
        #: recv() calls that found the queue empty: underrun, the
        #: opposite failure mode from overflow.
        self.starved_read_count = 0
        #: Samples actually handed to the consumer.
        self.delivered_sample_count = 0

    def drop_oldest(self) -> StreamBuffer | None:
        """Evict the oldest queued buffer, charging the loss counters.

        Used internally on producer overflow and externally by fault
        injection (an overflow storm is a burst of host-side drops).
        Returns the evicted buffer, or None if the queue is empty.
        """
        if not self._queue:
            return None
        victim = self._queue.popleft()
        self._overflowed = True
        self.overflow_count += 1
        self.dropped_sample_count += victim.metadata.num_samples
        return victim

    def push(self, samples: np.ndarray, sample_rate_hz: float) -> None:
        """Producer side: append a chunk at the stream clock."""
        if self._closed:
            raise ValueError("cannot push to a closed stream")
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("samples must be a non-empty 1-D array")
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if len(self._queue) >= self._max_buffers:
            self.drop_oldest()
        metadata = StreamMetadata(
            timestamp_s=self._clock_s,
            num_samples=len(samples),
            overflow=self._overflowed,
        )
        self._overflowed = False
        self._queue.append(StreamBuffer(samples=samples, metadata=metadata))
        self._clock_s += len(samples) / sample_rate_hz

    def close(self) -> None:
        """Producer side: no more buffers are coming.

        Already-queued buffers remain receivable; once they drain,
        ``recv`` returns None *without* charging a starved read — end
        of stream is a shutdown, not an underrun.
        """
        self._closed = True

    @property
    def closed(self) -> bool:
        """Whether the producer has announced end of stream."""
        return self._closed

    @property
    def exhausted(self) -> bool:
        """Closed and fully drained: the consumer can shut down."""
        return self._closed and not self._queue

    def recv(self) -> StreamBuffer | None:
        """Consumer side: pop the oldest buffer (None when starved).

        A starved read is *accounted* (``starved_read_count``) so
        consumers can tell underrun (they outpace the producer) from
        overflow (the producer outpaces them) when diagnosing gaps —
        unless the stream is closed, in which case an empty queue is
        orderly shutdown, not starvation.
        """
        if not self._queue:
            if not self._closed:
                self.starved_read_count += 1
            return None
        buffer = self._queue.popleft()
        self.delivered_sample_count += buffer.metadata.num_samples
        return buffer

    def __len__(self) -> int:
        return len(self._queue)


class TxStreamer:
    """A transmit stream: buffers queued for radiation, with a hook the
    simulator uses to pick them up."""

    def __init__(self):
        self._queue: deque[StreamBuffer] = deque()
        self._clock_s = 0.0
        self.sent_sample_count = 0

    def send(
        self, samples: np.ndarray, sample_rate_hz: float, end_of_burst: bool = False
    ) -> None:
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("samples must be a non-empty 1-D array")
        if sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        metadata = StreamMetadata(
            timestamp_s=self._clock_s,
            num_samples=len(samples),
            end_of_burst=end_of_burst,
        )
        self._queue.append(StreamBuffer(samples=samples, metadata=metadata))
        self._clock_s += len(samples) / sample_rate_hz
        self.sent_sample_count += len(samples)

    def pop_burst(self) -> list[StreamBuffer]:
        """Simulator side: drain buffers up to (and including) the next
        end-of-burst marker."""
        burst: list[StreamBuffer] = []
        while self._queue:
            buffer = self._queue.popleft()
            burst.append(buffer)
            if buffer.metadata.end_of_burst:
                break
        return burst

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class StreamProcessor:
    """Pulls RX buffers and feeds a per-chunk callback — the shape of
    the real-time processing loop in the UHD driver.

    Attributes:
        callback: called with (samples, metadata) per buffer.
        drop_on_overflow: when True, a buffer flagged ``overflow`` also
            resets any state via the optional ``on_overflow`` hook
            (phase-continuous processing cannot survive a gap).
    """

    callback: Callable[[np.ndarray, StreamMetadata], None]
    on_overflow: Callable[[], None] | None = None
    processed_samples: int = 0
    seen_overflows: int = 0

    def drain(self, streamer: RxStreamer) -> int:
        """Process everything currently queued; returns buffers handled."""
        handled = 0
        while True:
            buffer = streamer.recv()
            if buffer is None:
                return handled
            if buffer.metadata.overflow:
                self.seen_overflows += 1
                if self.on_overflow is not None:
                    self.on_overflow()
            self.callback(buffer.samples, buffer.metadata)
            self.processed_samples += buffer.metadata.num_samples
            handled += 1
