"""Consistent-hash session→shard assignment for the fleet frontend.

A classic hash ring: every shard contributes ``replicas`` virtual
points placed by a stable hash (blake2b — salted per replica, identical
across processes and Python runs, unlike ``hash()``), and a routing
key lands on the first point clockwise from its own hash.  Two
properties matter here:

* **Determinism** — the same key always maps to the same shard while
  the membership is unchanged, so a :class:`~repro.serve.resilient.
  ResilientServeClient` that reconnects with its ``routing_key``
  lands back on the shard that holds nothing of value (sessions are
  process-state) but the *assignment* stays honored — the frontend
  can route a resume identically without any session table shared
  across frontends.
* **Minimal remap** — removing a shard (drain, crash) moves only the
  keys that hashed to its points; everything else keeps its shard, so
  a drain migrates exactly the draining shard's sessions.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing", "stable_hash"]

#: Virtual points per shard.  64 keeps the assignment spread within a
#: few percent of uniform for small fleets while the ring stays tiny
#: (N*64 ints).
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A 64-bit process-stable hash of ``key`` (blake2b prefix)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent hashing over named shards."""

    def __init__(
        self, shards: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._shards: set[str] = set()
        for shard in shards:
            self.add(shard)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> list[str]:
        """Current members, sorted."""
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        """Add a shard's virtual points (idempotent)."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = stable_hash(f"{shard}#{replica}")
            # A (vanishingly unlikely) 64-bit collision between two
            # shards' points would make removal order-dependent; keep
            # the first owner deterministically by shard name.
            owner = self._owners.get(point)
            if owner is not None and owner <= shard:
                continue
            if owner is None:
                bisect.insort(self._points, point)
            self._owners[point] = shard

    def remove(self, shard: str) -> None:
        """Remove a shard's points (idempotent); its keys remap."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        for replica in range(self.replicas):
            point = stable_hash(f"{shard}#{replica}")
            if self._owners.get(point) == shard:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise).

        Raises:
            LookupError: the ring is empty.
        """
        if not self._points:
            raise LookupError("hash ring has no shards")
        point = stable_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]
