"""Shard worker processes: one :class:`SensingServer` per fork.

Each shard is a real OS process running its own event loop, scheduler,
per-process DSP steering cache, and backend selection — the whole
single-process serving stack, unmodified, behind an ephemeral
loopback port.  The parent (:mod:`repro.fleet.frontend`) learns the
bound port over a one-shot pipe handshake, then talks plain wire
protocol; worker shutdown is a SIGTERM that triggers the server's own
graceful drain.

Fork (where available) keeps worker start cheap — the numpy/scipy
import cost is paid once in the parent — and the spec stays picklable
so the spawn fallback works on platforms without fork.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

from repro.serve.server import SensingServer, ServeConfig

__all__ = ["WorkerSpec", "WorkerHandle", "start_worker"]

#: How long the parent waits for a freshly started worker to report
#: its bound port before declaring the start failed.
START_TIMEOUT_S = 30.0


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard process needs to boot (picklable).

    Attributes:
        name: stable shard name — the identity the hash ring places
            points for.  A restarted worker keeps its predecessor's
            name, so the assignment function survives crashes.
        serve: the worker's :class:`ServeConfig`.  ``port`` should be 0
            (ephemeral) and ``idle_timeout_s`` ``None`` — the frontend
            holds pooled connections open between relays, and the
            client-facing idle deadline is enforced at the frontend.
        telemetry_dir: when set, the worker runs an enabled telemetry
            session writing into this directory (one subdirectory per
            shard) and flushes it on graceful shutdown.
        dsp_backend: when set, the worker selects this DSP backend
            process-wide before serving (per-shard backend selection).
    """

    name: str
    serve: ServeConfig
    telemetry_dir: str | None = None
    dsp_backend: str | None = None


def _worker_main(spec: WorkerSpec, conn: Connection) -> None:
    """Entry point of the shard process."""
    # The parent's signal disposition is inherited; the worker wants
    # SIGINT ignored (the frontend coordinates shutdown via SIGTERM).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if spec.dsp_backend is not None:
        from repro.dsp.backend import use_backend

        use_backend(spec.dsp_backend)
    telemetry = None
    if spec.telemetry_dir is not None:
        from repro.telemetry import configure

        telemetry = configure(out_dir=spec.telemetry_dir)
    try:
        asyncio.run(_serve(spec, conn))
    finally:
        if telemetry is not None:
            telemetry.flush()


async def _serve(spec: WorkerSpec, conn: Connection) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    server = SensingServer(spec.serve)
    try:
        port = await server.start()
    except OSError as exc:
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
        conn.close()
        return
    conn.send({"port": port, "pid": os.getpid()})
    conn.close()
    await stop.wait()
    await server.shutdown()


class WorkerHandle:
    """The parent's view of one shard process."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.port: int = 0
        self.process: Any = None
        self._conn: Connection | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    async def start(self) -> int:
        """Fork the shard, await its port handshake, return the port."""
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.spec, child_conn),
            name=f"repro-fleet-{self.spec.name}",
            daemon=True,
        )
        self.process.start()
        # The child owns its end now; closing ours makes a crashed
        # child observable as EOF instead of a hang.
        child_conn.close()
        self._conn = parent_conn
        deadline = time.monotonic() + START_TIMEOUT_S
        while not parent_conn.poll(0):
            if not self.process.is_alive():
                raise RuntimeError(
                    f"shard {self.name} died before reporting its port "
                    f"(exitcode {self.process.exitcode})"
                )
            if time.monotonic() > deadline:
                self.process.kill()
                raise RuntimeError(
                    f"shard {self.name} did not report a port within "
                    f"{START_TIMEOUT_S:.0f}s"
                )
            await asyncio.sleep(0.01)
        handshake = parent_conn.recv()
        parent_conn.close()
        self._conn = None
        if "error" in handshake:
            raise RuntimeError(
                f"shard {self.name} failed to bind: {handshake['error']}"
            )
        self.port = int(handshake["port"])
        return self.port

    async def stop(self, timeout_s: float = 15.0) -> None:
        """SIGTERM the shard (graceful drain) and reap it."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
        await self.join(timeout_s)
        if self.process.is_alive():  # pragma: no cover - drain hang
            self.process.kill()
            await self.join(5.0)

    def kill(self) -> None:
        """SIGKILL the shard (crash simulation / last resort)."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()

    async def join(self, timeout_s: float) -> None:
        """Await process exit without blocking the event loop."""
        if self.process is None:
            return
        deadline = time.monotonic() + timeout_s
        while self.process.is_alive() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if not self.process.is_alive():
            self.process.join(timeout=0)


async def start_worker(spec: WorkerSpec) -> WorkerHandle:
    """Boot one shard and return its handle once the port is known."""
    handle = WorkerHandle(spec)
    await handle.start()
    return handle
