"""Seeded, verifying load generator for the sharded fleet.

The fleet counterpart of :func:`repro.serve.load.run_chaos_load`:
N :class:`~repro.serve.resilient.ResilientServeClient` sessions each
stream a pre-generated deterministic trace through the routing
frontend for a *fixed push count*, and every served column is checked
bit-for-bit against the offline ``compute_spectrogram`` of the same
trace.  Because the push count (not a clock) bounds each session, the
verification covers complete streams — including sessions that
migrated shards mid-run through a drain or a worker crash, which is
exactly the equivalence gate the fleet must hold.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.tracking import compute_spectrogram
from repro.errors import ReproError
from repro.serve.client import AsyncServeClient
from repro.serve.load import DEFAULT_SEED, _chaos_trace
from repro.serve.resilient import BackoffPolicy, ResilientServeClient
from repro.serve.session import config_from_wire

__all__ = ["FleetLoadReport", "FleetSessionOutcome", "run_fleet_load"]


@dataclass
class FleetSessionOutcome:
    """How one routed session ended."""

    session: int
    outcome: str  # "complete" or "error:<TaxonomyClass>"
    shard: str | None = None
    columns: int = 0
    expected_columns: int = 0
    diverged_columns: int = 0
    reconnects: int = 0
    resumes: int = 0
    fleet_migrations: int = 0

    @property
    def defined(self) -> bool:
        return self.outcome == "complete" or self.outcome.startswith("error:")


@dataclass
class FleetLoadReport:
    """Aggregate outcome of one fleet load run.

    Gates: :attr:`diverged_columns` must be zero (every served column
    bit-equal to offline compute, through routing, drains, and
    crashes), :attr:`incomplete_sessions` zero, and every outcome
    *defined*.
    """

    sessions: int = 0
    pushes_per_session: int = 0
    seconds: float = 0.0
    outcomes: list[FleetSessionOutcome] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def columns(self) -> int:
        return sum(outcome.columns for outcome in self.outcomes)

    @property
    def columns_per_s(self) -> float:
        return self.columns / self.seconds if self.seconds > 0 else 0.0

    @property
    def diverged_columns(self) -> int:
        return sum(outcome.diverged_columns for outcome in self.outcomes)

    @property
    def incomplete_sessions(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.outcome != "complete"
        )

    @property
    def all_defined(self) -> bool:
        return all(outcome.defined for outcome in self.outcomes)

    @property
    def migrations(self) -> int:
        return sum(outcome.fleet_migrations for outcome in self.outcomes)

    def summary(self) -> dict[str, Any]:
        shards = self.server_stats.get("shards", [])
        return {
            "sessions": self.sessions,
            "pushes_per_session": self.pushes_per_session,
            "seconds": round(self.seconds, 3),
            "columns": self.columns,
            "columns_per_s": round(self.columns_per_s, 2),
            "diverged_columns": self.diverged_columns,
            "incomplete_sessions": self.incomplete_sessions,
            "all_outcomes_defined": self.all_defined,
            "reconnects": sum(o.reconnects for o in self.outcomes),
            "resumes": sum(o.resumes for o in self.outcomes),
            "fleet_migrations": self.migrations,
            "shards": [
                {
                    "shard": shard.get("shard"),
                    "state": shard.get("state"),
                    "columns_served": shard.get("columns_served"),
                }
                for shard in shards
            ],
        }


async def _drive_fleet_session(
    index: int,
    host: str,
    port: int,
    trace: np.ndarray,
    block_size: int,
    pushes: int,
    config: dict[str, Any] | None,
    backoff: BackoffPolicy,
    expected_power: np.ndarray,
    seed: int,
) -> FleetSessionOutcome:
    """One routed session's lifetime; never raises."""
    client = ResilientServeClient(
        host,
        port,
        session_config=config,
        backoff=backoff,
        seed=seed,
        routing_key=f"fleet-load-{index}",
    )
    outcome = "complete"
    try:
        await client.start()
        for push in range(pushes):
            block = trace[push * block_size : (push + 1) * block_size]
            await client.push(block)
        await client.close_session()
    except ReproError as exc:
        outcome = f"error:{type(exc).__name__}"
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        outcome = "error:ConnectionError"
    finally:
        await client.aclose()
    served = client.served_columns()
    diverged = 0
    for column in served:
        if column.index >= len(expected_power) or not np.array_equal(
            column.power, expected_power[column.index]
        ):
            diverged += 1
    if outcome == "complete" and len(served) != len(expected_power):
        outcome = "error:IncompleteStream"
    return FleetSessionOutcome(
        session=index,
        outcome=outcome,
        columns=len(served),
        expected_columns=len(expected_power),
        diverged_columns=diverged,
        reconnects=client.stats.reconnects,
        resumes=client.stats.resumes,
        fleet_migrations=client.stats.fleet_migrations,
    )


async def run_fleet_load(
    host: str,
    port: int,
    sessions: int = 64,
    pushes: int = 12,
    block_size: int = 200,
    seed: int = DEFAULT_SEED,
    config: dict[str, Any] | None = None,
    backoff: BackoffPolicy | None = None,
) -> FleetLoadReport:
    """Drive N resilient sessions through the frontend; verify columns.

    Each session carries a stable ``routing_key`` and its own trace
    (``seed + i``); served columns are verified against offline
    compute, so a routing, migration, or relay bug is a counted
    divergence, never a silent pass.
    """
    backoff = backoff or BackoffPolicy(max_attempts=12)
    report = FleetLoadReport(sessions=sessions, pushes_per_session=pushes)
    tracking = config_from_wire(dict(config) if config else None)
    traces = [_chaos_trace(seed + i, pushes, block_size) for i in range(sessions)]
    references = [
        compute_spectrogram(trace, tracking).power for trace in traces
    ]
    start = time.perf_counter()
    results = await asyncio.gather(
        *[
            _drive_fleet_session(
                i,
                host,
                port,
                traces[i],
                block_size,
                pushes,
                config,
                backoff,
                references[i],
                seed + i,
            )
            for i in range(sessions)
        ],
        return_exceptions=True,
    )
    report.seconds = time.perf_counter() - start
    for i, result in enumerate(results):
        if isinstance(result, BaseException):
            report.outcomes.append(
                FleetSessionOutcome(
                    session=i, outcome=f"undefined:{type(result).__name__}"
                )
            )
            continue
        report.outcomes.append(result)
    probe = AsyncServeClient(host, port)
    try:
        await probe.connect()
        report.server_stats = await probe.server_stats()
        await probe.aclose()
    except (ConnectionError, OSError, ReproError):  # pragma: no cover
        pass
    return report
