"""The asyncio routing frontend of the sharded sensing fleet.

``FleetServer`` speaks the exact NDJSON wire protocol of
:class:`~repro.serve.server.SensingServer` on its listening socket and
proxies every session to one of N forked shard workers
(:mod:`repro.fleet.worker`), each a complete single-process serving
stack.  The frontend adds only routing-layer behavior:

* **Consistent assignment** — ``open_session`` routes on a
  ``routing_key`` (client-supplied or minted and echoed back) through
  a :class:`~repro.fleet.ring.HashRing`, so a resuming
  :class:`~repro.serve.resilient.ResilientServeClient` presenting the
  same key re-lands deterministically while the membership holds, and
  remaps minimally when it does not.
* **Admission** — a shard already at its session limit is shed at the
  frontend with the same :class:`SessionLimitError` the worker would
  raise; per-push admission (:class:`ServeOverloadError`) relays
  through from the worker's scheduler untouched.
* **Drain** — :meth:`drain_shard` removes the shard from the ring
  (new sessions re-hash), answers the shard's remaining sessions with
  typed :class:`ShardDrainingError` frames (their clients resume onto
  surviving shards via the checkpoint path), and SIGTERMs the worker
  once it empties.
* **Supervision** — a crashed worker is restarted under the same
  shard name (same ring points); sessions orphaned by the crash draw
  typed :class:`WorkerCrashedError` frames, which the resilient
  client treats as a reconnect-and-resume signal.
* **Exact telemetry** — every shard answers the
  ``telemetry_snapshot`` frame with its process registry in PR-3
  merge form; the fleet's own ``telemetry_snapshot`` reply carries
  the per-shard parts *and* their fold, so fleet-level aggregates are
  provably the sum of the per-shard registries.

Session ids are namespaced ``<shard>:<worker sid>`` toward the client
(worker counters are per-process, so raw ids could collide across
shards); the frontend translates the ``session`` field both ways.
Bulk payloads — packed sample/column arrays — are opaque JSON strings
to the relay, so the served-vs-offline bit-exactness contract holds
through the extra hop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    ProtocolError,
    ReproError,
    ServeOverloadError,
    ServeTimeoutError,
    SessionLimitError,
    ShardDrainingError,
    WorkerCrashedError,
)
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.fleet.worker import WorkerHandle, WorkerSpec
from repro.serve import protocol
from repro.serve.client import AsyncServeClient
from repro.serve.server import ServeConfig
from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["FleetConfig", "FleetServer", "FleetStats", "merge_snapshots"]


@dataclass(frozen=True)
class FleetConfig:
    """Deployment knobs of the routing frontend.

    Attributes:
        workers: shard count; shard names are ``w0..w{N-1}`` and stay
            stable across restarts (the ring hashes names, not pids).
        serve: the per-worker :class:`ServeConfig` template.  The
            frontend forces ``port=0`` (ephemeral loopback) and
            ``idle_timeout_s=None`` on workers — pooled frontend↔worker
            connections sit idle legitimately, and the client-facing
            idle deadline lives here (``client_idle_timeout_s``).
        record_dir: shared capture store all shards record into (the
            store's advisory locking keeps concurrent writers safe).
        telemetry_dir: when set, each worker runs an enabled telemetry
            session in ``<dir>/shard-<name>`` and the frontend merges
            every shard's final snapshot into its own registry at
            shutdown — ``repro telemetry-report <dir>`` then reports
            exact fleet totals.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    serve: ServeConfig = field(default_factory=ServeConfig)
    replicas: int = DEFAULT_REPLICAS
    supervisor_interval_s: float = 0.25
    drain_timeout_s: float = 15.0
    client_idle_timeout_s: float | None = 30.0
    write_timeout_s: float | None = 10.0
    backend_timeout_s: float = 30.0
    record_dir: str | None = None
    telemetry_dir: str | None = None
    dsp_backend: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if self.supervisor_interval_s <= 0:
            raise ValueError("supervisor_interval_s must be positive")


@dataclass
class FleetStats:
    """Always-on routing-layer accounting."""

    connections: int = 0
    requests_relayed: int = 0
    sessions_routed: int = 0
    sessions_resumed: int = 0
    shed_sessions: int = 0
    drain_notices: int = 0
    crash_notices: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    shards_drained: int = 0
    relay_errors: int = 0

    def snapshot(self) -> dict[str, Any]:
        return dict(vars(self))


@dataclass
class _SessionRoute:
    """Where one client session lives: shard + incarnation."""

    shard: str
    generation: int
    backend_sid: str
    routing_key: str


class _ShardState:
    """The frontend's book-keeping for one shard."""

    def __init__(self, spec: WorkerSpec, handle: WorkerHandle):
        self.spec = spec
        self.handle = handle
        self.generation = 0
        self.draining = False
        self.stopped = False
        self.restarts = 0
        #: Latest supervisor-fetched ``server_stats`` reply.
        self.stats_cache: dict[str, Any] = {}
        #: Latest telemetry snapshot of the *current* incarnation.
        self.metrics_cache: dict[str, Any] = {}
        #: Final snapshots of retired incarnations (drained or crashed)
        #: — their served work must not vanish from fleet totals.
        self.retired_metrics: list[dict[str, Any]] = []

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def routable(self) -> bool:
        return not self.draining and not self.stopped and self.handle.alive

    def merged_metrics(self) -> dict[str, Any]:
        """This shard's exact totals across all its incarnations."""
        return merge_snapshots([*self.retired_metrics, self.metrics_cache])

    def snapshot(self) -> dict[str, Any]:
        stats = self.stats_cache
        state = (
            "drained"
            if self.stopped
            else "draining"
            if self.draining
            else "up"
            if self.handle.alive
            else "down"
        )
        return {
            "shard": self.name,
            "state": state,
            "pid": self.handle.pid,
            "port": self.handle.port,
            "generation": self.generation,
            "restarts": self.restarts,
            "active_sessions": stats.get("active_sessions", 0),
            "queue_depth": stats.get("queue_depth", 0),
            "columns_served": stats.get("server", {}).get("columns_served", 0),
            "requests": stats.get("server", {}).get("requests", 0),
            "dsp_backend": stats.get("dsp_backend"),
        }


def merge_snapshots(parts: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold metric snapshots with PR-3 exact merge semantics."""
    registry = MetricsRegistry()
    for part in parts:
        if part:
            registry.merge(part)
    return registry.snapshot()


def _aggregate(parts: list[dict[str, Any]]) -> dict[str, Any]:
    """Sum per-shard stats dicts into one fleet view.

    Integer counters add exactly; float readouts (latency percentiles,
    batch occupancy) take the worst shard; strings stay when uniform
    and degrade to ``"mixed"`` when shards disagree.
    """
    out: dict[str, Any] = {}
    for part in parts:
        for key, value in part.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                if key not in out:
                    out[key] = value
                elif out[key] != value:
                    out[key] = "mixed"
            elif isinstance(value, float):
                out[key] = max(float(out.get(key, 0.0)), value)
            else:
                out[key] = int(out.get(key, 0)) + value
    return out


class FleetServer:
    """Route many client sessions across N shard worker processes."""

    def __init__(self, config: FleetConfig | None = None, hub: Any = None):
        self.config = config if config is not None else FleetConfig()
        self.hub = hub
        self.stats = FleetStats()
        self._shards: dict[str, _ShardState] = {}
        self._ring = HashRing(replicas=self.config.replicas)
        self._server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None
        self._drainers: set[asyncio.Task] = set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._key_counter = itertools.count(1)
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound frontend port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("fleet is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether fleet shutdown has begun (drives ``/readyz``)."""
        return self._stopped.is_set()

    def _worker_spec(self, name: str) -> WorkerSpec:
        serve = dataclasses.replace(
            self.config.serve,
            host="127.0.0.1",
            port=0,
            idle_timeout_s=None,
            record_dir=self.config.record_dir,
        )
        telemetry_dir = (
            f"{self.config.telemetry_dir}/shard-{name}"
            if self.config.telemetry_dir is not None
            else None
        )
        return WorkerSpec(
            name=name,
            serve=serve,
            telemetry_dir=telemetry_dir,
            dsp_backend=self.config.dsp_backend,
        )

    async def start(self) -> int:
        """Boot every shard, bind the frontend, return its port."""
        if self._server is not None:
            raise RuntimeError("fleet is already started")
        names = [f"w{index}" for index in range(self.config.workers)]
        try:
            for name in names:
                spec = self._worker_spec(name)
                handle = WorkerHandle(spec)
                await handle.start()
                self._shards[name] = _ShardState(spec, handle)
                self._ring.add(name)
        except Exception:
            for state in self._shards.values():
                state.handle.kill()
            raise
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.serve.max_frame_bytes,
        )
        self._supervisor = asyncio.create_task(self._supervise())
        return self.port

    async def serve_until_stopped(self, duration_s: float | None = None) -> None:
        """Block until :meth:`shutdown` (or for ``duration_s`` seconds)."""
        if duration_s is None:
            await self._stopped.wait()
            return
        try:
            await asyncio.wait_for(self._stopped.wait(), timeout=duration_s)
        except asyncio.TimeoutError:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Stop routing, collect final shard telemetry, reap workers."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        for task in list(self._drainers):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        # Final exact snapshots before the workers go away; with the
        # frontend's own telemetry enabled, fold the fleet totals in so
        # `telemetry-report` over this run reports the sum of shards.
        for state in self._shards.values():
            if state.handle.alive:
                await self._refresh_shard(state)
        telemetry = get_telemetry()
        if telemetry.enabled:
            for state in self._shards.values():
                merged = state.merged_metrics()
                if merged:
                    telemetry.metrics.merge(merged)
        for state in self._shards.values():
            await state.handle.stop()
            state.stopped = True

    # ------------------------------------------------------------------
    # Supervision, drain, restart
    # ------------------------------------------------------------------

    async def _fetch(self, state: _ShardState, what: str) -> dict[str, Any] | None:
        """One stats/telemetry probe of a shard (fresh connection)."""
        probe = AsyncServeClient("127.0.0.1", state.handle.port)
        try:
            await asyncio.wait_for(
                probe.connect(), timeout=self.config.backend_timeout_s
            )
            if what == "stats":
                reply = await asyncio.wait_for(
                    probe.server_stats(), timeout=self.config.backend_timeout_s
                )
            else:
                reply = await asyncio.wait_for(
                    probe.telemetry_snapshot(),
                    timeout=self.config.backend_timeout_s,
                )
            return reply
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ReproError,
        ):
            return None
        finally:
            await probe.aclose()

    async def _refresh_shard(self, state: _ShardState) -> None:
        stats = await self._fetch(state, "stats")
        if stats is not None:
            state.stats_cache = stats
        snapshot = await self._fetch(state, "telemetry")
        if snapshot is not None:
            state.metrics_cache = snapshot.get("metrics", {})

    async def _supervise(self) -> None:
        """Restart crashed shards; keep per-shard caches fresh."""
        while True:
            await asyncio.sleep(self.config.supervisor_interval_s)
            for state in list(self._shards.values()):
                if state.stopped or state.draining:
                    continue
                if not state.handle.alive:
                    await self._restart_shard(state)
                    continue
                await self._refresh_shard(state)
            if self.hub is not None:
                self.hub.publish("fleet.shards", shards=self.shard_snapshots())

    async def _restart_shard(self, state: _ShardState) -> None:
        """Bring a crashed shard back under the same name/ring points."""
        self.stats.worker_crashes += 1
        self._ring.remove(state.name)
        # The dead incarnation's last known snapshot is the best record
        # of its served work; keep it in the shard's running total.
        if state.metrics_cache:
            state.retired_metrics.append(state.metrics_cache)
            state.metrics_cache = {}
        state.generation += 1
        state.stats_cache = {}
        handle = WorkerHandle(state.spec)
        try:
            await handle.start()
        except RuntimeError:
            # The replacement failed to boot; leave the shard out of
            # the ring — the next supervisor tick tries again.
            state.handle = handle
            return
        state.handle = handle
        state.restarts += 1
        self.stats.worker_restarts += 1
        self._ring.add(state.name)
        if self.hub is not None:
            self.hub.publish(
                "fleet.restart",
                shard=state.name,
                generation=state.generation,
                pid=handle.pid,
            )

    async def drain_shard(self, name: str) -> None:
        """Gracefully drain one shard: re-route, migrate, stop.

        Returns once the drain *began* (the shard is out of the ring
        and flagged, so new sessions re-hash immediately and existing
        ones draw :class:`ShardDrainingError` on their next request); a
        background task stops the worker once its sessions are gone.
        """
        state = self._shards.get(name)
        if state is None:
            raise LookupError(f"no shard named {name!r}")
        if state.draining or state.stopped:
            return
        state.draining = True
        self._ring.remove(name)
        self.stats.shards_drained += 1
        if self.hub is not None:
            self.hub.publish("fleet.drain", shard=name)
        task = asyncio.create_task(self._finish_drain(state))
        self._drainers.add(task)
        task.add_done_callback(self._drainers.discard)

    async def _finish_drain(self, state: _ShardState) -> None:
        """Stop a draining worker once its last session migrates."""
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            stats = await self._fetch(state, "stats")
            if stats is not None:
                state.stats_cache = stats
                if stats.get("active_sessions", 1) == 0:
                    break
            if not state.handle.alive:
                break
            await asyncio.sleep(0.05)
        snapshot = await self._fetch(state, "telemetry")
        if snapshot is not None:
            state.metrics_cache = snapshot.get("metrics", {})
        if state.metrics_cache:
            state.retired_metrics.append(state.metrics_cache)
            state.metrics_cache = {}
        await state.handle.stop()
        state.stopped = True
        state.stats_cache = {}

    # ------------------------------------------------------------------
    # Observability views
    # ------------------------------------------------------------------

    def shard_snapshots(self) -> list[dict[str, Any]]:
        """Every shard's routing-layer view (the ``/api/shards`` feed)."""
        return [
            self._shards[name].snapshot() for name in sorted(self._shards)
        ]

    def metric_snapshots(self) -> dict[str, dict[str, Any]]:
        """Cached per-shard metric snapshots (exact merge form)."""
        return {
            name: state.merged_metrics()
            for name, state in sorted(self._shards.items())
        }

    def _stats_reply(self) -> dict[str, Any]:
        shards = [state.stats_cache for state in self._shards.values()]
        merged = _aggregate([snap for snap in shards if snap])
        server = _aggregate(
            [snap.get("server", {}) for snap in shards if snap]
        )
        scheduler = _aggregate(
            [snap.get("scheduler", {}) for snap in shards if snap]
        )
        return {
            "type": protocol.SERVER_STATS_REPLY,
            "active_sessions": merged.get("active_sessions", 0),
            "queue_depth": merged.get("queue_depth", 0),
            "dsp_backend": merged.get("dsp_backend", "unknown"),
            "server": server,
            "scheduler": scheduler,
            "fleet": self.stats.snapshot(),
            "shards": self.shard_snapshots(),
        }

    async def _telemetry_reply(self) -> dict[str, Any]:
        """Per-shard exact snapshots and their fold, self-certifying."""
        for state in self._shards.values():
            if state.handle.alive and not state.stopped:
                snapshot = await self._fetch(state, "telemetry")
                if snapshot is not None:
                    state.metrics_cache = snapshot.get("metrics", {})
        shards = self.metric_snapshots()
        telemetry = get_telemetry()
        frontend = telemetry.metrics.snapshot() if telemetry.enabled else {}
        merged = merge_snapshots([*shards.values(), frontend])
        return {
            "type": protocol.TELEMETRY_SNAPSHOT_REPLY,
            "enabled": True,
            "metrics": merged,
            "shards": shards,
            "frontend": frontend,
        }

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._connections.add(writer)
        relay = _ClientRelay(self, reader, writer)
        try:
            await relay.run()
        finally:
            await relay.close_backends()
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    def _route_key(self, routing_key: str) -> _ShardState:
        """The routable shard owning ``routing_key``, admission-checked."""
        routable = [
            state.name for state in self._shards.values() if state.routable
        ]
        if not routable:
            raise ServeOverloadError(
                "fleet has no routable shards (all draining or down)"
            )
        ring = self._ring
        name = ring.lookup(routing_key)
        state = self._shards.get(name)
        if state is None or not state.routable:
            # The ring briefly lags membership changes mid-restart;
            # fall back to a deterministic rehash over routable shards.
            fallback = HashRing(routable, replicas=self.config.replicas)
            state = self._shards[fallback.lookup(routing_key)]
        limit = state.spec.serve.max_sessions
        if state.stats_cache.get("active_sessions", 0) >= limit:
            self.stats.shed_sessions += 1
            raise SessionLimitError(
                f"shard {state.name} is at its limit of {limit} sessions"
            )
        return state


class _ClientRelay:
    """One client connection's sequential relay loop."""

    def __init__(
        self,
        fleet: FleetServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.fleet = fleet
        self.reader = reader
        self.writer = writer
        #: fleet session id -> route
        self.routes: dict[str, _SessionRoute] = {}
        #: (shard, generation) -> pooled backend connection
        self.backends: dict[
            tuple[str, int], tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}

    # -- plumbing ------------------------------------------------------

    async def _read_client(self) -> bytes:
        if self.fleet.config.client_idle_timeout_s is None:
            return await self.reader.readline()
        return await asyncio.wait_for(
            self.reader.readline(),
            timeout=self.fleet.config.client_idle_timeout_s,
        )

    async def _send_client(self, frame: dict[str, Any]) -> bool:
        return await self._send_client_raw(protocol.encode_frame(frame))

    async def _send_client_raw(self, data: bytes) -> bool:
        try:
            self.writer.write(data)
            if self.fleet.config.write_timeout_s is None:
                await self.writer.drain()
            else:
                await asyncio.wait_for(
                    self.writer.drain(), timeout=self.fleet.config.write_timeout_s
                )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return False
        return True

    async def _backend(
        self, state: _ShardState
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        key = (state.name, state.generation)
        pooled = self.backends.get(key)
        if pooled is not None and not pooled[1].is_closing():
            return pooled
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                "127.0.0.1",
                state.handle.port,
                limit=self.fleet.config.serve.max_frame_bytes,
            ),
            timeout=self.fleet.config.backend_timeout_s,
        )
        self.backends[key] = (reader, writer)
        return reader, writer

    def _drop_backend(self, key: tuple[str, int]) -> None:
        pooled = self.backends.pop(key, None)
        if pooled is not None:
            pooled[1].close()

    async def close_backends(self) -> None:
        for key in list(self.backends):
            self._drop_backend(key)

    async def _exchange(
        self, state: _ShardState, frame: dict[str, Any]
    ) -> bytes:
        """One request/reply round trip with the shard, raw reply bytes.

        Raises:
            WorkerCrashedError: the backend connection broke mid-cycle.
        """
        key = (state.name, state.generation)
        try:
            reader, writer = await self._backend(state)
            writer.write(protocol.encode_frame(frame))
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.fleet.config.backend_timeout_s
            )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            self._drop_backend(key)
            raise WorkerCrashedError(
                f"shard {state.name} did not answer: {type(exc).__name__}"
            ) from None
        if not line:
            self._drop_backend(key)
            raise WorkerCrashedError(
                f"shard {state.name} closed the connection mid-request"
            )
        return line

    # -- the loop ------------------------------------------------------

    async def run(self) -> None:
        fleet = self.fleet
        while True:
            try:
                line = await self._read_client()
            except asyncio.TimeoutError:
                fleet.stats.relay_errors += 1
                await self._send_client(
                    protocol.error_frame(
                        ServeTimeoutError(
                            "no complete frame within the "
                            f"{fleet.config.client_idle_timeout_s}s idle deadline"
                        )
                    )
                )
                return
            except (asyncio.LimitOverrunError, ValueError):
                fleet.stats.relay_errors += 1
                await self._send_client(
                    protocol.error_frame(
                        ProtocolError("frame exceeds the size limit")
                    )
                )
                return
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if line.strip() == b"":
                continue
            try:
                frame = protocol.decode_frame(
                    line, fleet.config.serve.max_frame_bytes
                )
            except ProtocolError as exc:
                fleet.stats.relay_errors += 1
                if not await self._send_client(protocol.error_frame(exc)):
                    return
                continue
            fleet.stats.requests_relayed += 1
            if not await self._handle_frame(frame):
                return

    async def _handle_frame(self, frame: dict[str, Any]) -> bool:
        """Answer one client frame; ``False`` ends the connection."""
        fleet = self.fleet
        kind = frame.get("type")
        session_id = frame.get("session")
        seq = frame.get("seq")
        try:
            if kind == protocol.PING:
                return await self._send_client({"type": protocol.PONG})
            if kind == protocol.SERVER_STATS:
                for state in fleet._shards.values():
                    if state.handle.alive and not state.stopped:
                        stats = await fleet._fetch(state, "stats")
                        if stats is not None:
                            state.stats_cache = stats
                return await self._send_client(fleet._stats_reply())
            if kind == protocol.TELEMETRY_SNAPSHOT:
                return await self._send_client(await fleet._telemetry_reply())
            if kind == protocol.OPEN_SESSION:
                return await self._open_session(frame)
            if kind in (protocol.PUSH_BLOCKS, protocol.CLOSE_SESSION):
                return await self._relay_session_frame(frame)
            raise ProtocolError(f"unknown frame type {kind!r}")
        except ReproError as exc:
            fleet.stats.relay_errors += 1
            return await self._send_client(
                protocol.error_frame(exc, session=session_id, seq=seq)
            )
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the relay
            fleet.stats.relay_errors += 1
            return await self._send_client(
                protocol.error_frame(
                    ReproError(f"internal fleet error: {exc}"),
                    session=session_id,
                    seq=seq,
                )
            )

    async def _open_session(self, frame: dict[str, Any]) -> bool:
        fleet = self.fleet
        if fleet.draining:
            raise ServeOverloadError("fleet is shutting down")
        routing_key = frame.get("routing_key")
        if routing_key is not None and not isinstance(routing_key, str):
            raise ProtocolError("routing_key must be a string")
        if routing_key is None:
            routing_key = f"rk-{next(fleet._key_counter)}"
        state = fleet._route_key(routing_key)
        forward = dict(frame)
        forward.pop("routing_key", None)
        line = await self._exchange(state, forward)
        reply = protocol.decode_frame(line)
        if reply.get("type") != protocol.SESSION_OPENED:
            # Typed worker rejection (session limit, bad resume, ...):
            # relay the exact error frame.
            return await self._send_client_raw(line)
        backend_sid = str(reply.get("session"))
        fleet_sid = f"{state.name}:{backend_sid}"
        self.routes[fleet_sid] = _SessionRoute(
            shard=state.name,
            generation=state.generation,
            backend_sid=backend_sid,
            routing_key=routing_key,
        )
        fleet.stats.sessions_routed += 1
        if reply.get("resumed"):
            fleet.stats.sessions_resumed += 1
        reply["session"] = fleet_sid
        reply["routing_key"] = routing_key
        reply["shard"] = state.name
        return await self._send_client(reply)

    async def _relay_session_frame(self, frame: dict[str, Any]) -> bool:
        fleet = self.fleet
        session_id = protocol.require_field(frame, "session")
        seq = frame.get("seq")
        route = self.routes.get(session_id)
        if route is None:
            raise ProtocolError(
                f"no session {session_id!r} is open on this connection"
            )
        state = fleet._shards.get(route.shard)
        if state is None or state.generation != route.generation:
            # The owning incarnation is gone: this session is orphaned.
            self.routes.pop(session_id, None)
            fleet.stats.crash_notices += 1
            raise WorkerCrashedError(
                f"shard {route.shard} crashed; resume to migrate "
                f"session {session_id}"
            )
        if state.draining or state.stopped:
            self.routes.pop(session_id, None)
            fleet.stats.drain_notices += 1
            raise ShardDrainingError(
                f"shard {route.shard} is draining; resume to migrate "
                f"session {session_id}"
            )
        forward = dict(frame)
        forward["session"] = route.backend_sid
        try:
            line = await self._exchange(state, forward)
        except WorkerCrashedError:
            self.routes.pop(session_id, None)
            fleet.stats.crash_notices += 1
            raise
        if frame.get("type") == protocol.CLOSE_SESSION:
            self.routes.pop(session_id, None)
        # Replies carry the worker's own session id; translate it back
        # before relaying.  Packed arrays are opaque strings to this
        # round trip, so column payloads stay byte-identical.
        reply = protocol.decode_frame(line)
        if "session" in reply:
            reply["session"] = session_id
        return await self._send_client(reply)
