"""repro.fleet — sharded multi-worker serving.

A routing frontend (:mod:`repro.fleet.frontend`) speaks the exact
NDJSON wire protocol of :mod:`repro.serve` and proxies each session to
one of N forked worker processes (:mod:`repro.fleet.worker`), each a
complete single-process serving stack with its own scheduler, DSP
steering cache, and backend selection.  Session→shard assignment is a
consistent-hash ring (:mod:`repro.fleet.ring`) over a stable
``routing_key``, honored across :class:`~repro.serve.resilient.
ResilientServeClient` reconnect/resume; shard drain and worker crashes
surface as typed :class:`~repro.errors.FleetError` frames the
resilient client turns into checkpoint migrations; and per-shard
telemetry merges with the PR-3 exact snapshot semantics, so fleet
aggregates provably equal the sum of per-shard registries.
"""

from repro.fleet.frontend import (
    FleetConfig,
    FleetServer,
    FleetStats,
    merge_snapshots,
)
from repro.fleet.load import FleetLoadReport, FleetSessionOutcome, run_fleet_load
from repro.fleet.ring import HashRing, stable_hash
from repro.fleet.worker import WorkerHandle, WorkerSpec, start_worker

__all__ = [
    "FleetConfig",
    "FleetLoadReport",
    "FleetServer",
    "FleetSessionOutcome",
    "FleetStats",
    "HashRing",
    "WorkerHandle",
    "WorkerSpec",
    "merge_snapshots",
    "run_fleet_load",
    "stable_hash",
    "start_worker",
]
