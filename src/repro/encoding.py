"""The shared packed-float64 codec for bulk sample/spectrum arrays.

Two subsystems move large float arrays through JSON-shaped records and
need the transfer to be *bit-exact*: the serving wire protocol
(:mod:`repro.serve.protocol`) and the on-disk capture format
(:mod:`repro.capture.format`).  Both speak the same two encodings:

* **packed** (the default): base64 of the raw little-endian float64
  bytes.  Bit-exact by construction, ~40% smaller than decimal text,
  and three orders of magnitude cheaper to encode than per-float
  ``repr`` — the profiling result that made it the serve default.
* **plain lists** of JSON numbers, for debuggability (a frame or a
  manifest line stays readable with ``jq``).  Still bit-exact: Python
  serializes floats via ``repr``, the shortest decimal string that
  round-trips to the identical IEEE-754 double (non-finite values ride
  the stdlib JSON extension literals ``NaN``/``Infinity``).

Complex sample streams interleave as ``re, im`` pairs.  The raw-bytes
helpers (:func:`floats_to_bytes` / :func:`floats_from_bytes`) are the
layer the capture format checksums: CRC32 over exactly the bytes that
base64 wraps, so a flipped bit anywhere in a stored chunk is caught
before the samples reach a tracker.

Malformed payloads raise :class:`~repro.errors.ProtocolError` — the
taxonomy's "this encoded blob violates its format" error.  Consumers
with their own failure vocabulary (the capture reader) catch it and
re-raise with context.
"""

from __future__ import annotations

import base64
import binascii
from typing import Any

import numpy as np

from repro.errors import ProtocolError


def floats_to_bytes(values: np.ndarray) -> bytes:
    """Float64 array -> its raw little-endian bytes (bit-exact)."""
    return np.ascontiguousarray(values, dtype="<f8").tobytes()


def floats_from_bytes(raw: bytes) -> np.ndarray:
    """Inverse of :func:`floats_to_bytes`.

    Raises:
        ProtocolError: the byte run is not whole float64s.
    """
    if len(raw) % 8 != 0:
        raise ProtocolError("packed floats are not whole float64s")
    return np.frombuffer(raw, dtype="<f8").astype(float)


def pack_floats(values: np.ndarray) -> str:
    """Float64 array -> base64 of its little-endian bytes (bit-exact)."""
    return base64.b64encode(floats_to_bytes(values)).decode("ascii")


def unpack_floats(payload: str) -> np.ndarray:
    """Inverse of :func:`pack_floats`.

    Raises:
        ProtocolError: not valid base64, or not whole float64s.
    """
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError):
        raise ProtocolError("packed floats are not valid base64") from None
    return floats_from_bytes(raw)


def float_array_to_wire(values: np.ndarray, packed: bool) -> Any:
    """One float array as its wire/record value (packed or plain)."""
    return pack_floats(values) if packed else values.tolist()


def float_array_from_wire(payload: Any, what: str) -> np.ndarray:
    """Decode either encoding of a float array field.

    Raises:
        ProtocolError: the payload is neither a packed string nor a
            flat list of numbers (``what`` names the field).
    """
    if isinstance(payload, str):
        return unpack_floats(payload)
    if not isinstance(payload, list):
        raise ProtocolError(f"{what} must be a list of numbers or a packed string")
    try:
        values = np.asarray(payload, dtype=float)
    except (TypeError, ValueError):
        raise ProtocolError(f"{what} must contain only numbers") from None
    if values.ndim != 1:
        raise ProtocolError(f"{what} must be a flat list")
    return values


def interleave_complex(samples: np.ndarray) -> np.ndarray:
    """Complex samples -> interleaved ``re, im`` float64 pairs."""
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    interleaved = np.empty(2 * len(samples), dtype=float)
    interleaved[0::2] = samples.real
    interleaved[1::2] = samples.imag
    return interleaved


def deinterleave_complex(interleaved: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave_complex`.

    Raises:
        ProtocolError: the run has odd length.
    """
    if len(interleaved) % 2 != 0:
        raise ProtocolError("samples must interleave an even run of floats")
    # Assemble via the component views, not ``re + 1j * im``: the
    # multiply turns an infinite imaginary part into a NaN real part,
    # corrupting the non-finite samples fault injection relies on.
    samples = np.empty(len(interleaved) // 2, dtype=complex)
    samples.real = interleaved[0::2]
    samples.imag = interleaved[1::2]
    return samples


def samples_to_bytes(samples: np.ndarray) -> bytes:
    """Complex samples -> raw interleaved little-endian float64 bytes."""
    return floats_to_bytes(interleave_complex(samples))


def samples_from_bytes(raw: bytes) -> np.ndarray:
    """Inverse of :func:`samples_to_bytes`.

    Raises:
        ProtocolError: not whole float64s, or an odd run of them.
    """
    return deinterleave_complex(floats_from_bytes(raw))


def encode_samples(samples: np.ndarray, packed: bool = True) -> Any:
    """Complex samples -> interleaved ``re, im`` pairs, packed or plain."""
    return float_array_to_wire(interleave_complex(samples), packed)


def decode_samples(payload: Any) -> np.ndarray:
    """Interleaved re/im floats (either encoding) -> complex128 samples.

    Raises:
        ProtocolError: the payload is not an even-length run of floats.
    """
    return deinterleave_complex(float_array_from_wire(payload, "samples"))
