"""Parallel campaign execution across worker processes.

The paper's evaluation sweeps are embarrassingly parallel: every
(condition, trial) pair draws from its own deterministic seed stream
``SeedSequence([seed, condition_index, trial_index])``, so conditions
can run anywhere in any order and still reproduce the serial draws
exactly.  This module fans a :class:`repro.analysis.campaign.Campaign`
out over a ``ProcessPoolExecutor``, one condition per task, and
reassembles the results in sweep order — bit-identical values to
``Campaign.run()`` for the same seed (enforced by test), with
per-condition wall/CPU times measured in-worker so speedup is
readable straight off the result objects.

Trial functions must be picklable (module-level), the standard
constraint of process pools.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.campaign import Campaign, ConditionResult, run_condition
from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import MetricsRegistry


def _run_indexed_condition(args) -> tuple[int, ConditionResult]:
    """Worker entry point: run one condition, tagged with its index."""
    trial, condition, c_index, trials_per_condition, seed = args
    return c_index, run_condition(trial, condition, c_index, trials_per_condition, seed)


def merge_condition_metrics(results: dict[str, ConditionResult]) -> MetricsRegistry:
    """Fold per-condition metric snapshots into one registry.

    Each :class:`ConditionResult` carries the snapshot its (possibly
    remote) ``run_condition`` recorded; merging them in sweep order
    yields totals identical to a serial run's — counters and histogram
    buckets are sums of the same per-trial contributions in the same
    order, regardless of which process produced each snapshot.
    """
    registry = MetricsRegistry()
    for result in results.values():
        registry.merge(result.metrics)
    return registry


@dataclass
class ParallelCampaignReport:
    """A parallel run plus the timing needed to judge it.

    Attributes:
        results: per-condition results keyed by label, in sweep order
            (identical values to the serial path for the same seed).
        wall_time_s: end-to-end wall time of the parallel run.
        worker_count: processes used.
    """

    results: dict[str, ConditionResult]
    wall_time_s: float
    worker_count: int

    @property
    def total_condition_wall_s(self) -> float:
        """Sum of in-worker condition times — the serial-equivalent cost."""
        return sum(r.wall_time_s for r in self.results.values())

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time (>1 is a win)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_condition_wall_s / self.wall_time_s

    def merged_metrics(self) -> MetricsRegistry:
        """Every worker's metric snapshot folded into one registry."""
        return merge_condition_metrics(self.results)


def run_campaign_parallel(
    campaign: Campaign, max_workers: int | None = None
) -> ParallelCampaignReport:
    """Run every condition of ``campaign`` across worker processes.

    Results are keyed and ordered like ``Campaign.run()``'s, and the
    values are identical for a fixed seed regardless of worker count,
    scheduling, or completion order — the seed streams depend only on
    each condition's index in the sweep.
    """
    if max_workers is None:
        max_workers = min(len(campaign.conditions), os.cpu_count() or 1)
    if max_workers < 1:
        raise ValueError("need at least one worker")
    tasks = [
        (campaign.trial, condition, c_index, campaign.trials_per_condition, campaign.seed)
        for c_index, condition in enumerate(campaign.conditions)
    ]
    telemetry = get_telemetry()
    with telemetry.span(
        "campaign.parallel",
        conditions=len(campaign.conditions),
        workers=max_workers,
    ) as span:
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            indexed = dict(pool.map(_run_indexed_condition, tasks))
        wall = time.perf_counter() - start
        span.set("wall_s", round(wall, 6))
    results = {
        campaign.conditions[c_index].label: indexed[c_index]
        for c_index in range(len(campaign.conditions))
    }
    if telemetry.enabled:
        # Workers run with telemetry disabled (fresh interpreters); the
        # snapshots they shipped home land in the parent's registry so
        # a parallel campaign is as countable as a serial one.
        telemetry.metrics.merge(merge_condition_metrics(results).snapshot())
    return ParallelCampaignReport(
        results=results, wall_time_s=wall, worker_count=max_workers
    )
