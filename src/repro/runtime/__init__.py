"""repro.runtime — the online streaming sensing engine.

The offline pipeline answers "what happened in this 25 s trace"; this
package answers it *while the trace is still arriving*: bounded sample
buffering with overflow accounting (:mod:`~repro.runtime.ring`),
incremental sliding-window spectrogram estimation that matches the
batch pipeline bit for bit (:mod:`~repro.runtime.tracker`), a stage
graph with per-stage latency/throughput metrics and mid-stream health
visibility (:mod:`~repro.runtime.pipeline`), and a parallel campaign
executor with seed-stable, order-independent results
(:mod:`~repro.runtime.parallel`).

The CLI front end is ``python -m repro stream``.
"""

from repro.telemetry.metrics import RuntimeMetrics, StageMetrics, StageTimer
from repro.runtime.parallel import (
    ParallelCampaignReport,
    merge_condition_metrics,
    run_campaign_parallel,
)
from repro.runtime.pipeline import (
    BlockHealth,
    ColumnEvent,
    ConditionStage,
    DetectStage,
    DetectionEvent,
    DetectorConfig,
    GapEvent,
    HealthEvent,
    StreamingPipeline,
    StreamResult,
    screen_block,
)
from repro.runtime.ring import BlockSource, SampleBlock, SampleRingBuffer
from repro.runtime.tracker import (
    PendingWindow,
    SpectrogramColumn,
    StreamingTracker,
    TrackerCheckpoint,
)

__all__ = [
    "BlockHealth",
    "BlockSource",
    "ColumnEvent",
    "ConditionStage",
    "DetectStage",
    "DetectionEvent",
    "DetectorConfig",
    "GapEvent",
    "HealthEvent",
    "ParallelCampaignReport",
    "PendingWindow",
    "RuntimeMetrics",
    "SampleBlock",
    "SampleRingBuffer",
    "SpectrogramColumn",
    "StageMetrics",
    "StageTimer",
    "StreamResult",
    "StreamingPipeline",
    "StreamingTracker",
    "TrackerCheckpoint",
    "merge_condition_metrics",
    "run_campaign_parallel",
    "screen_block",
]
