"""Incremental sliding-window spectrogram estimation.

The offline pipeline (:func:`repro.core.tracking.compute_spectrogram`)
recomputes every window of the full trace at once.  The streaming
tracker holds only ``window_size`` samples of state and emits each
A'[theta, n] column the moment its window fills — bounded memory,
bounded latency, same math: both paths call
:func:`repro.core.tracking.compute_spectrogram_frame` on identical
window contents, so the online columns match the offline spectrogram
bit for bit on the shared window range (the golden-equivalence test
enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tracking import (
    MotionSpectrogram,
    SpectrogramFrame,
    TrackingConfig,
    compute_beamformed_frame,
    compute_spectrogram_frame,
)
from repro.dsp.backend import active_backend_name
from repro.telemetry.metrics import StageMetrics, StageTimer
from repro.runtime.ring import SampleRingBuffer


@dataclass(frozen=True)
class PendingWindow:
    """A filled window awaiting its spectrum estimate.

    The unit the serving scheduler batches: :meth:`StreamingTracker.
    poll_ready_windows` drains these (consuming ``hop`` samples each),
    an estimator turns each one's ``samples`` into a
    :class:`~repro.core.tracking.SpectrogramFrame`, and
    :meth:`StreamingTracker.resolve` stamps the result back into the
    :class:`SpectrogramColumn` the window was destined to become.

    Attributes:
        index: window number (0-based, hop-spaced).
        start_sample: index of the window's first sample in the stream.
        time_s: centre time of the window.
        samples: the ``window_size`` samples of the filled window.
    """

    index: int
    start_sample: int
    time_s: float
    samples: np.ndarray


@dataclass(frozen=True)
class TrackerCheckpoint:
    """The complete ingest state of a :class:`StreamingTracker`.

    Everything the resume path needs to rebuild a tracker that will
    emit *exactly* the columns the original would have: the samples
    still buffered (window carry), where the next window starts, and
    the column/sample counters.  Deliberately excludes metrics — a
    resumed tracker's observability restarts, its math does not.

    Attributes:
        buffered: the ring's current contents, oldest first.
        next_start: stream index of the next window's first sample.
        column_index: index the next emitted column will carry.
        samples_seen: total samples ever ingested.
        start_time_s: the tracker's time origin.
        use_music: which estimator family the tracker runs.
    """

    buffered: np.ndarray
    next_start: int
    column_index: int
    samples_seen: int
    start_time_s: float
    use_music: bool


@dataclass(frozen=True)
class SpectrogramColumn:
    """One online column of the A'[theta, n] image.

    Attributes:
        index: window number (0-based, hop-spaced).
        start_sample: index of the window's first sample in the stream.
        time_s: centre time of the window (matches
            ``MotionSpectrogram.times_s``).
        power: pseudospectrum magnitudes over the angle grid.
        num_sources: signal-subspace size (0 for beamformed frames).
        estimator: which estimator produced the column ("music" or
            "beamforming", including the degeneracy fallback).
    """

    index: int
    start_sample: int
    time_s: float
    power: np.ndarray
    num_sources: int
    estimator: str


class StreamingTracker:
    """Turns an incoming sample stream into spectrogram columns.

    Feed sample blocks with :meth:`push`; each call returns the columns
    whose windows completed.  Internally a ring buffer holds the
    current window: ``window_size`` samples are peeked per column and
    only ``hop`` are consumed, exactly reproducing the offline
    overlapping-window walk.

    The streaming DC treatment matches the offline estimators: the
    MUSIC path carries the DC line at theta = 0 naturally, and the
    ``use_music=False`` beamforming path removes each window's mean
    (the gesture decoder's configuration).
    """

    def __init__(
        self,
        config: TrackingConfig | None = None,
        start_time_s: float = 0.0,
        use_music: bool = True,
        ring_capacity: int | None = None,
    ):
        self.config = config if config is not None else TrackingConfig()
        self.start_time_s = start_time_s
        self.use_music = use_music
        window = self.config.window_size
        capacity = (
            ring_capacity if ring_capacity is not None else 4 * window
        )
        if capacity < window:
            raise ValueError("ring capacity must hold one full window")
        self.ring = SampleRingBuffer(capacity)
        self.metrics = StageMetrics(name="track")
        self._next_start = 0
        self._column_index = 0
        self._samples_seen = 0

    @property
    def columns_emitted(self) -> int:
        return self._column_index

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    @property
    def dsp_backend(self) -> str:
        """Name of the DSP backend this tracker's estimates run on.

        Resolved per call from the process-wide selection
        (:func:`repro.dsp.backend.active_backend`), because the tracker
        delegates every estimate to the active backend at estimate
        time — sessions surface this in their snapshots so an operator
        can tell budgeted columns from bit-exact ones.
        """
        return active_backend_name()

    def _estimate(self, window: np.ndarray) -> SpectrogramFrame:
        if self.use_music:
            return compute_spectrogram_frame(window, self.config)
        return compute_beamformed_frame(window, self.config)

    def _validate(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        if len(self.ring) + len(samples) > self.ring.capacity:
            raise ValueError(
                f"block of {len(samples)} samples cannot fit the tracker ring "
                f"(capacity {self.ring.capacity}, {len(self.ring)} buffered); "
                "use smaller blocks or a larger ring_capacity"
            )
        return samples

    def expected_windows(self, incoming: int) -> int:
        """Windows that would complete if ``incoming`` samples arrived.

        The serving scheduler's admission check: the cost of a push is
        known *before* any sample is buffered, so an overloaded server
        can shed the request while the tracker state is still intact.
        """
        if incoming < 0:
            raise ValueError("incoming sample count cannot be negative")
        buffered = len(self.ring) + incoming
        if buffered < self.config.window_size:
            return 0
        return (buffered - self.config.window_size) // self.config.hop + 1

    def ingest(self, samples: np.ndarray) -> int:
        """Buffer a sample block without estimating anything.

        The first half of :meth:`push`, split out for consumers that
        batch estimation elsewhere (the serving scheduler): validate,
        append to the ring, account the samples.  Returns the number
        of windows now ready for :meth:`poll_ready_windows`.
        """
        samples = self._validate(samples)
        self._samples_seen += len(samples)
        self.ring.push(samples)
        return self.expected_windows(0)

    def poll_ready_windows(self) -> list[PendingWindow]:
        """Drain every completed window, consuming ``hop`` per window.

        The scheduler hook: each returned :class:`PendingWindow` owns a
        copy of its window samples (the ring advances underneath), and
        the tracker's column/sample counters advance as if the windows
        had been estimated inline — :meth:`resolve` later completes
        them in any order without touching tracker state.
        """
        config = self.config
        pending: list[PendingWindow] = []
        while len(self.ring) >= config.window_size:
            window = self.ring.peek(config.window_size)
            time_s = (
                self.start_time_s
                + (self._next_start + config.window_size / 2.0)
                * config.sample_period_s
            )
            pending.append(
                PendingWindow(
                    index=self._column_index,
                    start_sample=self._next_start,
                    time_s=time_s,
                    samples=window,
                )
            )
            self.ring.consume(config.hop)
            self._next_start += config.hop
            self._column_index += 1
        return pending

    @staticmethod
    def resolve(
        pending: PendingWindow, frame: SpectrogramFrame
    ) -> SpectrogramColumn:
        """Stamp an estimated frame into the column its window awaited."""
        return SpectrogramColumn(
            index=pending.index,
            start_sample=pending.start_sample,
            time_s=pending.time_s,
            power=frame.power,
            num_sources=frame.num_sources,
            estimator=frame.estimator,
        )

    def push(self, samples: np.ndarray) -> list[SpectrogramColumn]:
        """Accept a sample block; return the columns it completed.

        The tracker consumes eagerly, so its ring never overflows as
        long as each pushed block fits alongside one window of carry
        (capacity >= window_size - hop + len(samples)); a larger block
        raises rather than silently dropping window-aligned samples.

        Composed entirely of the scheduler hooks — :meth:`ingest`,
        :meth:`poll_ready_windows`, :meth:`resolve` — with the
        estimator run inline, so the served path and this one walk
        identical window contents.
        """
        samples = self._validate(samples)
        columns: list[SpectrogramColumn] = []
        with StageTimer(self.metrics, items_in=len(samples)) as timer:
            self._samples_seen += len(samples)
            self.ring.push(samples)
            for pending in self.poll_ready_windows():
                columns.append(self.resolve(pending, self._estimate(pending.samples)))
            timer.items_out = len(columns)
        return columns

    def checkpoint(self) -> TrackerCheckpoint:
        """Snapshot the ingest state for deterministic resume.

        The checkpoint is a pure function of the samples ingested so
        far (metrics aside), so a tracker restored from it emits
        columns ``np.array_equal`` to the ones this tracker would have
        emitted — the serving layer's resume-equivalence contract.
        Take it *between* pushes: windows already drained by
        :meth:`poll_ready_windows` are the caller's to finish.
        """
        return TrackerCheckpoint(
            buffered=self.ring.peek(len(self.ring)),
            next_start=self._next_start,
            column_index=self._column_index,
            samples_seen=self._samples_seen,
            start_time_s=self.start_time_s,
            use_music=self.use_music,
        )

    def restore(self, checkpoint: TrackerCheckpoint) -> None:
        """Load a checkpoint into this (freshly constructed) tracker.

        Raises:
            ValueError: the tracker already ingested samples, the
                buffered carry cannot fit its ring, or the checkpoint's
                counters are inconsistent.
        """
        if self._samples_seen or len(self.ring):
            raise ValueError("restore requires a fresh tracker")
        buffered = np.asarray(checkpoint.buffered, dtype=complex)
        if buffered.ndim != 1:
            raise ValueError("checkpoint buffer must be one-dimensional")
        if len(buffered) > self.ring.capacity:
            raise ValueError(
                f"checkpoint carries {len(buffered)} buffered samples; "
                f"ring capacity is {self.ring.capacity}"
            )
        for name in ("next_start", "column_index", "samples_seen"):
            if getattr(checkpoint, name) < 0:
                raise ValueError(f"checkpoint {name} cannot be negative")
        if checkpoint.next_start + len(buffered) > checkpoint.samples_seen:
            raise ValueError(
                "checkpoint counters are inconsistent: buffered carry "
                "extends past samples_seen"
            )
        if checkpoint.use_music != self.use_music:
            raise ValueError("checkpoint estimator family does not match")
        self.start_time_s = checkpoint.start_time_s
        self.ring.push(buffered)
        self._next_start = checkpoint.next_start
        self._column_index = checkpoint.column_index
        self._samples_seen = checkpoint.samples_seen

    def reset(self, next_start: int | None = None) -> None:
        """Drop buffered state after a stream gap (phase continuity is
        lost across dropped samples; windows must restart cleanly).

        ``next_start`` re-anchors the sample index of the next window;
        by default indexing continues from the samples already seen.
        """
        self.ring.consume(len(self.ring))
        self._next_start = next_start if next_start is not None else self._samples_seen

    @staticmethod
    def assemble(
        columns: list[SpectrogramColumn], config: TrackingConfig
    ) -> MotionSpectrogram:
        """Stack emitted columns into an offline-shaped spectrogram.

        The result is interchangeable with the batch pipeline's output
        — identical field-for-field when the columns cover the same
        windows (the golden-equivalence contract).
        """
        if not columns:
            raise ValueError("no columns to assemble")
        return MotionSpectrogram(
            times_s=np.array([c.time_s for c in columns]),
            theta_grid_deg=config.theta_grid_deg,
            power=np.stack([c.power for c in columns]),
            source_counts=np.array([c.num_sources for c in columns], dtype=int),
            window_overlap=max(config.window_size // config.hop, 1),
            estimators=np.array([c.estimator for c in columns], dtype=object),
        )
