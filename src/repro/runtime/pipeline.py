"""The streaming stage graph: source -> condition -> track -> detect -> sink.

This is the online counterpart of ``WiViDevice.image``: instead of
"capture 25 s, then process", sample blocks flow through a short chain
of stages and spectrogram columns, detections, and health events come
out the other end with bounded latency.  Each stage charges its work to
:class:`repro.telemetry.metrics.RuntimeMetrics`, and the condition stage
drives the PR-1 health machine
(:class:`repro.core.monitoring.HealthStateMachine`) block by block, so
an injected fault becomes a visible HEALTHY -> DEGRADED transition
*while the stream runs* rather than a post-mortem.

Events are delivered two ways: :meth:`StreamingPipeline.process` is a
generator yielding them as they happen (the CLI's live display), and
:meth:`StreamingPipeline.run` drains the stream into a
:class:`StreamResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.monitoring import DeviceHealth, HealthStateMachine, RecoveryPolicy
from repro.core.tracking import MotionSpectrogram
from repro.telemetry.metrics import RuntimeMetrics, StageTimer
from repro.runtime.ring import BlockSource, SampleBlock
from repro.runtime.tracker import SpectrogramColumn, StreamingTracker
from repro.telemetry.context import get_telemetry

# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnEvent:
    """A spectrogram column completed."""

    column: SpectrogramColumn


@dataclass(frozen=True)
class DetectionEvent:
    """A moving target outshone the DC stripe in one column."""

    column_index: int
    time_s: float
    angle_deg: float
    strength_db: float


@dataclass(frozen=True)
class HealthEvent:
    """The health machine changed state mid-stream."""

    block_index: int
    state: DeviceHealth
    reason: str


@dataclass(frozen=True)
class GapEvent:
    """The source ring dropped samples: signal time vanished.

    The tracker is reset when a gap lands — phase continuity does not
    survive missing samples, so windows restart cleanly after the gap.
    """

    block_index: int
    dropped_samples: int


StreamEvent = ColumnEvent | DetectionEvent | HealthEvent | GapEvent


# ----------------------------------------------------------------------
# Condition stage
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BlockHealth:
    """Screening verdict for one sample block (cf. ``CaptureHealth``)."""

    nan_fraction: float
    zero_fraction: float
    saturation_fraction: float

    @property
    def damaged_fraction(self) -> float:
        return self.nan_fraction + self.zero_fraction


def screen_block(samples: np.ndarray) -> BlockHealth:
    """Block-level NaN / dead-air / rail-plateau screening.

    The streaming sibling of
    :func:`repro.core.monitoring.screen_series`, operating on a raw
    sample block: saturation is the fraction of samples whose I or Q
    rail sits within 0.1% of the block's maximum excursion — *beyond*
    the peak sample itself, which trivially sits on its own rail.
    (Blocks are far shorter than captures, so the O(1/n) floor that
    ``screen_series`` tolerates would trip the policy threshold on a
    clean 16-sample tail block.)
    """
    samples = np.asarray(samples)
    if len(samples) == 0:
        raise ValueError("cannot screen an empty block")
    finite = np.isfinite(samples)
    nan_fraction = float(np.mean(~finite))
    zero_fraction = float(np.mean(samples[finite] == 0.0)) if finite.any() else 0.0
    saturation_fraction = 0.0
    if finite.any():
        rails = np.maximum(np.abs(samples[finite].real), np.abs(samples[finite].imag))
        peak = float(rails.max())
        if peak > 0.0:
            at_rail = int(np.count_nonzero(rails >= 0.999 * peak))
            saturation_fraction = (at_rail - 1) / len(samples)
    return BlockHealth(
        nan_fraction=nan_fraction,
        zero_fraction=zero_fraction,
        saturation_fraction=saturation_fraction,
    )


class ConditionStage:
    """Screens each block and drives the health machine.

    A block whose damage or saturation exceeds the policy thresholds is
    a *bad* block: the machine degrades (with the PR-1 hysteresis), and
    the state transition surfaces as a :class:`HealthEvent`.  Repair is
    optional and off by default — the golden-equivalence contract wants
    the tracker to see exactly what the radio delivered, and the MUSIC
    degeneracy guard already handles corrupt windows frame by frame.
    """

    def __init__(
        self,
        policy: RecoveryPolicy | None = None,
        machine: HealthStateMachine | None = None,
        repair: bool = False,
    ):
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.machine = (
            machine if machine is not None else HealthStateMachine(self.policy)
        )
        self.repair = repair
        self.bad_block_count = 0
        self.repaired_sample_count = 0

    def _repair_block(self, samples: np.ndarray) -> tuple[np.ndarray, int]:
        """Rail-wise linear interpolation over non-finite samples."""
        bad = ~np.isfinite(samples)
        count = int(np.count_nonzero(bad))
        if count == 0:
            return samples, 0
        good = np.flatnonzero(~bad)
        if len(good) < 2:
            return np.where(bad, 0.0, samples), count
        bad_indices = np.flatnonzero(bad)
        samples = np.array(samples, dtype=complex)
        samples[bad_indices] = np.interp(
            bad_indices, good, samples[good].real
        ) + 1j * np.interp(bad_indices, good, samples[good].imag)
        return samples, count

    def process(self, block: SampleBlock) -> tuple[SampleBlock, list[HealthEvent]]:
        """Screen (and optionally repair) one block; report transitions."""
        health = screen_block(block.samples)
        transitions_before = len(self.machine.transitions)
        if (
            health.damaged_fraction > self.policy.max_repairable_fraction
            or health.saturation_fraction > self.policy.max_saturation_fraction
        ):
            self.bad_block_count += 1
            self.machine.record_bad(
                f"bad block (nan={health.nan_fraction:.3f}, "
                f"zero={health.zero_fraction:.3f}, "
                f"sat={health.saturation_fraction:.3f})"
            )
        elif health.damaged_fraction > 0:
            self.bad_block_count += 1
            self.machine.record_bad(
                f"damaged block (nan={health.nan_fraction:.3f}, "
                f"zero={health.zero_fraction:.3f})"
            )
        else:
            self.machine.record_good()
        if self.repair:
            repaired_samples, count = self._repair_block(block.samples)
            if count:
                self.repaired_sample_count += count
                block = SampleBlock(
                    samples=repaired_samples, start_index=block.start_index
                )
        events = [
            HealthEvent(
                block_index=block.start_index,
                state=transition.target,
                reason=transition.reason,
            )
            for transition in self.machine.transitions[transitions_before:]
        ]
        return block, events


# ----------------------------------------------------------------------
# Detect stage
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DetectorConfig:
    """Per-column motion detection over the normalized dB column.

    A detection fires when the strongest off-DC peak stands more than
    ``threshold_db`` above the DC stripe (cf.
    :func:`repro.core.detection.peak_to_dc_ratio_db`, per column).
    """

    dc_guard_deg: float = 10.0
    threshold_db: float = 0.0

    def __post_init__(self) -> None:
        if self.dc_guard_deg < 0:
            raise ValueError("DC guard must be non-negative")


class DetectStage:
    """Flags columns whose off-DC peak outshines the DC stripe."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        theta_grid_deg: np.ndarray | None = None,
    ):
        self.config = config if config is not None else DetectorConfig()
        self._off_dc: np.ndarray | None = None
        if theta_grid_deg is not None:
            self._bind_grid(np.asarray(theta_grid_deg))

    def _bind_grid(self, theta_grid_deg: np.ndarray) -> None:
        self.theta_grid_deg = theta_grid_deg
        self._off_dc = np.abs(theta_grid_deg) >= self.config.dc_guard_deg
        if not np.any(self._off_dc) or np.all(self._off_dc):
            raise ValueError("DC guard leaves an empty region")

    def process(
        self, column: SpectrogramColumn, theta_grid_deg: np.ndarray
    ) -> DetectionEvent | None:
        if self._off_dc is None:
            self._bind_grid(theta_grid_deg)
        db = 20.0 * np.log10(np.maximum(column.power, np.finfo(float).tiny))
        off = self._off_dc
        peak_off = float(db[off].max())
        peak_dc = float(db[~off].max())
        strength = peak_off - peak_dc
        if strength <= self.config.threshold_db:
            return None
        masked = np.where(off, db, -np.inf)
        angle = float(self.theta_grid_deg[int(np.argmax(masked))])
        return DetectionEvent(
            column_index=column.index,
            time_s=column.time_s,
            angle_deg=angle,
            strength_db=strength,
        )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


@dataclass
class StreamResult:
    """Everything a drained stream produced."""

    columns: list[SpectrogramColumn] = field(default_factory=list)
    detections: list[DetectionEvent] = field(default_factory=list)
    health_events: list[HealthEvent] = field(default_factory=list)
    gaps: list[GapEvent] = field(default_factory=list)
    metrics: RuntimeMetrics = field(default_factory=RuntimeMetrics)

    def spectrogram(self, tracker: StreamingTracker) -> MotionSpectrogram:
        """The offline-shaped image assembled from the emitted columns."""
        return StreamingTracker.assemble(self.columns, tracker.config)


class StreamingPipeline:
    """Wires source -> condition -> track -> detect -> sink.

    Args:
        source: the block source (over an ``RxStreamer`` or iterator).
        tracker: the incremental spectrogram stage.
        condition: block screening + health machine (optional; built
            with defaults when omitted).
        detector: per-column motion detection (None disables it).
        sink: callback invoked with every event, in stream order (the
            CLI's live printer; metrics charge its time to "sink").
    """

    def __init__(
        self,
        source: BlockSource,
        tracker: StreamingTracker,
        condition: ConditionStage | None = None,
        detector: DetectStage | None = None,
        sink=None,
    ):
        self.source = source
        self.tracker = tracker
        self.condition = condition if condition is not None else ConditionStage()
        self.detector = detector
        self.sink = sink
        self.metrics = RuntimeMetrics()
        # Share the tracker's own metrics object under its stage name.
        self.metrics.stages["track"] = tracker.metrics
        self._dropped_seen = 0

    @property
    def health(self) -> DeviceHealth:
        """The machine's current state (visible mid-stream)."""
        return self.condition.machine.state

    def _deliver(self, event: StreamEvent) -> StreamEvent:
        telemetry = get_telemetry()
        if telemetry.enabled:
            if isinstance(event, DetectionEvent):
                telemetry.metrics.counter("stream.detections").inc()
                telemetry.events.emit(
                    "stream.detection",
                    column_index=event.column_index,
                    time_s=event.time_s,
                    angle_deg=event.angle_deg,
                    strength_db=event.strength_db,
                )
            elif isinstance(event, GapEvent):
                telemetry.metrics.counter("stream.gap_samples").inc(
                    event.dropped_samples
                )
                telemetry.events.emit(
                    "stream.gap",
                    block_index=event.block_index,
                    dropped_samples=event.dropped_samples,
                )
        if self.sink is not None:
            with StageTimer(self.metrics.stage("sink"), items_in=1):
                self.sink(event)
        return event

    def _check_gap(self, block_index: int) -> GapEvent | None:
        dropped = self.source.ring.dropped_sample_count
        if dropped == self._dropped_seen:
            return None
        gap = GapEvent(
            block_index=block_index, dropped_samples=dropped - self._dropped_seen
        )
        self._dropped_seen = dropped
        self.tracker.reset()
        return gap

    def process(self):
        """Generator over stream events, in order, until source end.

        With an open ``RxStreamer`` upstream, the generator simply
        stops when the streamer runs dry; re-invoking it after more
        pushes continues the stream (state lives in the stages, not in
        the generator).
        """
        while True:
            with StageTimer(self.metrics.stage("source")) as source_timer:
                blocks = self.source.poll()
                source_timer.items_out = sum(len(b) for b in blocks)
            if not blocks:
                return
            for block in blocks:
                gap = self._check_gap(block.start_index)
                if gap is not None:
                    yield self._deliver(gap)
                with StageTimer(
                    self.metrics.stage("condition"), items_in=len(block)
                ) as timer:
                    block, health_events = self.condition.process(block)
                    timer.items_out = len(block)
                for event in health_events:
                    yield self._deliver(event)
                columns = self.tracker.push(block.samples)
                for column in columns:
                    yield self._deliver(ColumnEvent(column))
                    if self.detector is not None:
                        with StageTimer(
                            self.metrics.stage("detect"), items_in=1
                        ) as timer:
                            detection = self.detector.process(
                                column, self.tracker.config.theta_grid_deg
                            )
                            timer.items_out = 0 if detection is None else 1
                        if detection is not None:
                            yield self._deliver(detection)

    def run(self) -> StreamResult:
        """Drain the stream and collect everything it produced."""
        result = StreamResult(metrics=self.metrics)
        for event in self.process():
            if isinstance(event, ColumnEvent):
                result.columns.append(event.column)
            elif isinstance(event, DetectionEvent):
                result.detections.append(event)
            elif isinstance(event, HealthEvent):
                result.health_events.append(event)
            elif isinstance(event, GapEvent):
                result.gaps.append(event)
        return result
