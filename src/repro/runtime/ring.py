"""Bounded sample buffering between the radio and the DSP stages.

The online engine cannot hold a whole 25 s trace: it owns a fixed
budget of samples (:class:`SampleRingBuffer`) and a policy for what
happens when the producer outruns the consumer — drop the oldest
samples and *account* for them, the software twin of the UHD 'O'
overflow that forced the prototype down to 5 MHz (§7.1).

:class:`BlockSource` adapts any producer — an
:class:`repro.hardware.streaming.RxStreamer` or a plain iterator of
sample chunks — into the fixed-size blocks the pipeline stages consume,
with the ring buffer in between carrying the backpressure accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.hardware.streaming import RxStreamer


class SampleRingBuffer:
    """A fixed-capacity ring of complex channel samples.

    Writes past capacity evict the oldest samples ("drop oldest", the
    policy of a real DMA ring) and charge them to
    ``dropped_sample_count`` — the quantity a consumer needs to know
    how much signal time vanished.  Reads are split into ``peek``
    (copy out the oldest ``n`` without consuming) and ``consume``
    (advance the read pointer), because a sliding-window consumer
    re-reads most of each window: peek ``window``, consume ``hop``.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring capacity must be positive")
        self._buffer = np.empty(capacity, dtype=complex)
        self._start = 0
        self._size = 0
        #: Samples ever accepted (including later-dropped ones).
        self.total_pushed = 0
        #: Samples ever handed out by :meth:`consume`.
        self.total_consumed = 0
        #: Samples evicted by overflow.
        self.dropped_sample_count = 0
        #: Push calls that had to evict at least one sample.
        self.overflow_count = 0

    @property
    def capacity(self) -> int:
        return len(self._buffer)

    @property
    def free_space(self) -> int:
        return self.capacity - self._size

    def __len__(self) -> int:
        return self._size

    def push(self, samples: np.ndarray) -> int:
        """Append samples, evicting the oldest on overflow.

        Returns the number of samples dropped (0 in the healthy case).
        A chunk larger than the whole ring keeps only its newest
        ``capacity`` samples; the rest count as dropped on arrival.
        """
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        incoming = len(samples)
        if incoming == 0:
            return 0
        self.total_pushed += incoming

        dropped = 0
        if incoming > self.capacity:
            dropped = incoming - self.capacity
            samples = samples[dropped:]
            incoming = self.capacity
        overflow = max(incoming - self.free_space, 0)
        dropped += overflow
        if dropped:
            # Account the loss *before* evicting or overwriting anything:
            # a reader that observes the ring mid-push must never see
            # samples vanish while the drop counter still reads low.
            self.overflow_count += 1
            self.dropped_sample_count += dropped
        if overflow:
            self._start = (self._start + overflow) % self.capacity
            self._size -= overflow

        write = (self._start + self._size) % self.capacity
        first = min(incoming, self.capacity - write)
        self._buffer[write : write + first] = samples[:first]
        if first < incoming:
            self._buffer[: incoming - first] = samples[first:]
        self._size += incoming
        return dropped

    def peek(self, n: int) -> np.ndarray:
        """Copy out the oldest ``n`` samples without consuming them.

        The copy is contiguous even when the region wraps around the
        end of the backing store.
        """
        if n < 0:
            raise ValueError("cannot peek a negative count")
        if n > self._size:
            raise ValueError(f"peek of {n} samples exceeds the {self._size} buffered")
        first = min(n, self.capacity - self._start)
        out = np.empty(n, dtype=complex)
        out[:first] = self._buffer[self._start : self._start + first]
        if first < n:
            out[first:] = self._buffer[: n - first]
        return out

    def consume(self, n: int) -> None:
        """Discard the oldest ``n`` samples (after a peek processed them)."""
        if n < 0:
            raise ValueError("cannot consume a negative count")
        if n > self._size:
            raise ValueError(
                f"consume of {n} samples exceeds the {self._size} buffered"
            )
        self._start = (self._start + n) % self.capacity
        self._size -= n
        self.total_consumed += n

    def read(self, n: int) -> np.ndarray:
        """Peek and consume in one step."""
        out = self.peek(n)
        self.consume(n)
        return out


@dataclass(frozen=True)
class SampleBlock:
    """One fixed-size chunk of the delivered sample stream.

    ``start_index`` counts *delivered* samples from stream start; when
    the ring dropped samples upstream, the indices simply continue (the
    gap is visible in the source's drop accounting, not in the index).
    """

    samples: np.ndarray
    start_index: int

    def __len__(self) -> int:
        return len(self.samples)


class BlockSource:
    """Re-blocks an upstream sample producer through a bounded ring.

    Upstream is either an :class:`RxStreamer` (pull ``recv`` until the
    stream is exhausted) or any iterable of 1-D sample arrays.  Each
    :meth:`poll` drains what the upstream currently offers into the
    ring and cuts as many full ``block_size`` blocks as possible; after
    the upstream ends, the final partial block (if any) is flushed so
    no tail samples are lost.

    Overflow policy: the ring drops oldest; drops are visible via
    ``ring.dropped_sample_count`` and surface as a gap in signal time
    without perturbing block indices.
    """

    def __init__(
        self,
        upstream: RxStreamer | Iterable[np.ndarray],
        block_size: int,
        ring_capacity: int | None = None,
    ):
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.block_size = block_size
        capacity = ring_capacity if ring_capacity is not None else 8 * block_size
        if capacity < block_size:
            raise ValueError("ring capacity must hold at least one block")
        self.ring = SampleRingBuffer(capacity)
        self._streamer: RxStreamer | None = None
        self._iterator: Iterator[np.ndarray] | None = None
        if isinstance(upstream, RxStreamer):
            self._streamer = upstream
        else:
            self._iterator = iter(upstream)
        self._upstream_done = False
        self._next_index = 0
        #: Blocks emitted so far.
        self.emitted_block_count = 0

    @property
    def exhausted(self) -> bool:
        """Upstream ended and every buffered sample has been emitted."""
        return self._upstream_done and len(self.ring) == 0

    def _pull_once(self) -> bool:
        """Fetch one upstream chunk into the ring; False when none came."""
        if self._upstream_done:
            return False
        if self._streamer is not None:
            buffer = self._streamer.recv()
            if buffer is None:
                if self._streamer.exhausted:
                    self._upstream_done = True
                return False
            self.ring.push(buffer.samples)
            return True
        try:
            chunk = next(self._iterator)
        except StopIteration:
            self._upstream_done = True
            return False
        self.ring.push(np.asarray(chunk, dtype=complex))
        return True

    def _cut_blocks(self, include_partial: bool) -> list[SampleBlock]:
        blocks: list[SampleBlock] = []
        while len(self.ring) >= self.block_size:
            blocks.append(self._emit(self.ring.read(self.block_size)))
        if include_partial and len(self.ring) > 0:
            blocks.append(self._emit(self.ring.read(len(self.ring))))
        return blocks

    def _emit(self, samples: np.ndarray) -> SampleBlock:
        block = SampleBlock(samples=samples, start_index=self._next_index)
        self._next_index += len(samples)
        self.emitted_block_count += 1
        return block

    def poll(self) -> list[SampleBlock]:
        """Emit every block currently formable.

        Pulls upstream chunks until a block can be cut or the upstream
        has nothing more to offer right now, then cuts all full blocks.
        Once the upstream is exhausted the buffered tail is flushed as
        one final partial block.
        """
        while len(self.ring) < self.block_size:
            if not self._pull_once():
                break
        return self._cut_blocks(include_partial=self._upstream_done)

    def drain(self) -> Iterator[SampleBlock]:
        """Iterate blocks until the upstream is exhausted.

        With an open :class:`RxStreamer` upstream this stops as soon as
        the streamer runs empty (a pull-driven source cannot block);
        close the streamer to mark true end of stream.
        """
        while True:
            blocks = self.poll()
            if not blocks:
                return
            yield from blocks
