"""Per-stage latency and throughput accounting for the runtime.

Every stage of the streaming pipeline (source, condition, track,
detect, sink) charges its work to a :class:`StageMetrics`, so a run can
answer the operational questions an online sensor raises: where does
the time go, which stage is the bottleneck, and how many columns per
second does the engine sustain — the number that decides whether the
device keeps up with the 312.5 Hz channel-sample rate or falls behind
and overflows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class StageMetrics:
    """Work accounting for one pipeline stage.

    Attributes:
        name: stage label ("source", "track", ...).
        invocations: how many times the stage ran.
        items_in: units consumed (samples for the source/condition
            stages, columns for detect/sink).
        items_out: units produced.
        busy_s: total wall time spent inside the stage.
    """

    name: str
    invocations: int = 0
    items_in: int = 0
    items_out: int = 0
    busy_s: float = 0.0

    def charge(self, elapsed_s: float, items_in: int = 0, items_out: int = 0) -> None:
        """Record one invocation of the stage."""
        if elapsed_s < 0:
            raise ValueError("elapsed time cannot be negative")
        self.invocations += 1
        self.items_in += items_in
        self.items_out += items_out
        self.busy_s += elapsed_s

    @property
    def mean_latency_s(self) -> float:
        """Mean wall time per invocation (0 before the first one)."""
        if self.invocations == 0:
            return 0.0
        return self.busy_s / self.invocations

    @property
    def throughput_per_s(self) -> float:
        """Items produced per busy second (0 when the stage never ran)."""
        if self.busy_s <= 0.0:
            return 0.0
        return self.items_out / self.busy_s

    def describe(self) -> str:
        return (
            f"{self.name}: {self.invocations} calls, "
            f"{self.items_in} in -> {self.items_out} out, "
            f"{1e3 * self.mean_latency_s:.3f} ms/call, "
            f"{self.throughput_per_s:.1f} items/s busy"
        )


class StageTimer:
    """Context manager charging a block's wall time to a stage.

    Usage::

        with StageTimer(metrics, items_in=len(block)) as timer:
            columns = tracker.push(block)
            timer.items_out = len(columns)
    """

    def __init__(self, metrics: StageMetrics, items_in: int = 0, items_out: int = 0):
        self.metrics = metrics
        self.items_in = items_in
        self.items_out = items_out
        self._start = 0.0

    def __enter__(self) -> StageTimer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.metrics.charge(
            time.perf_counter() - self._start,
            items_in=self.items_in,
            items_out=self.items_out,
        )


@dataclass
class RuntimeMetrics:
    """The pipeline's full metric set, one :class:`StageMetrics` per stage."""

    stages: dict[str, StageMetrics] = field(default_factory=dict)

    def stage(self, name: str) -> StageMetrics:
        """The named stage's metrics, created on first use."""
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    def describe(self) -> list[str]:
        """One deterministic-format line per stage, in creation order."""
        return [metrics.describe() for metrics in self.stages.values()]
