"""Per-stage latency and throughput accounting (compatibility home).

The implementation moved to :mod:`repro.telemetry.metrics`, where the
stage instruments share snapshot/merge semantics with the telemetry
registry; this module keeps the historical import path
(``repro.runtime.metrics``) alive for existing callers.
"""

from __future__ import annotations

from repro.telemetry.metrics import RuntimeMetrics, StageMetrics, StageTimer

__all__ = ["RuntimeMetrics", "StageMetrics", "StageTimer"]
