"""Structured exception taxonomy for the Wi-Vi stack.

The paper's prototype fails in well-understood physical ways: nulling
erodes as the static channel drifts (§4.1), the host drops buffers at
high sample rates (the UHD 'O' overflows that forced the 5 MHz
prototype, §7.1), and MUSIC degenerates when the emulated-array
covariance is ill-conditioned (§5).  A production pipeline needs to
*name* those failures so the recovery layer can dispatch on them
instead of pattern-matching strings.

Hierarchy::

    ReproError
    ├── HardwareFault          (something at the radio boundary broke)
    │   ├── SampleCorruptionError
    │   ├── AdcSaturationError
    │   ├── StreamOverflowError
    │   └── ClockFault
    ├── CalibrationError       (Algorithm 1 could not converge)
    ├── DegenerateCovarianceError  (MUSIC cannot run on this window)
    ├── DspBackendError        (a DSP backend is unknown or unavailable)
    ├── CaptureQualityError    (a screened capture was rejected)
    ├── DeviceFailedError      (the health machine gave up)
    ├── ProtocolError          (a serving wire frame was invalid)
    │   ├── SequenceError          (a push arrived out of order)
    │   └── SessionResumeError     (a resume checkpoint was rejected)
    ├── ServeTimeoutError      (a serving deadline expired)
    ├── ServeOverloadError     (the serving layer shed the request)
    │   └── SessionLimitError  (no capacity for another session)
    ├── FleetError             (the sharded serving layer misbehaved)
    │   ├── ShardDrainingError     (this shard is draining; resume elsewhere)
    │   └── WorkerCrashedError     (the shard process died mid-session)
    └── CaptureError           (a recorded capture misbehaved)
        ├── CaptureFormatError     (malformed or unsupported layout)
        ├── CaptureIntegrityError  (CRC mismatch / truncation)
        └── CaptureNotFoundError   (no such capture in the store)

The serving layer (:mod:`repro.serve`) transports this taxonomy over
the wire: an error frame names the exception class, and the client
re-raises the matching class, so a remote failure dispatches exactly
like a local one.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error raised by the stack."""


class HardwareFault(ReproError):
    """A fault at the hardware boundary (real or injected)."""


class SampleCorruptionError(HardwareFault):
    """The capture contains non-finite (NaN/Inf) samples."""


class AdcSaturationError(HardwareFault):
    """The capture clipped against the ADC rails."""


class StreamOverflowError(HardwareFault):
    """The host fell behind and the receive stream dropped samples."""


class ClockFault(HardwareFault):
    """The shared reference jumped; phase continuity is lost."""


class CalibrationError(ReproError):
    """Nulling calibration failed to converge.

    Attributes:
        attempts: how many calibration attempts were made before
            giving up (1 for a single un-retried failure).
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class DegenerateCovarianceError(ReproError):
    """The smoothed covariance is too ill-conditioned for MUSIC.

    Attributes:
        reason: short machine-readable cause ("non-finite", "dead",
            or "ill-conditioned").
    """

    def __init__(self, message: str, reason: str = "ill-conditioned"):
        super().__init__(message)
        self.reason = reason


class DspBackendError(ReproError):
    """A DSP backend was requested that is unknown or unavailable.

    Raised by the :mod:`repro.dsp.backend` registry when
    ``REPRO_DSP_BACKEND``/``--dsp-backend`` names a backend that was
    never registered, or one whose dependency (e.g. numba) cannot be
    imported in this process.
    """


class CaptureQualityError(ReproError):
    """A capture failed screening and cannot be processed."""


class DeviceFailedError(ReproError):
    """The device health machine reached FAILED; no captures possible."""


class ProtocolError(ReproError):
    """A serving wire frame violated the protocol.

    Malformed JSON, an unknown frame type, a missing field, a reference
    to a session this connection never opened, or a payload beyond the
    configured limits.  Protocol errors are the *client's* fault and
    are never retryable as-is.
    """


class SequenceError(ProtocolError):
    """A sequence-numbered push arrived out of order.

    The server tracks the last sequence number each session applied; a
    push that skips ahead is refused without touching the tracker, so
    the client can re-send its pushes in order (duplicates — a seq at
    or below the last applied — are acknowledged idempotently instead
    of raising).
    """


class SessionResumeError(ProtocolError):
    """An ``open_session`` resume checkpoint could not be restored.

    The checkpoint is malformed, internally inconsistent, or
    incompatible with the session config it was presented with.  The
    client must fall back to opening a fresh session.
    """


class ServeTimeoutError(ReproError):
    """A serving-layer deadline expired.

    Raised (and sent as an error frame where the socket still works)
    when a connection exhausts its read/idle deadline — a stalled or
    slow-loris client — or a reply write exceeds the write timeout.
    The connection is closed afterwards; a resumable client should
    reconnect and resume from its last checkpoint.
    """


class ServeOverloadError(ReproError):
    """The serving layer shed this request to protect the rest.

    Raised (and sent as an error frame) when the micro-batching
    scheduler's admission queue cannot absorb the windows a push would
    complete.  Unlike :class:`StreamOverflowError` — where samples were
    *silently lost* at the hardware boundary — a shed request rejects
    the whole block before any sample is buffered, so the session's
    window alignment survives and the client may simply retry later.
    """


class SessionLimitError(ServeOverloadError):
    """The server is at its concurrent-session limit."""


class FleetError(ReproError):
    """The sharded serving layer (:mod:`repro.fleet`) misbehaved.

    Base class for conditions the routing frontend reports about its
    worker shards.  Fleet errors are *migration signals*, not terminal
    failures: a resumable client that holds a checkpoint should
    reconnect and resume — the frontend will hash the session onto a
    healthy shard.
    """


class ShardDrainingError(FleetError):
    """The shard owning this session is draining.

    Sent by the routing frontend when an operator drains a shard: the
    shard stops admitting work, and every session still bound to it is
    told to migrate.  A resumable client reconnects and presents its
    freshest checkpoint; the session re-hashes onto the remaining
    shards and continues bit-identically.
    """


class WorkerCrashedError(FleetError):
    """The worker process owning this session died.

    Sent by the routing frontend to every session orphaned by a shard
    crash (and raised locally when the backend connection breaks
    mid-request).  The supervisor restarts the shard; a resumable
    client reconnects and resumes from its last checkpoint.
    """


class CaptureError(ReproError):
    """A recorded capture could not be written, read, or replayed."""


class CaptureFormatError(CaptureError):
    """A capture's on-disk layout is malformed or unsupported.

    A missing or unparsable header, an unknown format version, a
    record that is not the JSON object its file promises, or a capture
    whose recorded configuration cannot be replayed in the requested
    mode (e.g. a gapped capture pushed through a live serve session,
    which has no mid-stream reset hook).
    """


class CaptureIntegrityError(CaptureError):
    """A capture's stored bytes do not survive verification.

    A chunk whose CRC32 does not match its payload, a payload that is
    not valid packed float64s, an out-of-order chunk sequence, or a
    capture cut off before its footer was written (an unsealed capture
    read as if complete).  Integrity errors name the first offending
    record so a corrupt archive is diagnosable, not just rejected.
    """


class CaptureNotFoundError(CaptureError):
    """The capture store has no capture under the requested id."""
