"""Structured exception taxonomy for the Wi-Vi stack.

The paper's prototype fails in well-understood physical ways: nulling
erodes as the static channel drifts (§4.1), the host drops buffers at
high sample rates (the UHD 'O' overflows that forced the 5 MHz
prototype, §7.1), and MUSIC degenerates when the emulated-array
covariance is ill-conditioned (§5).  A production pipeline needs to
*name* those failures so the recovery layer can dispatch on them
instead of pattern-matching strings.

Hierarchy::

    ReproError
    ├── HardwareFault          (something at the radio boundary broke)
    │   ├── SampleCorruptionError
    │   ├── AdcSaturationError
    │   ├── StreamOverflowError
    │   └── ClockFault
    ├── CalibrationError       (Algorithm 1 could not converge)
    ├── DegenerateCovarianceError  (MUSIC cannot run on this window)
    ├── CaptureQualityError    (a screened capture was rejected)
    └── DeviceFailedError      (the health machine gave up)
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured error raised by the stack."""


class HardwareFault(ReproError):
    """A fault at the hardware boundary (real or injected)."""


class SampleCorruptionError(HardwareFault):
    """The capture contains non-finite (NaN/Inf) samples."""


class AdcSaturationError(HardwareFault):
    """The capture clipped against the ADC rails."""


class StreamOverflowError(HardwareFault):
    """The host fell behind and the receive stream dropped samples."""


class ClockFault(HardwareFault):
    """The shared reference jumped; phase continuity is lost."""


class CalibrationError(ReproError):
    """Nulling calibration failed to converge.

    Attributes:
        attempts: how many calibration attempts were made before
            giving up (1 for a single un-retried failure).
    """

    def __init__(self, message: str, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts


class DegenerateCovarianceError(ReproError):
    """The smoothed covariance is too ill-conditioned for MUSIC.

    Attributes:
        reason: short machine-readable cause ("non-finite", "dead",
            or "ill-conditioned").
    """

    def __init__(self, message: str, reason: str = "ill-conditioned"):
        super().__init__(message)
        self.reason = reason


class CaptureQualityError(ReproError):
    """A capture failed screening and cannot be processed."""


class DeviceFailedError(ReproError):
    """The device health machine reached FAILED; no captures possible."""
