"""Wi-Vi reproduction: see through walls with Wi-Fi.

A full implementation of the system from *"See Through Walls with
Wi-Fi!"* (Adib & Katabi, ACM SIGCOMM 2013 / MIT SM thesis 2013): MIMO
interference nulling to remove the flash effect, ISAR tracking with
smoothed MUSIC, spatial-variance human counting, and the through-wall
gesture channel — plus the physics-level RF/SDR simulator that stands
in for the paper's USRP testbed (see DESIGN.md for the substitution
rationale).

Quick start::

    import numpy as np
    from repro import (
        ChannelSeriesSimulator, Scene, Human, RandomWaypointTrajectory,
        compute_spectrogram, stata_conference_room_small,
    )

    rng = np.random.default_rng(0)
    room = stata_conference_room_small()
    human = Human(RandomWaypointTrajectory(room, rng, duration_s=10.0))
    scene = Scene(room=room, humans=[human])
    series = ChannelSeriesSimulator(scene, rng=rng).simulate(10.0)
    spectrogram = compute_spectrogram(series.samples)
"""

from repro.core.association import (
    AngleTracker,
    Track,
    TrackerConfig,
    count_simultaneous_tracks,
    extract_observations,
    track_spectrogram,
)
from repro.core.beamforming import (
    beamformed_spectrogram,
    default_theta_grid,
    element_spacing_m,
    inverse_aoa_spectrum,
    steering_vector,
)
from repro.core.counting import (
    SpatialVarianceClassifier,
    confusion_matrix,
    spatial_centroid,
    spatial_variance,
    trace_spatial_variance,
)
from repro.core.detection import motion_energy_db, motion_present, peak_to_dc_ratio_db
from repro.core.gestures import (
    GestureDecodeResult,
    GestureDecoder,
    angle_signed_signal,
    matched_filter_bank,
    triangle_template,
)
from repro.core.messaging import (
    bits_to_text,
    decode_message,
    encode_message,
    text_to_bits,
)
from repro.core.music import (
    MusicResult,
    estimate_source_count,
    smoothed_correlation_matrix,
    smoothed_music_spectrum,
)
from repro.core.nulling import (
    NullingResult,
    NullingRetryOutcome,
    iterative_nulling_residuals,
    run_nulling,
    run_nulling_with_retry,
)
from repro.core.localization import integrate_track, summarize_tracks
from repro.core.monitoring import (
    AutoCalibratingDevice,
    CaptureHealth,
    DeviceHealth,
    HealthStateMachine,
    NullingMonitor,
    RecoveryPolicy,
    ResilientDevice,
    sanitize_series,
    screen_series,
)
from repro.errors import (
    CalibrationError,
    CaptureQualityError,
    DegenerateCovarianceError,
    DeviceFailedError,
    HardwareFault,
    ReproError,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultScheduleConfig,
)
from repro.core.tracking import (
    MotionSpectrogram,
    TrackingConfig,
    compute_beamformed_spectrogram,
    compute_diversity_spectrogram,
    compute_spectrogram,
)
from repro.ofdm.phy import OfdmPhy, PhyConfig
from repro.environment.geometry import Point
from repro.environment.human import BodyModel, Human
from repro.environment.scene import DeviceGeometry, Scene
from repro.environment.trajectories import (
    GestureTrajectory,
    LinearTrajectory,
    RandomWaypointTrajectory,
    StationaryTrajectory,
    WaypointTrajectory,
)
from repro.environment.walls import (
    Room,
    Wall,
    fairchild_room,
    stata_conference_room_large,
    stata_conference_room_small,
)
from repro.rf.materials import MATERIALS, Material, material_by_name
from repro.simulator.experiment import (
    ExperimentConfig,
    Subject,
    counting_trial,
    gesture_trial,
    make_subject_pool,
    tracking_trial,
)
from repro.simulator.device import WiViDevice, WiViDeviceConfig
from repro.simulator.timeseries import (
    ChannelSeries,
    ChannelSeriesSimulator,
    TimeSeriesConfig,
)
from repro.simulator.waveform import SimulatedNullingLink, WaveformLinkConfig

__version__ = "1.0.0"

__all__ = [
    "AngleTracker",
    "AutoCalibratingDevice",
    "BodyModel",
    "CalibrationError",
    "CaptureHealth",
    "CaptureQualityError",
    "ChannelSeries",
    "ChannelSeriesSimulator",
    "DegenerateCovarianceError",
    "DeviceFailedError",
    "DeviceGeometry",
    "DeviceHealth",
    "ExperimentConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "FaultScheduleConfig",
    "GestureDecodeResult",
    "GestureDecoder",
    "GestureTrajectory",
    "HardwareFault",
    "HealthStateMachine",
    "Human",
    "LinearTrajectory",
    "MATERIALS",
    "Material",
    "MotionSpectrogram",
    "MusicResult",
    "NullingMonitor",
    "NullingResult",
    "NullingRetryOutcome",
    "OfdmPhy",
    "PhyConfig",
    "Point",
    "RandomWaypointTrajectory",
    "RecoveryPolicy",
    "ReproError",
    "ResilientDevice",
    "Room",
    "Scene",
    "SimulatedNullingLink",
    "SpatialVarianceClassifier",
    "StationaryTrajectory",
    "Subject",
    "TimeSeriesConfig",
    "Track",
    "TrackerConfig",
    "TrackingConfig",
    "Wall",
    "WaveformLinkConfig",
    "WaypointTrajectory",
    "WiViDevice",
    "WiViDeviceConfig",
    "angle_signed_signal",
    "beamformed_spectrogram",
    "bits_to_text",
    "compute_beamformed_spectrogram",
    "compute_diversity_spectrogram",
    "compute_spectrogram",
    "confusion_matrix",
    "count_simultaneous_tracks",
    "counting_trial",
    "decode_message",
    "default_theta_grid",
    "element_spacing_m",
    "encode_message",
    "estimate_source_count",
    "extract_observations",
    "fairchild_room",
    "gesture_trial",
    "integrate_track",
    "inverse_aoa_spectrum",
    "iterative_nulling_residuals",
    "make_subject_pool",
    "matched_filter_bank",
    "material_by_name",
    "motion_energy_db",
    "motion_present",
    "peak_to_dc_ratio_db",
    "run_nulling",
    "run_nulling_with_retry",
    "sanitize_series",
    "screen_series",
    "smoothed_correlation_matrix",
    "smoothed_music_spectrum",
    "spatial_centroid",
    "spatial_variance",
    "stata_conference_room_large",
    "stata_conference_room_small",
    "steering_vector",
    "summarize_tracks",
    "text_to_bits",
    "trace_spatial_variance",
    "track_spectrogram",
    "tracking_trial",
    "triangle_template",
]
