"""Empirical cumulative distribution functions.

Several of the paper's figures are CDFs over trials: spatial variance
(Fig. 7-3), gesture SNR (Fig. 7-5), and achieved nulling (Fig. 7-7).
"""

from __future__ import annotations

import numpy as np


class EmpiricalCdf:
    """The empirical CDF of a sample."""

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        if np.any(~np.isfinite(values)):
            raise ValueError("CDF values must be finite")
        self._sorted = np.sort(values)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample."""
        return self._sorted.copy()

    def __len__(self) -> int:
        return len(self._sorted)

    def evaluate(self, x: float | np.ndarray) -> np.ndarray | float:
        """P(X <= x)."""
        result = np.searchsorted(self._sorted, np.asarray(x, dtype=float), side="right")
        fractions = result / len(self._sorted)
        return float(fractions) if np.ndim(x) == 0 else fractions

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Inverse CDF by linear interpolation."""
        q_array = np.asarray(q, dtype=float)
        if np.any((q_array < 0) | (q_array > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        result = np.quantile(self._sorted, q_array)
        return float(result) if np.ndim(q) == 0 else result

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return float(self._sorted.mean())

    def table(self, points: int = 11) -> list[tuple[float, float]]:
        """(value, cumulative fraction) rows for printing."""
        if points < 2:
            raise ValueError("need at least two points")
        fractions = np.linspace(0.0, 1.0, points)
        return [(float(self.quantile(f)), float(f)) for f in fractions]

    def stochastically_dominates(self, other: "EmpiricalCdf", margin: float = 0.0) -> bool:
        """Whether this distribution sits to the right of ``other`` at
        every decile (first-order dominance check used by tests)."""
        deciles = np.linspace(0.1, 0.9, 9)
        mine = np.asarray(self.quantile(deciles))
        theirs = np.asarray(other.quantile(deciles))
        return bool(np.all(mine >= theirs + margin))
