"""Experiment campaign management.

The paper's evaluation is a set of structured campaigns: N trials per
condition, conditions swept over rooms / distances / materials /
occupancy, then summarized into a table or CDF.  This module gives that
structure a reusable shape: declare the conditions, hand over a trial
function, collect per-condition statistics — used by scripts and handy
for extending the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import MetricsRegistry

#: Fixed buckets for the per-condition trial-value histogram.  Fixed
#: (not adaptive) so that snapshots from any worker merge exactly and
#: the merged totals are bit-identical to a serial run's.
TRIAL_VALUE_BUCKETS: tuple[float, ...] = (
    -1e6, -1e3, -100.0, -10.0, -1.0, -0.1, 0.0,
    0.1, 1.0, 10.0, 100.0, 1e3, 1e6,
)


@dataclass(frozen=True)
class Condition:
    """One experimental condition: a label and trial parameters."""

    label: str
    parameters: dict[str, Any] = field(default_factory=dict)


@dataclass
class ConditionResult:
    """Collected outcomes for one condition.

    ``wall_time_s`` / ``cpu_time_s`` cover the condition's whole trial
    loop (as measured where it ran — in-worker for the parallel
    executor), so serial-vs-parallel speedup is measurable straight
    from the result objects.

    ``metrics`` is the condition's telemetry-metrics snapshot (trial
    and failure counters, trial-value histogram), recorded where the
    condition ran and shipped home with the result — the parent
    process merges worker snapshots into totals identical to a serial
    run's (see :class:`repro.telemetry.MetricsRegistry`).
    """

    condition: Condition
    values: list[float]
    failures: int = 0
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.std(self.values))

    @property
    def median(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.median(self.values))


class TrialError(RuntimeError):
    """Raised by trial functions to signal a recoverable trial failure."""


def run_condition(
    trial: Callable[..., float],
    condition: Condition,
    condition_index: int,
    trials_per_condition: int,
    seed: int,
) -> ConditionResult:
    """Run every trial of one condition and collect its result.

    Module-level (hence picklable) and parameterized by the condition's
    *index in the original sweep*: each (condition, trial) pair draws
    from ``SeedSequence([seed, condition_index, trial_index])``, so the
    draws depend only on position, never on which process runs them or
    in what order — the invariant the parallel executor
    (:func:`repro.runtime.parallel.run_campaign_parallel`) relies on to
    return results identical to the serial path.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    telemetry = get_telemetry()
    registry = MetricsRegistry()
    trials_counter = registry.counter("campaign.trials")
    failures_counter = registry.counter("campaign.failures")
    value_histogram = registry.histogram("campaign.trial_value", TRIAL_VALUE_BUCKETS)
    values: list[float] = []
    failures = 0
    with telemetry.span(
        "campaign.condition", label=condition.label, trials=trials_per_condition
    ):
        for t_index in range(trials_per_condition):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, condition_index, t_index])
            )
            trials_counter.inc()
            try:
                value = float(trial(rng, **condition.parameters))
            except TrialError:
                failures += 1
                failures_counter.inc()
            else:
                values.append(value)
                value_histogram.observe(value)
    snapshot = registry.snapshot()
    if telemetry.enabled:
        telemetry.metrics.merge(snapshot)
    return ConditionResult(
        condition=condition,
        values=values,
        failures=failures,
        wall_time_s=time.perf_counter() - wall_start,
        cpu_time_s=time.process_time() - cpu_start,
        metrics=snapshot,
    )


@dataclass
class Campaign:
    """A sweep of conditions, each run ``trials_per_condition`` times.

    Args:
        trial: callable ``(rng, **parameters) -> float`` producing one
            scalar outcome per trial.  May raise :class:`TrialError`
            for a failed trial (counted, not fatal).
        conditions: the sweep.
        trials_per_condition: repetitions per condition.
        seed: base seed; each (condition, trial) pair gets its own
            deterministic stream, so adding conditions does not change
            the draws of existing ones.
    """

    trial: Callable[..., float]
    conditions: list[Condition]
    trials_per_condition: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.trials_per_condition < 1:
            raise ValueError("need at least one trial per condition")
        if not self.conditions:
            raise ValueError("need at least one condition")
        labels = [c.label for c in self.conditions]
        if len(set(labels)) != len(labels):
            raise ValueError("condition labels must be unique")

    def run(self) -> dict[str, ConditionResult]:
        """Execute the whole sweep; returns results keyed by label."""
        return {
            condition.label: run_condition(
                self.trial, condition, c_index, self.trials_per_condition, self.seed
            )
            for c_index, condition in enumerate(self.conditions)
        }


def summary_table(results: dict[str, ConditionResult]) -> str:
    """Render campaign results as an aligned text table."""
    if not results:
        raise ValueError("no results to summarize")
    header = f"{'condition':>24}  {'n':>3}  {'mean':>10}  {'std':>9}  {'fail':>4}"
    lines = [header, "-" * len(header)]
    for label, result in results.items():
        if result.values:
            lines.append(
                f"{label:>24}  {result.count:>3}  {result.mean:>10.3f}  "
                f"{result.std:>9.3f}  {result.failures:>4}"
            )
        else:
            lines.append(
                f"{label:>24}  {result.count:>3}  {'-':>10}  {'-':>9}  "
                f"{result.failures:>4}"
            )
    return "\n".join(lines)
