"""Experiment campaign management.

The paper's evaluation is a set of structured campaigns: N trials per
condition, conditions swept over rooms / distances / materials /
occupancy, then summarized into a table or CDF.  This module gives that
structure a reusable shape: declare the conditions, hand over a trial
function, collect per-condition statistics — used by scripts and handy
for extending the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class Condition:
    """One experimental condition: a label and trial parameters."""

    label: str
    parameters: dict[str, Any] = field(default_factory=dict)


@dataclass
class ConditionResult:
    """Collected outcomes for one condition."""

    condition: Condition
    values: list[float]
    failures: int = 0

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.std(self.values))

    @property
    def median(self) -> float:
        if not self.values:
            raise ValueError(f"no successful trials for {self.condition.label!r}")
        return float(np.median(self.values))


class TrialError(RuntimeError):
    """Raised by trial functions to signal a recoverable trial failure."""


@dataclass
class Campaign:
    """A sweep of conditions, each run ``trials_per_condition`` times.

    Args:
        trial: callable ``(rng, **parameters) -> float`` producing one
            scalar outcome per trial.  May raise :class:`TrialError`
            for a failed trial (counted, not fatal).
        conditions: the sweep.
        trials_per_condition: repetitions per condition.
        seed: base seed; each (condition, trial) pair gets its own
            deterministic stream, so adding conditions does not change
            the draws of existing ones.
    """

    trial: Callable[..., float]
    conditions: list[Condition]
    trials_per_condition: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.trials_per_condition < 1:
            raise ValueError("need at least one trial per condition")
        if not self.conditions:
            raise ValueError("need at least one condition")
        labels = [c.label for c in self.conditions]
        if len(set(labels)) != len(labels):
            raise ValueError("condition labels must be unique")

    def run(self) -> dict[str, ConditionResult]:
        """Execute the whole sweep; returns results keyed by label."""
        results: dict[str, ConditionResult] = {}
        for c_index, condition in enumerate(self.conditions):
            values: list[float] = []
            failures = 0
            for t_index in range(self.trials_per_condition):
                rng = np.random.default_rng(
                    np.random.SeedSequence([self.seed, c_index, t_index])
                )
                try:
                    values.append(float(self.trial(rng, **condition.parameters)))
                except TrialError:
                    failures += 1
            results[condition.label] = ConditionResult(
                condition=condition, values=values, failures=failures
            )
        return results


def summary_table(results: dict[str, ConditionResult]) -> str:
    """Render campaign results as an aligned text table."""
    if not results:
        raise ValueError("no results to summarize")
    header = f"{'condition':>24}  {'n':>3}  {'mean':>10}  {'std':>9}  {'fail':>4}"
    lines = [header, "-" * len(header)]
    for label, result in results.items():
        if result.values:
            lines.append(
                f"{label:>24}  {result.count:>3}  {result.mean:>10.3f}  "
                f"{result.std:>9.3f}  {result.failures:>4}"
            )
        else:
            lines.append(
                f"{label:>24}  {result.count:>3}  {'-':>10}  {'-':>9}  "
                f"{result.failures:>4}"
            )
    return "\n".join(lines)
