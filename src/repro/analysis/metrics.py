"""Classification metrics for the counting and gesture experiments."""

from __future__ import annotations

import numpy as np


def accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    true_array = np.asarray(true_labels)
    predicted_array = np.asarray(predicted_labels)
    if true_array.shape != predicted_array.shape:
        raise ValueError("label arrays must align")
    if true_array.size == 0:
        raise ValueError("no labels to score")
    return float(np.mean(true_array == predicted_array))


def precision_per_class(
    true_labels: np.ndarray, predicted_labels: np.ndarray, labels: list[int]
) -> dict[int, float]:
    """Per-class recall as the paper reports it: of the trials with
    truly k humans, the fraction identified as k ("the precisions with
    which Wi-Vi identifies each case", §1.2)."""
    true_array = np.asarray(true_labels)
    predicted_array = np.asarray(predicted_labels)
    result = {}
    for label in labels:
        mask = true_array == label
        if not np.any(mask):
            raise ValueError(f"no trials with true label {label}")
        result[label] = float(np.mean(predicted_array[mask] == label))
    return result


def erasure_rate(bits: list[int | None]) -> float:
    """Fraction of gesture bits that were erased (not decoded)."""
    if not bits:
        raise ValueError("no bits")
    return sum(1 for bit in bits if bit is None) / len(bits)


def bit_error_events(sent: list[int], decoded: list[int | None]) -> tuple[int, int, int]:
    """(correct, erased, flipped) counts.

    Decoded bits are aligned to sent slots as an order-preserving
    subsequence chosen to minimise flips: when gestures are erased
    outright the receiver has no slot reference, so blaming a
    mis-*position* on a bit *flip* would overstate the error class the
    paper says never occurs (§7.5).  Unmatched sent slots count as
    erasures.
    """
    if len(decoded) > len(sent):
        decoded = decoded[: len(sent)]
    observed = [bit for bit in decoded if bit is not None]
    erased_markers = sum(1 for bit in decoded if bit is None)

    # Dynamic program over (sent index, observed index): maximise the
    # number of matching assignments of the observed subsequence.
    n, m = len(sent), len(observed)
    best = [[-1] * (m + 1) for _ in range(n + 1)]
    best[0][0] = 0
    for i in range(n + 1):
        for j in range(min(i, m) + 1):
            if best[i][j] < 0:
                continue
            if i < n:
                # Leave sent[i] unmatched (erasure).
                best[i + 1][j] = max(best[i + 1][j], best[i][j])
                if j < m:
                    gain = 1 if sent[i] == observed[j] else 0
                    best[i + 1][j + 1] = max(best[i + 1][j + 1], best[i][j] + gain)
    correct = best[n][m] if best[n][m] >= 0 else 0
    flipped = m - correct
    erased = n - m
    return correct, erased, flipped
