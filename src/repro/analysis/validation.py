"""Statistical validation helpers for reproduction claims.

Benchmarks report point estimates; whether a reproduction "matches" the
paper needs uncertainty attached.  This module provides the two tools
the harness uses: bootstrap confidence intervals for any statistic of a
trial sample, and a two-sample Kolmogorov-Smirnov distance for
comparing CDFs (e.g. our Fig. 7-7 nulling distribution across runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap interval for a statistic."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.3g} "
            f"[{self.low:.3g}, {self.high:.3g}] @ {100 * self.confidence:.0f}%"
        )


def bootstrap_ci(
    values: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for ``statistic``.

    Args:
        values: the trial sample.
        statistic: reducer applied to each resample (default mean).
        confidence: interval mass, e.g. 0.95.
        num_resamples: bootstrap iterations.
        rng: generator (defaults to a fixed-seed one so bench reports
            are reproducible).
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("need at least two values to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if num_resamples < 100:
        raise ValueError("use at least 100 resamples")
    rng = rng if rng is not None else np.random.default_rng(0)
    estimates = np.empty(num_resamples)
    n = len(values)
    for index in range(num_resamples):
        resample = values[rng.integers(0, n, n)]
        estimates[index] = statistic(resample)
    tail = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(values)),
        low=float(np.quantile(estimates, tail)),
        high=float(np.quantile(estimates, 1.0 - tail)),
        confidence=confidence,
    )


def ks_distance(sample_a: np.ndarray, sample_b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: max CDF gap in [0, 1]."""
    a = np.sort(np.asarray(sample_a, dtype=float).ravel())
    b = np.sort(np.asarray(sample_b, dtype=float).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def samples_compatible(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    max_ks_distance: float = 0.35,
) -> bool:
    """Loose compatibility check between two trial distributions.

    A deliberately generous bar: reproduction targets *shape*, so we
    flag only gross distributional mismatch.
    """
    if not 0.0 < max_ks_distance <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return ks_distance(sample_a, sample_b) <= max_ks_distance
