"""Image export for spectrograms — no plotting stack required.

The paper's figures are heatmaps of A'[theta, n].  This module writes
them as portable graymap/pixmap files (PGM/PPM, the simplest image
formats there are) so results can leave the terminal without
matplotlib: every image viewer and converter understands them.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.tracking import MotionSpectrogram

#: A perceptually-reasonable heat ramp (black -> red -> yellow -> white).
_HEAT_STOPS = np.array(
    [
        (0.00, (0, 0, 0)),
        (0.35, (128, 0, 0)),
        (0.65, (255, 64, 0)),
        (0.85, (255, 200, 0)),
        (1.00, (255, 255, 255)),
    ],
    dtype=object,
)


def _normalize(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=float)
    low, high = float(image.min()), float(image.max())
    span = (high - low) or 1.0
    return (image - low) / span


def write_pgm(image: np.ndarray, path: str | Path) -> Path:
    """Write a 2-D array as an 8-bit binary PGM (grayscale).

    The array is min-max normalized; row 0 is the top of the image.
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or image.size == 0:
        raise ValueError("need a non-empty 2-D array")
    levels = np.round(_normalize(image) * 255).astype(np.uint8)
    path = Path(path)
    height, width = levels.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(levels.tobytes())
    return path


def _heat_rgb(values: np.ndarray) -> np.ndarray:
    """Map normalized values (0..1) onto the heat ramp, shape (..., 3)."""
    positions = np.array([stop[0] for stop in _HEAT_STOPS], dtype=float)
    colors = np.array([stop[1] for stop in _HEAT_STOPS], dtype=float)
    rgb = np.empty(values.shape + (3,), dtype=float)
    for channel in range(3):
        rgb[..., channel] = np.interp(values, positions, colors[:, channel])
    return np.round(rgb).astype(np.uint8)


def write_ppm(image: np.ndarray, path: str | Path) -> Path:
    """Write a 2-D array as a heat-mapped 8-bit binary PPM (colour)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or image.size == 0:
        raise ValueError("need a non-empty 2-D array")
    rgb = _heat_rgb(_normalize(image))
    path = Path(path)
    height, width = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(rgb.tobytes())
    return path


def export_spectrogram(
    spectrogram: MotionSpectrogram,
    path: str | Path,
    color: bool = True,
) -> Path:
    """Export A'[theta, n] in the paper's orientation.

    Rows run from +90 degrees (top) to -90 (bottom), columns are time —
    matching Figs. 5-2/5-3/7-2.  The extension does not need to match;
    the format is chosen by ``color``.
    """
    db_image = spectrogram.normalized_db()
    oriented = db_image.T[::-1]  # theta on rows, +90 on top
    writer = write_ppm if color else write_pgm
    return writer(oriented, path)


def read_pnm_header(path: str | Path) -> tuple[str, int, int]:
    """Parse a PGM/PPM header: (magic, width, height).  For tests and
    sanity checks."""
    with open(path, "rb") as handle:
        magic = handle.readline().strip().decode("ascii")
        if magic not in ("P5", "P6"):
            raise ValueError(f"not a binary PGM/PPM file: magic {magic!r}")
        dimensions = handle.readline().split()
        width, height = int(dimensions[0]), int(dimensions[1])
    return magic, width, height
