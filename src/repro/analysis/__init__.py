"""Analysis helpers used by the benchmark harness: empirical CDFs,
accuracy metrics, and text renderers for spectrograms and series."""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.metrics import accuracy, precision_per_class
from repro.analysis.plots import (
    render_cdf_table,
    render_heatmap,
    render_series,
)

__all__ = [
    "EmpiricalCdf",
    "accuracy",
    "precision_per_class",
    "render_cdf_table",
    "render_heatmap",
    "render_series",
]
