"""Text renderers: ASCII heatmaps and series for the bench harness.

The paper's figures are heatmaps of A'[theta, n] and CDF curves; with
no plotting stack available offline, the benches print compact ASCII
versions plus the underlying numeric rows, which is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np

#: Intensity ramp from quiet to loud.
_RAMP = " .:-=+*#%@"


def render_heatmap(
    image: np.ndarray,
    y_labels: np.ndarray,
    x_label: str = "time",
    y_label: str = "theta",
    max_rows: int = 19,
    max_cols: int = 72,
) -> str:
    """Render a (rows=y, cols=x) image as ASCII art.

    The image is downsampled by averaging to at most ``max_rows`` x
    ``max_cols`` and mapped onto a 10-level intensity ramp.  Rows print
    top-to-bottom from the largest y label (matching the paper's
    +90 degrees on top).
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("heatmap needs a 2-D image")
    y_labels = np.asarray(y_labels, dtype=float)
    if len(y_labels) != image.shape[0]:
        raise ValueError("one y label per image row required")

    def _downsample(array: np.ndarray, target: int, axis: int) -> np.ndarray:
        length = array.shape[axis]
        if length <= target:
            return array
        edges = np.linspace(0, length, target + 1).astype(int)
        chunks = [
            array.take(range(edges[i], max(edges[i + 1], edges[i] + 1)), axis=axis).mean(
                axis=axis, keepdims=True
            )
            for i in range(target)
        ]
        return np.concatenate(chunks, axis=axis)

    small = _downsample(_downsample(image, max_rows, 0), max_cols, 1)
    small_y = _downsample(y_labels.reshape(-1, 1), max_rows, 0).ravel()
    low, high = float(small.min()), float(small.max())
    span = (high - low) or 1.0
    levels = ((small - low) / span * (len(_RAMP) - 1)).astype(int)

    lines = [f"{y_label} (deg)  |{x_label} ->"]
    for row_index in range(small.shape[0] - 1, -1, -1):
        row = "".join(_RAMP[level] for level in levels[row_index])
        lines.append(f"{small_y[row_index]:+7.1f}  |{row}|")
    return "\n".join(lines)


def render_column_strip(power: np.ndarray, width: int = 60) -> str:
    """Render one spectrogram column as a single glyph strip.

    The streaming CLI prints columns the moment they arrive, one line
    per window — this is one row of :func:`render_heatmap`, normalized
    within the column (dB over the column minimum), downsampled to
    ``width`` glyphs by averaging.
    """
    power = np.asarray(power, dtype=float)
    if power.ndim != 1 or power.size == 0:
        raise ValueError("column must be a non-empty 1-D array")
    db = 20.0 * np.log10(np.maximum(power, np.finfo(float).tiny))
    db -= db.min()
    width = min(width, len(db))
    edges = np.linspace(0, len(db), width + 1).astype(int)
    bins = np.array(
        [db[edges[i] : max(edges[i + 1], edges[i] + 1)].mean() for i in range(width)]
    )
    span = max(float(bins.max()), np.finfo(float).tiny)
    levels = np.clip((bins / span * (len(_RAMP) - 1)).astype(int), 0, len(_RAMP) - 1)
    return "".join(_RAMP[level] for level in levels)


def render_series(
    values: np.ndarray,
    times: np.ndarray | None = None,
    height: int = 9,
    width: int = 72,
    title: str = "",
) -> str:
    """Render a 1-D signed series as an ASCII line chart around zero."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("series must be a non-empty 1-D array")
    if height < 3 or height % 2 == 0:
        raise ValueError("height must be an odd number >= 3")
    # Downsample to width columns.
    edges = np.linspace(0, len(values), min(width, len(values)) + 1).astype(int)
    columns = np.array(
        [values[edges[i] : max(edges[i + 1], edges[i] + 1)].mean() for i in range(len(edges) - 1)]
    )
    peak = max(float(np.max(np.abs(columns))), np.finfo(float).tiny)
    half = height // 2
    rows = np.clip(np.round(columns / peak * half).astype(int), -half, half)
    grid = [[" "] * len(columns) for _ in range(height)]
    for col, row in enumerate(rows):
        grid[half - row][col] = "*"
        grid[half][col] = grid[half][col] if grid[half][col] == "*" else "-"
    lines = []
    if title:
        lines.append(title)
    lines.extend("".join(row) for row in grid)
    if times is not None and len(times) > 1:
        lines.append(f"t = {float(times[0]):.1f}s ... {float(times[-1]):.1f}s, peak |y| = {peak:.3g}")
    return "\n".join(lines)


def render_cdf_table(
    rows: list[tuple[float, float]], value_name: str, unit: str = ""
) -> str:
    """Print (value, fraction) CDF rows as an aligned table."""
    header = f"{value_name}{f' ({unit})' if unit else ''}"
    lines = [f"{header:>24}  cumulative fraction"]
    for value, fraction in rows:
        lines.append(f"{value:>24.3f}  {fraction:>18.2f}")
    return "\n".join(lines)
