"""Deterministic replay: re-derive a capture's columns and prove it.

A capture (:mod:`repro.capture.format`) holds the delivered sample
stream bit-exactly plus the columns the original run emitted.  Replay
rebuilds the original tracker from the capture header, feeds the
recorded chunks back — re-enacting each recorded gap as the tracker
reset the live pipeline performed — and the **determinism gate**
(:func:`verify_capture`) proves every replayed column matches its
recorded original bit for bit (``np.array_equal``; the comparison is
on the raw float64 bytes, which is the same predicate made NaN-safe).

Three consumers drive replays:

* :func:`replay_columns` — a bare :class:`~repro.runtime.tracker.
  StreamingTracker`, the cheapest gate.
* :func:`replay_pipeline` — a full :class:`~repro.runtime.pipeline.
  StreamingPipeline` over :class:`ReplayBlockSource`, so health
  machines and detectors re-fire too.
* :func:`replay_serve` — the capture pushed through a *live*
  :class:`~repro.serve.server.SensingServer` session over the socket,
  closing the loop end to end: record once, replay anywhere, same
  columns.

:func:`promote_to_fixture` is the corpus flywheel's one-call step: it
runs the gate and, only on a clean pass, freezes the capture into a
compressed bundle under ``tests/fixtures/captures/`` where the
regression suite replays it forever.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.capture.format import (
    BUNDLE_SUFFIX,
    CaptureChunk,
    CaptureHeader,
    CaptureReader,
    write_bundle,
)
from repro.capture.recorder import EVENT_COLUMN, EVENT_GAP
from repro.core.tracking import TrackingConfig
from repro.encoding import floats_to_bytes, unpack_floats
from repro.errors import (
    CaptureFormatError,
    CaptureIntegrityError,
    ProtocolError,
)
from repro.runtime.pipeline import (
    DetectStage,
    StreamingPipeline,
    StreamResult,
)
from repro.runtime.ring import SampleBlock, SampleRingBuffer
from repro.runtime.tracker import SpectrogramColumn, StreamingTracker
from repro.serve.client import AsyncServeClient
from repro.serve.session import CONFIGURABLE_FIELDS

#: Where :func:`promote_to_fixture` freezes bundles by default (the
#: repo's regression-fixture corpus).
DEFAULT_FIXTURE_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "fixtures" / "captures"
)


def tracker_for(header: CaptureHeader) -> StreamingTracker:
    """The tracker the capture was recorded against, rebuilt exactly."""
    return StreamingTracker(
        config=header.tracking_config(),
        start_time_s=header.start_time_s,
        use_music=header.use_music,
        ring_capacity=header.ring_capacity,
    )


def gap_map(reader: CaptureReader) -> dict[int, int]:
    """Recorded gaps as ``{block start_index: dropped samples}``."""
    gaps: dict[int, int] = {}
    for record in reader.iter_events(EVENT_GAP):
        try:
            index = int(record["block_index"])
            dropped = int(record["dropped_samples"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CaptureFormatError(f"malformed gap event: {exc}") from None
        gaps[index] = gaps.get(index, 0) + dropped
    return gaps


def recorded_columns(reader: CaptureReader) -> list[SpectrogramColumn]:
    """The columns the original run emitted, decoded and CRC-checked."""
    columns: list[SpectrogramColumn] = []
    for record in reader.iter_events(EVENT_COLUMN):
        try:
            payload = record["power"]
            crc = int(record["power_crc32"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CaptureFormatError(f"malformed column event: {exc}") from None
        try:
            power = unpack_floats(payload)
        except ProtocolError as exc:
            raise CaptureIntegrityError(
                f"column event {record.get('index')}: {exc}"
            ) from None
        if zlib.crc32(floats_to_bytes(power)) != crc:
            raise CaptureIntegrityError(
                f"column event {record.get('index')} fails its CRC32 check"
            )
        try:
            columns.append(
                SpectrogramColumn(
                    index=int(record["index"]),
                    start_sample=int(record["start_sample"]),
                    time_s=float(record["time_s"]),
                    power=power,
                    num_sources=int(record["num_sources"]),
                    estimator=str(record["estimator"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CaptureFormatError(f"malformed column event: {exc}") from None
    return columns


# ----------------------------------------------------------------------
# Replay drivers
# ----------------------------------------------------------------------


def replay_columns(
    reader: CaptureReader, tracker: StreamingTracker | None = None
) -> list[SpectrogramColumn]:
    """Feed the capture through a tracker; return the columns it emits.

    Gaps are re-enacted exactly as the live pipeline handled them: the
    tracker resets before the chunk the gap was charged to, so window
    alignment after every drop matches the original run.
    """
    if tracker is None:
        tracker = tracker_for(reader.header)
    gaps = gap_map(reader)
    columns: list[SpectrogramColumn] = []
    for chunk in reader.iter_chunks():
        if chunk.start_index in gaps:
            tracker.reset()
        columns.extend(tracker.push(chunk.samples))
    return columns


class ReplayBlockSource:
    """A block source replaying a capture's delivered stream.

    Source-compatible with :class:`~repro.runtime.ring.BlockSource`
    (``poll``/``drain``/``ring``/``exhausted``), so it drops into a
    :class:`~repro.runtime.pipeline.StreamingPipeline` unchanged.  Each
    poll emits one recorded chunk (streaming; nothing pre-loaded), and
    a chunk that carried a recorded gap bumps the ring's drop counter
    first — the pipeline's own gap check then re-performs the tracker
    reset at exactly the recorded stream position.
    """

    def __init__(self, reader: CaptureReader):
        self.reader = reader
        self._chunks: Iterator[CaptureChunk] = reader.iter_chunks()
        self._gaps = gap_map(reader)
        # Accounting-only ring: replay never re-buffers (the recorded
        # chunks already *are* the delivered blocks), but the pipeline
        # reads drop counters off this object to detect gaps.
        self.ring = SampleRingBuffer(1)
        self.emitted_block_count = 0
        self._done = False

    @property
    def exhausted(self) -> bool:
        return self._done

    def poll(self) -> list[SampleBlock]:
        try:
            chunk = next(self._chunks)
        except StopIteration:
            self._done = True
            return []
        dropped = self._gaps.get(chunk.start_index, 0)
        if dropped:
            self.ring.dropped_sample_count += dropped
            self.ring.overflow_count += 1
        self.emitted_block_count += 1
        return [SampleBlock(samples=chunk.samples, start_index=chunk.start_index)]

    def drain(self) -> Iterator[SampleBlock]:
        while True:
            blocks = self.poll()
            if not blocks:
                return
            yield from blocks


def replay_pipeline(
    reader: CaptureReader, detector: DetectStage | None = None
) -> StreamResult:
    """Replay through a full pipeline: columns, detections, health.

    The condition stage re-screens every block, so health transitions
    re-fire; the default detector re-runs the capture's configured
    geometry.  Pass ``detector=None`` via an explicit
    :class:`DetectStage` of your own to change detection policy.
    """
    header = reader.header
    tracker = tracker_for(header)
    if detector is None:
        detector = DetectStage(theta_grid_deg=tracker.config.theta_grid_deg)
    pipeline = StreamingPipeline(
        source=ReplayBlockSource(reader),
        tracker=tracker,
        detector=detector,
    )
    return pipeline.run()


def serve_config_overrides(header: CaptureHeader) -> dict[str, float | int]:
    """The ``open_session`` config that reproduces a capture's tracker.

    Raises:
        CaptureFormatError: the capture's config differs from the
            server defaults on a field clients cannot override — a live
            session could never reproduce its columns.
    """
    config = header.tracking_config()
    overrides: dict[str, float | int] = {
        name: getattr(config, name) for name in CONFIGURABLE_FIELDS
    }
    servable = TrackingConfig(**overrides)
    blocked = [
        name
        for name in header.config
        if getattr(servable, name) != getattr(config, name)
    ]
    if blocked:
        raise CaptureFormatError(
            f"capture {header.capture_id} sets non-configurable field(s) "
            f"{', '.join(sorted(blocked))}; a serve session cannot "
            "reproduce it"
        )
    return overrides


async def replay_serve_async(
    reader: CaptureReader, host: str, port: int
) -> list[SpectrogramColumn]:
    """Push the capture through a live serve session; return its columns.

    Raises:
        CaptureFormatError: the capture recorded stream gaps (a serve
            session has no mid-stream reset hook, so a gapped stream
            cannot replay over the wire) or a non-servable config.
    """
    if gap_map(reader):
        raise CaptureFormatError(
            f"capture {reader.header.capture_id} contains stream gaps; "
            "replay it offline (replay_columns) instead of through serve"
        )
    overrides = serve_config_overrides(reader.header)
    header = reader.header
    client = AsyncServeClient(host, port)
    await client.connect()
    try:
        await client.open_session(
            config=overrides,
            use_music=header.use_music,
            start_time_s=header.start_time_s,
        )
        columns: list[SpectrogramColumn] = []
        for chunk in reader.iter_chunks():
            reply = await client.push(chunk.samples)
            columns.extend(reply.columns)
        await client.close_session()
        return columns
    finally:
        await client.aclose()


def replay_serve(
    reader: CaptureReader, host: str, port: int
) -> list[SpectrogramColumn]:
    """Blocking wrapper over :func:`replay_serve_async`."""
    return asyncio.run(replay_serve_async(reader, host, port))


# ----------------------------------------------------------------------
# The determinism gate
# ----------------------------------------------------------------------


@dataclass
class ReplayVerification:
    """The determinism gate's verdict for one capture.

    ``ok`` iff the replayed columns match the recorded ones bit for
    bit; ``mismatches`` names every divergence (bounded detail, full
    count) so a failed gate is diagnosable.
    """

    capture_id: str
    num_columns: int
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    # Byte-level equality of the float64 payloads: the same predicate
    # as np.array_equal on these arrays, but NaN positions compare
    # equal to themselves (replay must reproduce even the NaNs).
    return a.shape == b.shape and floats_to_bytes(a) == floats_to_bytes(b)


def compare_columns(
    recorded: list[SpectrogramColumn],
    replayed: list[SpectrogramColumn],
    max_details: int = 10,
) -> list[str]:
    """Field-by-field, bit-for-bit column comparison."""
    mismatches: list[str] = []
    if len(recorded) != len(replayed):
        mismatches.append(
            f"column count: recorded {len(recorded)}, replayed {len(replayed)}"
        )
    for original, replay in zip(recorded, replayed):
        detail: list[str] = []
        for name in ("index", "start_sample", "num_sources", "estimator"):
            if getattr(original, name) != getattr(replay, name):
                detail.append(name)
        if original.time_s != replay.time_s:
            detail.append("time_s")
        if not _bit_equal(
            np.asarray(original.power, dtype=float),
            np.asarray(replay.power, dtype=float),
        ):
            detail.append("power")
        if detail:
            mismatches.append(
                f"column {original.index}: {', '.join(detail)} differ"
            )
            if len(mismatches) >= max_details:
                mismatches.append("... further mismatches suppressed")
                break
    return mismatches


def verify_capture(
    reader: CaptureReader, tracker: StreamingTracker | None = None
) -> ReplayVerification:
    """Replay offline and compare every column against the record.

    Raises:
        CaptureIntegrityError: the capture itself fails verification
            (truncated, corrupt chunk, inconsistent totals) before any
            replay runs.
    """
    reader.verify()
    recorded = recorded_columns(reader)
    replayed = replay_columns(reader, tracker)
    return ReplayVerification(
        capture_id=reader.header.capture_id,
        num_columns=len(recorded),
        mismatches=compare_columns(recorded, replayed),
    )


def verify_serve(
    reader: CaptureReader, host: str, port: int
) -> ReplayVerification:
    """The live-session determinism gate: replay over the wire."""
    reader.verify()
    recorded = recorded_columns(reader)
    replayed = replay_serve(reader, host, port)
    return ReplayVerification(
        capture_id=reader.header.capture_id,
        num_columns=len(recorded),
        mismatches=compare_columns(recorded, replayed),
    )


# ----------------------------------------------------------------------
# The corpus flywheel
# ----------------------------------------------------------------------


def promote_to_fixture(
    capture: CaptureReader | str | Path,
    dest_dir: str | Path | None = None,
    name: str | None = None,
) -> Path:
    """Gate a capture and freeze it as a regression fixture bundle.

    Runs the full determinism gate (:func:`verify_capture`) and, only
    on a clean pass, writes the compressed bundle — by default under
    ``tests/fixtures/captures/`` as ``<capture_id>.capture.ndjson.gz``.
    A capture that fails the gate is refused: the fixture corpus only
    ever accumulates captures the replayer provably reproduces.

    Raises:
        CaptureIntegrityError: the capture is damaged or its replay
            diverges from the recorded columns.
    """
    reader = capture if isinstance(capture, CaptureReader) else CaptureReader(capture)
    verification = verify_capture(reader)
    if not verification.ok:
        raise CaptureIntegrityError(
            f"capture {verification.capture_id} failed the determinism "
            f"gate; not promoting: {'; '.join(verification.mismatches)}"
        )
    dest_dir = Path(dest_dir) if dest_dir is not None else DEFAULT_FIXTURE_DIR
    bundle_name = name if name is not None else reader.header.capture_id
    if not bundle_name.endswith(BUNDLE_SUFFIX):
        bundle_name += BUNDLE_SUFFIX
    return write_bundle(reader, dest_dir / bundle_name)
