"""The retention-managed capture store.

A store is a directory of capture directories (one per
:mod:`repro.capture.format` capture) plus an always-on audit log.
It answers the operational questions a recording deployment raises:

* **Where do captures go?**  ``store.create(...)`` mints a unique
  capture id, stamps the header (created time, git SHA, seed, config
  snapshot) and hands back a streaming writer.
* **How do they not eat the disk?**  :class:`RetentionPolicy` bounds
  the store three ways — capture count, total bytes, and age — and
  :meth:`CaptureStore.prune` enforces it oldest-first.  Removal is
  atomic: a capture is renamed to a dot-prefixed tombstone (one
  ``rename``, so no reader ever sees a half-deleted capture) before
  its files go.  Unsealed captures are never pruned — one may be a
  recording in progress.
* **Who touched what?**  Every create/read/prune/list appends one
  NDJSON line to ``<root>/audit.ndjson`` *and* mirrors the record
  through :mod:`repro.telemetry` as a ``capture.audit`` event when
  telemetry is enabled.  The file is the durable trail; the telemetry
  mirror joins the store's activity to the run's trace/span picture.
"""

from __future__ import annotations

import json
import shutil
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.capture.format import (
    FOOTER_FILE,
    HEADER_FILE,
    CaptureHeader,
    CaptureReader,
    CaptureWriter,
    git_sha,
)
from repro.core.tracking import TrackingConfig
from repro.capture.format import config_to_snapshot
from repro.dsp.backend import active_backend_name
from repro.errors import CaptureFormatError, CaptureNotFoundError
from repro.telemetry.context import get_telemetry

AUDIT_FILE = "audit.ndjson"

#: Store-wide advisory lock file.  Every mutation that must be atomic
#: across *processes* — capture-id mint + writer construction, audit
#: appends, prune renames — runs under an exclusive ``flock`` on it,
#: so N fleet shard workers can share one ``--record`` store.
STORE_LOCK_FILE = ".store.lock"

#: Tombstone prefix of a capture mid-removal (never listed, swept on
#: the next prune).
_TOMBSTONE_PREFIX = ".prune-"


@dataclass(frozen=True)
class RetentionPolicy:
    """Bounds the store enforces on :meth:`CaptureStore.prune`.

    ``None`` disables a bound.  Attributes:
        max_captures: keep at most this many sealed captures.
        max_total_bytes: keep the store's total size under this.
        max_age_s: drop sealed captures older than this.
    """

    max_captures: int | None = None
    max_total_bytes: int | None = None
    max_age_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_captures is not None and self.max_captures < 0:
            raise ValueError("max_captures cannot be negative")
        if self.max_total_bytes is not None and self.max_total_bytes < 0:
            raise ValueError("max_total_bytes cannot be negative")
        if self.max_age_s is not None and self.max_age_s < 0:
            raise ValueError("max_age_s cannot be negative")

    @property
    def unbounded(self) -> bool:
        return (
            self.max_captures is None
            and self.max_total_bytes is None
            and self.max_age_s is None
        )


@dataclass(frozen=True)
class CaptureInfo:
    """One store entry as the listing reports it."""

    capture_id: str
    created_ts: float
    num_bytes: int
    sealed: bool
    source: str
    path: Path


class CaptureStore:
    """A directory of captures with retention and an audit trail.

    Args:
        root: the store directory (created if absent).
        policy: the default retention policy :meth:`prune` applies.
        clock: wall-clock seconds source — injectable so retention
            tests can age captures without sleeping.
    """

    def __init__(
        self,
        root: str | Path,
        policy: RetentionPolicy | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.policy = policy if policy is not None else RetentionPolicy()
        self._clock = clock
        self._id_counter = 0
        self._lock_depth = 0

    # ------------------------------------------------------------------
    # Cross-process serialization
    # ------------------------------------------------------------------

    @contextmanager
    def _lock(self) -> Iterator[None]:
        """Exclusive advisory lock over the store directory.

        Reentrant within one store instance (``create`` audits while
        already holding the lock; ``flock`` on a second fd of the same
        file would self-deadlock).  Where ``fcntl`` is unavailable the
        lock degrades to a no-op — single-writer stores are unaffected,
        and multi-process recording is a POSIX deployment anyway.
        """
        self._lock_depth += 1
        try:
            if self._lock_depth > 1 or fcntl is None:
                yield
                return
            with (self.root / STORE_LOCK_FILE).open("a") as handle:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._lock_depth -= 1

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def _audit(self, action: str, capture_id: str | None, **fields: Any) -> None:
        record: dict[str, Any] = {
            "ts": round(float(self._clock()), 6),
            "action": action,
        }
        if capture_id is not None:
            record["capture_id"] = capture_id
        record.update(fields)
        with self._lock():
            with (self.root / AUDIT_FILE).open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.events.emit("capture.audit", **record)

    def audit_records(self) -> list[dict[str, Any]]:
        """The audit trail, oldest first (small file; ops and tests)."""
        path = self.root / AUDIT_FILE
        if not path.is_file():
            return []
        records = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def new_capture_id(self) -> str:
        """A store-unique, time-sortable capture id."""
        while True:
            stamp = int(self._clock() * 1000)
            capture_id = f"cap-{stamp:013d}-{self._id_counter:03d}"
            self._id_counter += 1
            if not (self.root / capture_id).exists():
                return capture_id

    def create(
        self,
        source: str,
        config: TrackingConfig,
        sample_rate_hz: float,
        seed: int | None = None,
        use_music: bool = True,
        start_time_s: float = 0.0,
        ring_capacity: int | None = None,
        dsp_backend: str | None = None,
        extra: dict[str, Any] | None = None,
        capture_id: str | None = None,
    ) -> CaptureWriter:
        """Mint a capture and return its streaming writer.

        The header is stamped here — id, creation time, git SHA,
        config snapshot, active DSP backend — so every recording tap
        writes provenance without knowing about the store.
        ``dsp_backend`` defaults to the process-wide active backend.
        """
        with self._lock():
            # Mint and mkdir under one lock span: the id's uniqueness
            # check is only meaningful if the directory exists before
            # any concurrent writer re-runs the check.
            if capture_id is None:
                capture_id = self.new_capture_id()
            if not capture_id or "/" in capture_id or capture_id.startswith("."):
                raise CaptureFormatError(f"invalid capture id {capture_id!r}")
            header = CaptureHeader(
                capture_id=capture_id,
                created_ts=float(self._clock()),
                git_sha=git_sha(),
                seed=seed,
                sample_rate_hz=float(sample_rate_hz),
                source=source,
                config=config_to_snapshot(config),
                use_music=use_music,
                start_time_s=start_time_s,
                ring_capacity=ring_capacity,
                dsp_backend=(
                    dsp_backend
                    if dsp_backend is not None
                    else active_backend_name()
                ),
                extra=dict(extra or {}),
            )
            writer = CaptureWriter(self.root / capture_id, header)
            self._audit("create", capture_id, source=source, seed=seed)
        return writer

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _info(self, path: Path) -> CaptureInfo | None:
        header_path = path / HEADER_FILE
        if not header_path.is_file():
            return None
        try:
            header = CaptureHeader.from_dict(json.loads(header_path.read_text()))
        except (ValueError, CaptureFormatError):
            return None
        num_bytes = sum(
            entry.stat().st_size for entry in path.iterdir() if entry.is_file()
        )
        return CaptureInfo(
            capture_id=header.capture_id,
            created_ts=header.created_ts,
            num_bytes=num_bytes,
            sealed=(path / FOOTER_FILE).is_file(),
            source=header.source,
            path=path,
        )

    def list_captures(self, audit: bool = True) -> list[CaptureInfo]:
        """Every readable capture, oldest first."""
        infos = []
        for path in sorted(self.root.iterdir()):
            if not path.is_dir() or path.name.startswith("."):
                continue
            info = self._info(path)
            if info is not None:
                infos.append(info)
        infos.sort(key=lambda info: (info.created_ts, info.capture_id))
        if audit:
            self._audit("list", None, captures=len(infos))
        return infos

    def total_bytes(self) -> int:
        return sum(info.num_bytes for info in self.list_captures(audit=False))

    def open(self, capture_id: str) -> CaptureReader:
        """Open a capture for reading (audited).

        Raises:
            CaptureNotFoundError: no such capture in this store.
        """
        path = self.root / capture_id
        if not (path / HEADER_FILE).is_file():
            raise CaptureNotFoundError(
                f"store {self.root} has no capture {capture_id!r}"
            )
        reader = CaptureReader(path)
        self._audit("read", capture_id)
        return reader

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def _remove(self, info: CaptureInfo, reason: str) -> None:
        # Atomic removal: one rename makes the capture invisible to
        # every reader at once; deleting the tombstone's files can then
        # take as long as it likes (or crash — the sweep below finishes
        # the job on the next prune).
        tombstone = self.root / f"{_TOMBSTONE_PREFIX}{info.capture_id}"
        info.path.rename(tombstone)
        self._audit(
            "prune",
            info.capture_id,
            reason=reason,
            num_bytes=info.num_bytes,
            created_ts=info.created_ts,
        )
        shutil.rmtree(tombstone, ignore_errors=True)

    def _sweep_tombstones(self) -> None:
        for path in self.root.iterdir():
            if path.is_dir() and path.name.startswith(_TOMBSTONE_PREFIX):
                shutil.rmtree(path, ignore_errors=True)

    def prune(self, policy: RetentionPolicy | None = None) -> list[CaptureInfo]:
        """Enforce retention; returns the captures removed, oldest first.

        Age violations go first, then the oldest sealed captures until
        both the count and the byte bounds hold.  Unsealed captures are
        never removed (one may be a recording in progress) but still
        count against the byte bound — an abandoned half-capture
        cannot silently exempt the store from its budget.
        """
        policy = policy if policy is not None else self.policy
        with self._lock():
            return self._prune_locked(policy)

    def _prune_locked(self, policy: RetentionPolicy) -> list[CaptureInfo]:
        self._sweep_tombstones()
        if policy.unbounded:
            return []
        removed: list[CaptureInfo] = []
        infos = self.list_captures(audit=False)
        now = float(self._clock())

        def survivors() -> list[CaptureInfo]:
            return [info for info in infos if info not in removed]

        if policy.max_age_s is not None:
            for info in infos:
                if info.sealed and now - info.created_ts > policy.max_age_s:
                    self._remove(info, "age")
                    removed.append(info)
        if policy.max_captures is not None:
            keep = survivors()
            excess = len([i for i in keep if i.sealed]) - policy.max_captures
            for info in keep:
                if excess <= 0:
                    break
                if info.sealed:
                    self._remove(info, "count")
                    removed.append(info)
                    excess -= 1
        if policy.max_total_bytes is not None:
            keep = survivors()
            total = sum(info.num_bytes for info in keep)
            for info in keep:
                if total <= policy.max_total_bytes:
                    break
                if info.sealed:
                    self._remove(info, "bytes")
                    removed.append(info)
                    total -= info.num_bytes
        return removed
