"""Deterministic record/replay of sensing runs.

The capture subsystem closes the reproducibility loop around the
streaming stack: a recording tap (:mod:`repro.capture.recorder`)
writes exactly the sample stream a tracker consumed — in the
versioned, checksummed on-disk format of :mod:`repro.capture.format`
— and the replayer (:mod:`repro.capture.replayer`) feeds it back
through a rebuilt tracker, a full pipeline, or a live serve session,
proving the re-derived spectrogram columns bit-identical to the
originals.  :mod:`repro.capture.store` keeps the accumulating corpus
bounded (age/size/count retention) and audited, and
:func:`~repro.capture.replayer.promote_to_fixture` feeds the best
captures back into the regression suite as frozen fixtures — the
corpus flywheel.
"""

from repro.capture.format import (
    BUNDLE_SUFFIX,
    CAPTURE_FORMAT_VERSION,
    CaptureChunk,
    CaptureHeader,
    CaptureReader,
    CaptureWriter,
    config_from_snapshot,
    config_to_snapshot,
    write_bundle,
)
from repro.capture.recorder import CaptureRecorder, RecordingBlockSource
from repro.capture.replayer import (
    ReplayBlockSource,
    ReplayVerification,
    compare_columns,
    promote_to_fixture,
    recorded_columns,
    replay_columns,
    replay_pipeline,
    replay_serve,
    replay_serve_async,
    serve_config_overrides,
    tracker_for,
    verify_capture,
    verify_serve,
)
from repro.capture.store import CaptureInfo, CaptureStore, RetentionPolicy

__all__ = [
    "BUNDLE_SUFFIX",
    "CAPTURE_FORMAT_VERSION",
    "CaptureChunk",
    "CaptureHeader",
    "CaptureInfo",
    "CaptureReader",
    "CaptureRecorder",
    "CaptureStore",
    "CaptureWriter",
    "RecordingBlockSource",
    "ReplayBlockSource",
    "ReplayVerification",
    "RetentionPolicy",
    "compare_columns",
    "config_from_snapshot",
    "config_to_snapshot",
    "promote_to_fixture",
    "recorded_columns",
    "replay_columns",
    "replay_pipeline",
    "replay_serve",
    "replay_serve_async",
    "serve_config_overrides",
    "tracker_for",
    "verify_capture",
    "verify_serve",
    "write_bundle",
]
