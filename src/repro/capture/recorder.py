"""Recording taps: capture exactly what the tracker saw.

The recorder sits at the block boundary — *after* the source ring's
overflow policy, *before* the tracker — so a capture holds the
delivered sample stream, not the offered one.  That is the stream a
replay must reproduce: drops that happened upstream are not samples to
re-deliver, they are :class:`gap events <repro.runtime.pipeline.
GapEvent>` to re-enact (the tracker reset that
:meth:`~repro.runtime.pipeline.StreamingPipeline._check_gap` performs
live is re-performed from the recorded gap on replay).

Two taps share one :class:`CaptureRecorder`:

* :class:`RecordingBlockSource` wraps a
  :class:`~repro.runtime.ring.BlockSource` (and hence any upstream —
  an :class:`~repro.hardware.streaming.RxStreamer` or a plain chunk
  iterator).  Drop it into a :class:`~repro.runtime.pipeline.
  StreamingPipeline` as the source and the run is recorded untouched.
* The serve layer calls the recorder's verbs directly from
  :class:`~repro.serve.session.ServeSession` (``repro serve
  --record DIR``): chunks at ingest, columns at resolve, health events
  as they fire.

Gap attribution mirrors the pipeline's own bookkeeping: every drop a
``poll()`` incurs happens while pulling upstream chunks, *before* any
block of that poll is cut, so the whole drop delta is charged to the
first block the poll emits.  A poll that drops but emits nothing
carries the delta forward to the next emitted block — exactly when the
live pipeline would first observe it.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.capture.format import CaptureWriter
from repro.runtime.pipeline import DetectionEvent, HealthEvent
from repro.runtime.ring import BlockSource, SampleBlock, SampleRingBuffer
from repro.runtime.tracker import SpectrogramColumn
from repro.encoding import floats_to_bytes, pack_floats

import zlib

# Manifest event kinds written by the recorder (and consumed by the
# replayer / determinism gate).
EVENT_GAP = "gap"
EVENT_HEALTH = "health"
EVENT_COLUMN = "column"
EVENT_DETECTION = "detection"
EVENT_FAULT_SCHEDULE = "fault_schedule"
EVENT_CHAOS_SCHEDULE = "chaos_schedule"


class CaptureRecorder:
    """Typed verbs over a :class:`~repro.capture.format.CaptureWriter`.

    One recorder per capture; every verb appends a chunk or manifest
    line immediately (streaming, bounded memory).  The recorder is a
    context manager with the writer's semantics: seal on clean exit,
    leave truncated on error.
    """

    def __init__(self, writer: CaptureWriter):
        self.writer = writer

    # ------------------------------------------------------------------
    # Sample stream
    # ------------------------------------------------------------------

    def record_block(self, samples: np.ndarray, start_index: int) -> None:
        """One delivered sample block, exactly as the tracker saw it."""
        self.writer.append_chunk(samples, start_index)

    def record_gap(self, block_index: int, dropped_samples: int) -> None:
        """Samples vanished upstream just before ``block_index``.

        Replay re-enacts this as a tracker reset before pushing the
        chunk whose ``start_index`` equals ``block_index``.
        """
        self.writer.append_event(
            EVENT_GAP,
            block_index=int(block_index),
            dropped_samples=int(dropped_samples),
        )

    # ------------------------------------------------------------------
    # Outcomes (the determinism gate's reference data)
    # ------------------------------------------------------------------

    def record_column(self, column: SpectrogramColumn) -> None:
        """One emitted spectrogram column, bit-exact.

        The power vector is stored packed with its own CRC32, so the
        replay comparison (``np.array_equal``) runs against exactly the
        floats the original run produced — and a corrupted manifest
        line is caught before it silently weakens the gate.
        """
        power = np.asarray(column.power, dtype=float)
        self.writer.append_event(
            EVENT_COLUMN,
            index=int(column.index),
            start_sample=int(column.start_sample),
            time_s=float(column.time_s),
            power=pack_floats(power),
            power_crc32=zlib.crc32(floats_to_bytes(power)),
            num_sources=int(column.num_sources),
            estimator=str(column.estimator),
        )

    def record_detection(self, detection: DetectionEvent) -> None:
        self.writer.append_event(
            EVENT_DETECTION,
            column_index=int(detection.column_index),
            time_s=float(detection.time_s),
            angle_deg=float(detection.angle_deg),
            strength_db=float(detection.strength_db),
        )

    def record_health(self, event: HealthEvent) -> None:
        self.writer.append_event(
            EVENT_HEALTH,
            block_index=int(event.block_index),
            state=event.state,
            reason=event.reason,
        )

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def record_fault_schedule(self, schedule: Any) -> None:
        """The injected fault schedule (a ``FaultSchedule`` or dict)."""
        if hasattr(schedule, "events"):
            payload = {
                "seed": getattr(schedule, "seed", None),
                "duration_s": getattr(schedule, "duration_s", None),
                "events": [
                    {
                        "kind": event.kind,
                        "start_s": event.start_s,
                        "duration_s": event.duration_s,
                        "magnitude": event.magnitude,
                    }
                    for event in schedule.events
                ],
            }
        else:
            payload = dict(schedule)
        self.writer.append_event(EVENT_FAULT_SCHEDULE, schedule=payload)

    def record_chaos_schedule(self, schedule: Any) -> None:
        """The transport-chaos plan a serve run was subjected to."""
        self.writer.append_event(EVENT_CHAOS_SCHEDULE, schedule=schedule)

    def record_event(self, kind: str, **fields: Any) -> None:
        """Escape hatch for manifest events without a dedicated verb."""
        self.writer.append_event(kind, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def seal(self, **totals: Any) -> None:
        self.writer.seal(**totals)

    def abort(self) -> None:
        self.writer.abort()

    def __enter__(self) -> "CaptureRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.writer.__exit__(exc_type, exc, tb)


class RecordingBlockSource:
    """A :class:`~repro.runtime.ring.BlockSource` tap.

    Source-compatible (``poll``/``drain``/``ring``/``exhausted``/
    ``block_size``), so it drops into a
    :class:`~repro.runtime.pipeline.StreamingPipeline` unchanged.
    Every emitted block is recorded as a chunk; every upstream drop is
    recorded as a gap event charged to the first block emitted at or
    after the drop — the same attribution the pipeline's gap check
    makes live, so replay resets the tracker at the same stream
    positions the original run did.
    """

    def __init__(self, source: BlockSource, recorder: CaptureRecorder):
        self.source = source
        self.recorder = recorder
        self._dropped_recorded = source.ring.dropped_sample_count

    # Source-protocol surface ------------------------------------------

    @property
    def ring(self) -> SampleRingBuffer:
        return self.source.ring

    @property
    def block_size(self) -> int:
        return self.source.block_size

    @property
    def exhausted(self) -> bool:
        return self.source.exhausted

    @property
    def emitted_block_count(self) -> int:
        return self.source.emitted_block_count

    def poll(self) -> list[SampleBlock]:
        blocks = self.source.poll()
        if blocks:
            # All drops of this poll (and of any block-less polls
            # before it) happened while pulling, before the first block
            # was cut: charge them to that block, then record the
            # blocks themselves.
            dropped = self.source.ring.dropped_sample_count
            if dropped != self._dropped_recorded:
                self.recorder.record_gap(
                    block_index=blocks[0].start_index,
                    dropped_samples=dropped - self._dropped_recorded,
                )
                self._dropped_recorded = dropped
            for block in blocks:
                self.recorder.record_block(block.samples, block.start_index)
        return blocks

    def drain(self) -> Iterator[SampleBlock]:
        while True:
            blocks = self.poll()
            if not blocks:
                return
            yield from blocks
