"""The versioned, chunked on-disk capture format.

A capture records what the tracker saw — the exact sample blocks, plus
the metadata needed to interpret and replay them — in a layout that
can be written and read as a stream: neither side ever holds a whole
capture in memory.

**Directory layout.**  A capture is a directory of four files::

    <capture_id>/
        header.json       one JSON object: format version, capture id,
                          git SHA, seed, sample rate, config snapshot
        samples.ndjson    one line per sample chunk: sequence number,
                          stream start index, packed little-endian
                          float64 samples (the repro.encoding codec
                          the serve wire already proved bit-exact),
                          and a CRC32 over the raw packed bytes
        manifest.ndjson   one line per metadata event: recorded
                          spectrogram columns, health transitions,
                          stream gaps, fault/chaos schedules
        footer.json       totals + ``"sealed": true`` — its presence
                          is the capture's completeness marker

A capture without a footer is *truncated* (the recorder died
mid-write); readers surface that as a typed
:class:`~repro.errors.CaptureIntegrityError` rather than silently
replaying a partial stream.

**Bundle layout.**  :func:`write_bundle` freezes a capture into a
single gzip-compressed NDJSON file (suffix ``.capture.ndjson.gz``)
whose records carry a ``"record"`` tag (``header``/``chunk``/``event``/
``footer``).  Bundles are the portable form — regression fixtures
under ``tests/fixtures/captures/`` — and :class:`CaptureReader` opens
either layout through the same API.

Every stored float crosses through :mod:`repro.encoding`, so a
capture read back is bit-identical to what was recorded: the
determinism gate (:mod:`repro.capture.replayer`) builds on exactly
that property.
"""

from __future__ import annotations

import gzip
import json
import subprocess
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterator

import numpy as np

from repro.core.tracking import TrackingConfig
from repro.encoding import pack_floats, samples_from_bytes, samples_to_bytes
from repro.errors import CaptureFormatError, CaptureIntegrityError, ProtocolError
from repro.telemetry.events import jsonable

#: Current (and only) capture format version.  Readers reject other
#: versions with a typed error instead of guessing.
CAPTURE_FORMAT_VERSION = 1

HEADER_FILE = "header.json"
SAMPLES_FILE = "samples.ndjson"
MANIFEST_FILE = "manifest.ndjson"
FOOTER_FILE = "footer.json"

#: Suffix of single-file capture bundles (fixtures, artifacts).
BUNDLE_SUFFIX = ".capture.ndjson.gz"

#: TrackingConfig fields frozen into a capture header, in a stable
#: order.  Every field is a JSON scalar, so the snapshot round-trips
#: bit-exactly (floats serialize via repr).
CONFIG_SNAPSHOT_FIELDS = (
    "window_size",
    "hop",
    "assumed_speed_mps",
    "sample_period_s",
    "subarray_size",
    "max_sources",
    "theta_step_deg",
    "wavelength_m",
    "condition_limit",
)


def git_sha() -> str:
    """The current commit hash, or "unknown" outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def config_to_snapshot(config: TrackingConfig) -> dict[str, Any]:
    """Freeze a :class:`TrackingConfig` into its header snapshot."""
    return {name: getattr(config, name) for name in CONFIG_SNAPSHOT_FIELDS}


def config_from_snapshot(snapshot: dict[str, Any]) -> TrackingConfig:
    """Rebuild the :class:`TrackingConfig` a capture was recorded with.

    Raises:
        CaptureFormatError: unknown fields, missing fields, or a
            combination the config itself rejects.
    """
    if not isinstance(snapshot, dict):
        raise CaptureFormatError("config snapshot must be a JSON object")
    unknown = sorted(set(snapshot) - set(CONFIG_SNAPSHOT_FIELDS))
    if unknown:
        raise CaptureFormatError(
            f"config snapshot has unknown field(s): {', '.join(unknown)}"
        )
    missing = sorted(set(CONFIG_SNAPSHOT_FIELDS) - set(snapshot))
    if missing:
        raise CaptureFormatError(
            f"config snapshot is missing field(s): {', '.join(missing)}"
        )
    try:
        return TrackingConfig(**snapshot)
    except (TypeError, ValueError) as exc:
        raise CaptureFormatError(f"invalid config snapshot: {exc}") from None


@dataclass(frozen=True)
class CaptureHeader:
    """Everything needed to interpret (and replay) a capture's chunks.

    Attributes:
        capture_id: the store-unique name of this capture.
        created_ts: wall-clock seconds when recording started.
        git_sha: the commit the recording process ran.
        seed: the run's top-level random seed (None when unseeded).
        sample_rate_hz: channel-sample rate of the recorded stream.
        source: which tap recorded it ("stream", "serve", ...).
        config: the :data:`CONFIG_SNAPSHOT_FIELDS` snapshot.
        use_music: estimator family of the original run.
        start_time_s: the tracker's time origin.
        ring_capacity: tracker ring sizing of the original run (replay
            rebuilds the same tracker; None = the tracker default).
        dsp_backend: name of the DSP backend the recording process was
            running — replay on the same backend reproduces columns
            bit for bit; a different backend reproduces them within
            that backend's budget.  None on captures recorded before
            backends existed (treated as the float64 default).
        extra: free-form provenance (fault seed, session id, ...).
        format_version: on-disk layout version.
    """

    capture_id: str
    created_ts: float
    git_sha: str
    seed: int | None
    sample_rate_hz: float
    source: str
    config: dict[str, Any]
    use_music: bool = True
    start_time_s: float = 0.0
    ring_capacity: int | None = None
    dsp_backend: str | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    format_version: int = CAPTURE_FORMAT_VERSION

    def tracking_config(self) -> TrackingConfig:
        return config_from_snapshot(self.config)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": self.format_version,
            "capture_id": self.capture_id,
            "created_ts": self.created_ts,
            "git_sha": self.git_sha,
            "seed": self.seed,
            "sample_rate_hz": self.sample_rate_hz,
            "source": self.source,
            "config": dict(self.config),
            "use_music": self.use_music,
            "start_time_s": self.start_time_s,
            "ring_capacity": self.ring_capacity,
            "dsp_backend": self.dsp_backend,
            "extra": jsonable(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "CaptureHeader":
        """Parse and validate a header record.

        Raises:
            CaptureFormatError: not an object, wrong types, or an
                unsupported format version.
        """
        if not isinstance(payload, dict):
            raise CaptureFormatError("capture header must be a JSON object")
        version = payload.get("format_version")
        if version != CAPTURE_FORMAT_VERSION:
            raise CaptureFormatError(
                f"unsupported capture format version {version!r} "
                f"(this reader speaks version {CAPTURE_FORMAT_VERSION})"
            )
        try:
            capture_id = payload["capture_id"]
            if not isinstance(capture_id, str) or not capture_id:
                raise ValueError("capture_id must be a non-empty string")
            seed = payload.get("seed")
            if seed is not None:
                seed = int(seed)
            ring_capacity = payload.get("ring_capacity")
            if ring_capacity is not None:
                ring_capacity = int(ring_capacity)
            config = payload["config"]
            if not isinstance(config, dict):
                raise ValueError("config must be a JSON object")
            extra = payload.get("extra", {})
            if not isinstance(extra, dict):
                raise ValueError("extra must be a JSON object")
            dsp_backend = payload.get("dsp_backend")
            if dsp_backend is not None:
                dsp_backend = str(dsp_backend)
            return cls(
                capture_id=capture_id,
                created_ts=float(payload["created_ts"]),
                git_sha=str(payload.get("git_sha", "unknown")),
                seed=seed,
                sample_rate_hz=float(payload["sample_rate_hz"]),
                source=str(payload.get("source", "unknown")),
                config=config,
                use_music=bool(payload.get("use_music", True)),
                start_time_s=float(payload.get("start_time_s", 0.0)),
                ring_capacity=ring_capacity,
                dsp_backend=dsp_backend,
                extra=extra,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CaptureFormatError(f"malformed capture header: {exc}") from None


@dataclass(frozen=True)
class CaptureChunk:
    """One verified sample chunk read back from a capture."""

    seq: int
    start_index: int
    samples: np.ndarray

    def __len__(self) -> int:
        return len(self.samples)


def _dump(payload: dict[str, Any]) -> str:
    return json.dumps(payload, separators=(",", ":"))


class CaptureWriter:
    """Streams one capture to disk, chunk by chunk.

    Opens the directory eagerly, appends each chunk/event line as it
    arrives (bounded memory no matter how long the recording runs),
    and writes the footer on :meth:`seal`.  As a context manager it
    seals on clean exit and leaves the capture *unsealed* when the
    body raised — an honest record of a recording that died, which
    readers report as truncated.
    """

    def __init__(self, path: str | Path, header: CaptureHeader):
        self.path = Path(path)
        self.header = header
        if self.path.exists():
            raise CaptureFormatError(f"capture path {self.path} already exists")
        self.path.mkdir(parents=True)
        (self.path / HEADER_FILE).write_text(
            json.dumps(header.to_dict(), indent=2) + "\n"
        )
        self._samples: IO[str] | None = (self.path / SAMPLES_FILE).open(
            "w", encoding="utf-8"
        )
        self._manifest: IO[str] | None = (self.path / MANIFEST_FILE).open(
            "w", encoding="utf-8"
        )
        self.num_chunks = 0
        self.num_samples = 0
        self.num_events = 0
        self.sealed = False

    def _require_open(self) -> None:
        if self._samples is None or self._manifest is None:
            raise CaptureFormatError(
                f"capture {self.header.capture_id} is already sealed"
            )

    def append_chunk(self, samples: np.ndarray, start_index: int) -> dict[str, Any]:
        """Record one sample block exactly as the consumer saw it."""
        self._require_open()
        samples = np.asarray(samples, dtype=complex)
        if samples.ndim != 1 or len(samples) == 0:
            raise ValueError("a chunk must be a non-empty 1-D sample array")
        raw = samples_to_bytes(samples)
        record = {
            "seq": self.num_chunks,
            "start_index": int(start_index),
            "num_samples": len(samples),
            "crc32": zlib.crc32(raw),
            "samples": pack_floats(np.frombuffer(raw, dtype="<f8")),
        }
        self._samples.write(_dump(record) + "\n")
        self.num_chunks += 1
        self.num_samples += len(samples)
        return record

    def append_event(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one manifest event (column, health, gap, schedule...)."""
        self._require_open()
        if not kind:
            raise ValueError("event kind must be a non-empty string")
        record = {"seq": self.num_events, "kind": str(kind)}
        for key, value in fields.items():
            record[key] = jsonable(value)
        self._manifest.write(_dump(record) + "\n")
        self.num_events += 1
        return record

    def seal(self, **totals: Any) -> dict[str, Any]:
        """Close the streams and write the completeness footer."""
        self._require_open()
        self._samples.close()
        self._manifest.close()
        self._samples = None
        self._manifest = None
        footer = {
            "sealed": True,
            "num_chunks": self.num_chunks,
            "num_samples": self.num_samples,
            "num_events": self.num_events,
        }
        for key, value in totals.items():
            footer[key] = jsonable(value)
        (self.path / FOOTER_FILE).write_text(json.dumps(footer, indent=2) + "\n")
        self.sealed = True
        return footer

    def abort(self) -> None:
        """Close the streams without sealing (the capture stays truncated)."""
        if self._samples is not None:
            self._samples.close()
            self._samples = None
        if self._manifest is not None:
            self._manifest.close()
            self._manifest = None

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self.sealed:
            self.seal()


def _parse_line(line: str, where: str, number: int) -> dict[str, Any]:
    try:
        record = json.loads(line)
    except ValueError:
        raise CaptureIntegrityError(
            f"{where} line {number} is not valid JSON (truncated capture?)"
        ) from None
    if not isinstance(record, dict):
        raise CaptureFormatError(f"{where} line {number} must be a JSON object")
    return record


def _decode_chunk(record: dict[str, Any], where: str) -> CaptureChunk:
    """Verify and decode one chunk record.

    Raises:
        CaptureFormatError: the record is missing fields.
        CaptureIntegrityError: bad base64, CRC mismatch, or a sample
            count that contradicts the payload.
    """
    try:
        seq = int(record["seq"])
        start_index = int(record["start_index"])
        num_samples = int(record["num_samples"])
        crc = int(record["crc32"])
        payload = record["samples"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CaptureFormatError(f"malformed chunk record in {where}: {exc}") from None
    if not isinstance(payload, str):
        raise CaptureFormatError(f"chunk {seq} in {where} must pack its samples")
    try:
        import base64 as _base64

        raw = _base64.b64decode(payload.encode("ascii"), validate=True)
    except Exception:
        raise CaptureIntegrityError(
            f"chunk {seq} in {where} is not valid base64"
        ) from None
    if zlib.crc32(raw) != crc:
        raise CaptureIntegrityError(
            f"chunk {seq} in {where} fails its CRC32 check (stored {crc})"
        )
    try:
        samples = samples_from_bytes(raw)
    except ProtocolError as exc:
        raise CaptureIntegrityError(f"chunk {seq} in {where}: {exc}") from None
    if len(samples) != num_samples:
        raise CaptureIntegrityError(
            f"chunk {seq} in {where} decodes to {len(samples)} samples, "
            f"record claims {num_samples}"
        )
    return CaptureChunk(seq=seq, start_index=start_index, samples=samples)


class CaptureReader:
    """Streaming reader over either capture layout (directory or bundle).

    Chunk iteration verifies as it goes — CRC32, base64 validity,
    sample counts, and sequence contiguity — so a corrupt or truncated
    capture raises a typed error at the first bad record instead of
    feeding damaged samples to a tracker.  Iterators re-open their
    file on every call; nothing is cached in memory.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.is_bundle = self.path.name.endswith(BUNDLE_SUFFIX)
        if self.is_bundle:
            if not self.path.is_file():
                raise CaptureFormatError(f"no capture bundle at {self.path}")
        elif not (self.path / HEADER_FILE).is_file():
            raise CaptureFormatError(f"no capture header under {self.path}")
        self.header = CaptureHeader.from_dict(self._read_header())
        self.footer = self._read_footer()

    # ------------------------------------------------------------------
    # Layout plumbing
    # ------------------------------------------------------------------

    def _bundle_records(self, tag: str) -> Iterator[dict[str, Any]]:
        with gzip.open(self.path, "rt", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = _parse_line(line, self.path.name, number)
                if record.get("record") == tag:
                    yield record

    def _file_records(self, name: str) -> Iterator[dict[str, Any]]:
        path = self.path / name
        if not path.is_file():
            return
        with path.open("r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                yield _parse_line(line, name, number)

    def _read_header(self) -> Any:
        if self.is_bundle:
            for record in self._bundle_records("header"):
                return {k: v for k, v in record.items() if k != "record"}
            raise CaptureFormatError(f"bundle {self.path.name} has no header record")
        try:
            return json.loads((self.path / HEADER_FILE).read_text())
        except ValueError:
            raise CaptureFormatError(
                f"unparsable capture header under {self.path}"
            ) from None

    def _read_footer(self) -> dict[str, Any] | None:
        if self.is_bundle:
            for record in self._bundle_records("footer"):
                return {k: v for k, v in record.items() if k != "record"}
            return None
        path = self.path / FOOTER_FILE
        if not path.is_file():
            return None
        try:
            footer = json.loads(path.read_text())
        except ValueError:
            raise CaptureIntegrityError(
                f"unparsable capture footer under {self.path}"
            ) from None
        if not isinstance(footer, dict):
            raise CaptureFormatError("capture footer must be a JSON object")
        return footer

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether the recorder finished cleanly (footer present)."""
        return self.footer is not None and bool(self.footer.get("sealed"))

    def require_sealed(self) -> None:
        """Raise the typed truncation error unless the capture sealed."""
        if not self.sealed:
            raise CaptureIntegrityError(
                f"capture {self.header.capture_id} is truncated: no footer "
                "(the recorder did not seal it)"
            )

    def iter_chunks(self) -> Iterator[CaptureChunk]:
        """Verified sample chunks, in recording order.

        Raises:
            CaptureIntegrityError: CRC mismatch, bad payload, or a
                sequence discontinuity (a dropped or re-ordered line).
        """
        where = SAMPLES_FILE if not self.is_bundle else self.path.name
        records = (
            self._bundle_records("chunk")
            if self.is_bundle
            else self._file_records(SAMPLES_FILE)
        )
        expected_seq = 0
        for record in records:
            chunk = _decode_chunk(record, where)
            if chunk.seq != expected_seq:
                raise CaptureIntegrityError(
                    f"chunk sequence jumps from {expected_seq} to {chunk.seq} "
                    f"in {where} (missing or re-ordered chunk)"
                )
            expected_seq += 1
            yield chunk

    def iter_events(self, kind: str | None = None) -> Iterator[dict[str, Any]]:
        """Manifest events in recording order, optionally one kind."""
        records = (
            self._bundle_records("event")
            if self.is_bundle
            else self._file_records(MANIFEST_FILE)
        )
        for record in records:
            if kind is None or record.get("kind") == kind:
                if self.is_bundle:
                    record = {k: v for k, v in record.items() if k != "record"}
                yield record

    def events(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Manifest events as a list (small captures / tests)."""
        return list(self.iter_events(kind))

    def verify(self) -> dict[str, Any]:
        """Walk the whole capture, checking every record and the totals.

        Returns the verified totals (chunks, samples, events).

        Raises:
            CaptureIntegrityError: truncation, corrupt chunk, or a
                footer whose totals contradict the files.
        """
        self.require_sealed()
        num_chunks = 0
        num_samples = 0
        for chunk in self.iter_chunks():
            num_chunks += 1
            num_samples += len(chunk)
        num_events = sum(1 for _ in self.iter_events())
        assert self.footer is not None
        for name, counted in (
            ("num_chunks", num_chunks),
            ("num_samples", num_samples),
            ("num_events", num_events),
        ):
            stored = self.footer.get(name)
            if stored is not None and int(stored) != counted:
                raise CaptureIntegrityError(
                    f"capture {self.header.capture_id} footer claims "
                    f"{name}={stored} but the files hold {counted}"
                )
        return {
            "num_chunks": num_chunks,
            "num_samples": num_samples,
            "num_events": num_events,
        }


def write_bundle(reader: CaptureReader, dest: str | Path) -> Path:
    """Freeze a capture into a single compressed bundle file.

    The bundle interleaves nothing: header record, then every chunk,
    then every event, then the footer, each line tagged ``"record"``.
    ``mtime=0`` keeps the gzip byte-identical across rebuilds, so a
    promoted fixture diffs cleanly in review.

    Raises:
        CaptureIntegrityError: the source capture is truncated.
    """
    reader.require_sealed()
    dest = Path(dest)
    if not dest.name.endswith(BUNDLE_SUFFIX):
        raise CaptureFormatError(f"bundle name must end with {BUNDLE_SUFFIX}")
    dest.parent.mkdir(parents=True, exist_ok=True)
    # filename="" keeps the gzip FNAME field out of the header (and
    # mtime=0 the timestamp), so identical content means identical
    # bytes whatever the bundle is called.
    with dest.open("wb") as sink, gzip.GzipFile(
        filename="", mode="wb", fileobj=sink, mtime=0
    ) as raw:
        def write(record: dict[str, Any]) -> None:
            raw.write((_dump(record) + "\n").encode("utf-8"))

        write({"record": "header", **reader.header.to_dict()})
        where = "bundle source"
        records = (
            reader._bundle_records("chunk")
            if reader.is_bundle
            else reader._file_records(SAMPLES_FILE)
        )
        for record in records:
            _decode_chunk(record, where)  # verify before freezing
            write({"record": "chunk", **{k: v for k, v in record.items() if k != "record"}})
        for record in reader.iter_events():
            write({"record": "event", **{k: v for k, v in record.items() if k != "record"}})
        assert reader.footer is not None
        write({"record": "footer", **reader.footer})
    return dest
