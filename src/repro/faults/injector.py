"""Applies a fault schedule at the hardware boundary.

The injector corrupts *captures* (sample arrays / ``ChannelSeries``)
and *streams* (``RxStreamer``), which is where real faults enter: the
DSP layers downstream — screening, MUSIC, tracking, the health machine
— then get exercised against realistic damage rather than synthetic
unit-test inputs.

All corruption parameters come from the :class:`FaultEvent` itself, so
injection is a pure function of (schedule, clean samples): replaying a
seed replays the identical fault log.

Per-kind semantics:

* ``NAN_BURST`` — samples in the window become NaN (a DMA error or a
  driver bug handing back poisoned buffers).
* ``ADC_SATURATION`` — both rails clip at ``magnitude`` x the clean
  window's RMS amplitude: the flash re-entering after nulling erosion.
* ``OVERFLOW_STORM`` — the host drops ``magnitude`` of the window's
  samples; the receiver delivers zeros in their place (the UHD 'O').
* ``CLOCK_JUMP`` — every sample after ``start_s`` rotates by
  ``exp(j * magnitude)``: the shared reference glitched.
* ``GAIN_DROPOUT`` — samples in the window scale by ``magnitude``
  (an antenna/LNA brown-out).
* ``CHANNEL_STEP`` — a DC offset of ``magnitude`` x the capture's mean
  amplitude is added from ``start_s`` onward: a door opened and the
  static channel stepped away from the calibrated null.  Unlike the
  other kinds, a step *persists* across captures — the door stays
  open — until the device recalibrates
  (:meth:`FaultInjector.notify_recalibrated`), at which point the new
  null absorbs it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.hardware.streaming import RxStreamer
from repro.simulator.timeseries import ChannelSeries
from repro.telemetry.context import get_telemetry


@dataclass(frozen=True)
class FaultLogEntry:
    """One applied fault, as recorded by the injector."""

    time_s: float
    kind: FaultKind
    samples_touched: int
    detail: str

    def describe(self) -> str:
        return (
            f"{self.time_s:.3f}s {self.kind.value}: "
            f"{self.samples_touched} samples ({self.detail})"
        )


class FaultInjector:
    """Stateless-per-event applier of a :class:`FaultSchedule`.

    The injector keeps an append-only ``log`` of every event it
    actually applied (an event scheduled outside all captured windows
    never fires), which the determinism acceptance test compares
    across runs.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.log: list[FaultLogEntry] = []
        # Channel steps earlier than this are absorbed into the null by
        # a recalibration and no longer corrupt captures.
        self._nulled_until_s = 0.0

    # ------------------------------------------------------------------
    # Capture-path injection
    # ------------------------------------------------------------------

    def corrupt(self, samples: np.ndarray, times_s: np.ndarray) -> np.ndarray:
        """Corrupt a capture whose samples sit at absolute ``times_s``.

        Returns a new array; the input is never mutated.
        """
        samples = np.array(samples, dtype=complex)
        times_s = np.asarray(times_s, dtype=float)
        if samples.shape != times_s.shape:
            raise ValueError("samples and times must align")
        if len(samples) == 0:
            return samples
        t0 = float(times_s[0])
        period = float(times_s[1] - times_s[0]) if len(times_s) > 1 else 0.0
        t1 = float(times_s[-1]) + period
        for event in self.schedule.events_between(t0, t1):
            if event.kind is FaultKind.CHANNEL_STEP:
                continue  # persistent; handled below
            samples = self._apply(event, samples, times_s)
        return self._apply_channel_steps(samples, times_s, t1)

    def corrupt_series(self, series: ChannelSeries, start_s: float) -> ChannelSeries:
        """Corrupt a :class:`ChannelSeries` captured at device-clock
        ``start_s`` (series timestamps are capture-relative)."""
        corrupted = self.corrupt(series.samples, series.times_s + start_s)
        return replace(series, samples=corrupted)

    # ------------------------------------------------------------------
    # Stream-path injection
    # ------------------------------------------------------------------

    def storm_streamer(self, streamer: RxStreamer, event: FaultEvent) -> int:
        """Apply an overflow storm to a live receive stream: drop the
        configured fraction of queued buffers, oldest first.  Returns
        buffers dropped."""
        if event.kind is not FaultKind.OVERFLOW_STORM:
            raise ValueError("streamer storms take OVERFLOW_STORM events")
        target = max(int(round(event.magnitude * len(streamer))), 1)
        dropped = 0
        for _ in range(target):
            if streamer.drop_oldest() is None:
                break
            dropped += 1
        if dropped:
            self._record(event, dropped, f"dropped {dropped} buffers")
        return dropped

    # ------------------------------------------------------------------
    # Recovery hooks
    # ------------------------------------------------------------------

    def notify_recalibrated(self, time_s: float) -> None:
        """A recalibration at device-clock ``time_s`` re-nulled the
        static channel: every channel step so far is absorbed."""
        self._nulled_until_s = max(self._nulled_until_s, float(time_s))

    # ------------------------------------------------------------------
    # Per-kind application
    # ------------------------------------------------------------------

    def _apply(
        self, event: FaultEvent, samples: np.ndarray, times_s: np.ndarray
    ) -> np.ndarray:
        if event.duration_s == 0.0:
            mask = times_s >= event.start_s
        else:
            mask = (times_s >= event.start_s) & (times_s < event.end_s)
        touched = int(np.count_nonzero(mask))
        if touched == 0:
            return samples

        if event.kind is FaultKind.NAN_BURST:
            samples[mask] = complex(np.nan, np.nan)
            self._record(event, touched, "samples poisoned to NaN")
        elif event.kind is FaultKind.ADC_SATURATION:
            finite = samples[np.isfinite(samples)]
            rms = float(np.sqrt(np.mean(np.abs(finite) ** 2))) if len(finite) else 1.0
            rail = max(event.magnitude * rms, np.finfo(float).tiny)
            clipped = np.clip(samples[mask].real, -rail, rail) + 1j * np.clip(
                samples[mask].imag, -rail, rail
            )
            samples[mask] = clipped
            self._record(event, touched, f"rails clipped at {rail:.3g}")
        elif event.kind is FaultKind.OVERFLOW_STORM:
            indices = np.flatnonzero(mask)
            drop = indices[: max(int(round(event.magnitude * len(indices))), 1)]
            samples[drop] = 0.0
            self._record(event, len(drop), "samples lost to overflow")
        elif event.kind is FaultKind.CLOCK_JUMP:
            samples[mask] *= np.exp(1j * event.magnitude)
            self._record(event, touched, f"phase jumped {event.magnitude:.2f} rad")
        elif event.kind is FaultKind.GAIN_DROPOUT:
            samples[mask] *= event.magnitude
            self._record(event, touched, f"gain dropped to {event.magnitude:g}x")
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unknown fault kind {event.kind}")
        return samples

    def _apply_channel_steps(
        self, samples: np.ndarray, times_s: np.ndarray, t1: float
    ) -> np.ndarray:
        """Apply every un-absorbed channel step active before ``t1``."""
        for event in self.schedule.events:
            if event.kind is not FaultKind.CHANNEL_STEP:
                continue
            if event.start_s <= self._nulled_until_s or event.start_s >= t1:
                continue
            mask = times_s >= event.start_s
            touched = int(np.count_nonzero(mask))
            if touched == 0:
                continue
            finite = samples[np.isfinite(samples)]
            scale = float(np.mean(np.abs(finite))) if len(finite) else 1.0
            # Deterministic step phase derived from the event time.
            phase = 2.0 * np.pi * (event.start_s - np.floor(event.start_s))
            samples[mask] += event.magnitude * scale * np.exp(1j * phase)
            self._record(event, touched, "static channel stepped")
        return samples

    def _record(self, event: FaultEvent, touched: int, detail: str) -> None:
        self.log.append(
            FaultLogEntry(
                time_s=event.start_s,
                kind=event.kind,
                samples_touched=touched,
                detail=detail,
            )
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("faults.injected").inc()
            telemetry.events.emit(
                "fault.injected",
                time_s=event.start_s,
                fault=event.kind.value,
                samples_touched=touched,
                detail=detail,
            )

    def describe_log(self) -> list[str]:
        """The applied-fault log as deterministic strings."""
        return [entry.describe() for entry in self.log]
