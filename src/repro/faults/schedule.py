"""Seeded fault schedules: deterministic event lists per fault kind.

Each fault kind arrives as a Poisson process with a configured rate;
event times, durations, and magnitudes are drawn from a per-kind child
generator seeded as ``(seed, kind_index)``, so the schedule for one
kind never depends on how many events another kind drew.  Two calls to
:meth:`FaultSchedule.generate` with the same config, duration, and
seed produce *identical* schedules — the property the determinism
acceptance test pins down.

Default rates (events per second) model a struggling but not hopeless
host: roughly one fault somewhere every four seconds of capture.  They
are documented in DESIGN.md ("Failure model and recovery policy").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class FaultKind(enum.Enum):
    """The fault taxonomy injected at the hardware boundary."""

    NAN_BURST = "nan-burst"
    ADC_SATURATION = "adc-saturation"
    OVERFLOW_STORM = "overflow-storm"
    CLOCK_JUMP = "clock-jump"
    GAIN_DROPOUT = "gain-dropout"
    CHANNEL_STEP = "channel-step"


#: Stable ordering used both for child-generator seeding and for
#: tie-breaking events that start at the same instant.
_KIND_ORDER: tuple[FaultKind, ...] = (
    FaultKind.NAN_BURST,
    FaultKind.ADC_SATURATION,
    FaultKind.OVERFLOW_STORM,
    FaultKind.CLOCK_JUMP,
    FaultKind.GAIN_DROPOUT,
    FaultKind.CHANNEL_STEP,
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        kind: which failure mode fires.
        start_s: absolute start time on the device clock.
        duration_s: how long the episode lasts (0 for instantaneous
            events such as clock jumps and channel steps).
        magnitude: kind-specific strength — see
            :class:`repro.faults.injector.FaultInjector` for the
            interpretation per kind.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    magnitude: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the event touches the half-open window [t0, t1)."""
        if self.duration_s == 0.0:
            return t0 <= self.start_s < t1
        return self.start_s < t1 and self.end_s > t0

    def describe(self) -> str:
        return (
            f"{self.kind.value} @ {self.start_s:.3f}s "
            f"dur={self.duration_s:.3f}s mag={self.magnitude:.3g}"
        )


@dataclass(frozen=True)
class FaultScheduleConfig:
    """Arrival rates and magnitudes of the injected fault mix.

    The per-kind ``*_rate_hz`` values are Poisson arrival rates in
    events per second of capture; ``rate_scale`` multiplies all of
    them, so experiments can sweep overall fault pressure with one
    knob.  Magnitude knobs:

    Attributes:
        nan_burst_duration_s: length of each NaN/Inf burst.
        saturation_duration_s: length of each ADC saturation episode.
        saturation_clip_factor: rail level as a fraction of the clean
            window's RMS amplitude (values < 1 clip hard).
        overflow_drop_fraction: fraction of the affected window's
            samples the host drops during an overflow storm.
        clock_jump_max_rad: clock jumps draw a phase in
            [0.25, clock_jump_max_rad] radians (uniform).
        dropout_duration_s: length of an antenna-gain dropout.
        dropout_gain: linear amplitude factor during a dropout
            (0.1 = a 20 dB gain loss).
        channel_step_factor: size of a static-channel step (a door
            opens) relative to the capture's mean amplitude.
    """

    nan_burst_rate_hz: float = 0.08
    adc_saturation_rate_hz: float = 0.05
    overflow_storm_rate_hz: float = 0.05
    clock_jump_rate_hz: float = 0.03
    gain_dropout_rate_hz: float = 0.04
    channel_step_rate_hz: float = 0.02
    rate_scale: float = 1.0

    nan_burst_duration_s: float = 0.08
    saturation_duration_s: float = 0.25
    saturation_clip_factor: float = 0.4
    overflow_duration_s: float = 0.3
    overflow_drop_fraction: float = 1.0
    clock_jump_max_rad: float = 3.0
    dropout_duration_s: float = 0.5
    dropout_gain: float = 0.1
    channel_step_factor: float = 4.0

    def __post_init__(self) -> None:
        for name, rate in self.rates_hz().items():
            if rate < 0:
                raise ValueError(f"{name} rate must be non-negative")
        if self.rate_scale < 0:
            raise ValueError("rate scale must be non-negative")
        if not 0 < self.overflow_drop_fraction <= 1:
            raise ValueError("overflow drop fraction must be in (0, 1]")
        if self.dropout_gain < 0 or self.saturation_clip_factor <= 0:
            raise ValueError("gains and clip factors must be positive")

    def rates_hz(self) -> dict[FaultKind, float]:
        """Effective per-kind arrival rates (after ``rate_scale``)."""
        return {
            FaultKind.NAN_BURST: self.nan_burst_rate_hz * self.rate_scale,
            FaultKind.ADC_SATURATION: self.adc_saturation_rate_hz * self.rate_scale,
            FaultKind.OVERFLOW_STORM: self.overflow_storm_rate_hz * self.rate_scale,
            FaultKind.CLOCK_JUMP: self.clock_jump_rate_hz * self.rate_scale,
            FaultKind.GAIN_DROPOUT: self.gain_dropout_rate_hz * self.rate_scale,
            FaultKind.CHANNEL_STEP: self.channel_step_rate_hz * self.rate_scale,
        }

    def _duration_magnitude(
        self, kind: FaultKind, rng: np.random.Generator
    ) -> tuple[float, float]:
        if kind is FaultKind.NAN_BURST:
            return self.nan_burst_duration_s, 0.0
        if kind is FaultKind.ADC_SATURATION:
            return self.saturation_duration_s, self.saturation_clip_factor
        if kind is FaultKind.OVERFLOW_STORM:
            return self.overflow_duration_s, self.overflow_drop_fraction
        if kind is FaultKind.CLOCK_JUMP:
            return 0.0, float(rng.uniform(0.25, self.clock_jump_max_rad))
        if kind is FaultKind.GAIN_DROPOUT:
            return self.dropout_duration_s, self.dropout_gain
        return 0.0, self.channel_step_factor  # CHANNEL_STEP


@dataclass(frozen=True)
class FaultSchedule:
    """A sorted, immutable list of fault events over a capture span.

    Build one deterministically with :meth:`generate`, or construct
    directly from explicit events (tests and scripted scenarios).
    """

    events: tuple[FaultEvent, ...]
    duration_s: float
    seed: int | None = None

    @classmethod
    def generate(
        cls,
        config: FaultScheduleConfig,
        duration_s: float,
        seed: int,
    ) -> FaultSchedule:
        """Draw a schedule: Poisson arrivals per kind, seeded per kind."""
        if duration_s <= 0:
            raise ValueError("schedule duration must be positive")
        events: list[FaultEvent] = []
        rates = config.rates_hz()
        for index, kind in enumerate(_KIND_ORDER):
            rate = rates[kind]
            if rate == 0:
                continue
            rng = np.random.default_rng([int(seed), index])
            count = int(rng.poisson(rate * duration_s))
            starts = np.sort(rng.uniform(0.0, duration_s, count))
            for start in starts:
                duration, magnitude = config._duration_magnitude(kind, rng)
                events.append(
                    FaultEvent(
                        kind=kind,
                        start_s=float(start),
                        duration_s=duration,
                        magnitude=magnitude,
                    )
                )
        events.sort(key=lambda e: (e.start_s, _KIND_ORDER.index(e.kind)))
        return cls(events=tuple(events), duration_s=duration_s, seed=seed)

    def events_between(self, t0: float, t1: float) -> list[FaultEvent]:
        """Events overlapping the half-open window [t0, t1)."""
        if t1 <= t0:
            raise ValueError("window must have positive length")
        return [event for event in self.events if event.overlaps(t0, t1)]

    def describe(self) -> list[str]:
        """Human-readable, deterministic event log."""
        return [event.describe() for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


def scheduled_fault_count(
    config: FaultScheduleConfig, duration_s: float
) -> float:
    """Expected number of events a schedule of this length draws."""
    return sum(config.rates_hz().values()) * duration_s
