"""Deterministic fault injection for the Wi-Vi sensing stack.

The subsystem has two halves:

* :mod:`repro.faults.schedule` — seeded, fully deterministic fault
  *schedules*: Poisson-arrival event lists per fault kind (NaN bursts,
  ADC saturation, overflow storms, clock jumps, antenna-gain dropouts,
  static-channel steps).
* :mod:`repro.faults.injector` — the *injector* that applies a
  schedule's events to captures and streams at the hardware boundary,
  keeping an event log so two runs with one seed are bit-comparable.

The recovery side lives in :mod:`repro.core.monitoring`
(health-state machine, capture screening) and the estimator fallback
in :mod:`repro.core.tracking`.
"""

from repro.faults.injector import FaultInjector, FaultLogEntry
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FaultScheduleConfig,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLogEntry",
    "FaultSchedule",
    "FaultScheduleConfig",
]
