"""Command-line interface: ``python -m repro <command>``.

Subcommands, one per headline capability:

* ``track``     — image a moving person through a wall (mode 1, §3.2).
* ``stream``    — the same imaging, online: spectrogram columns emitted
  block by block as the samples arrive (the `repro.runtime` engine).
* ``gestures``  — decode a gestured bit sequence (mode 2, Chapter 6).
* ``count``     — train and run the §7.4 occupant counter.
* ``materials`` — the §7.6 building-material sweep.
* ``nulling``   — run Algorithm 1 and report the achieved depth.
* ``serve``     — the multi-session sensing service: an asyncio TCP
  server micro-batching MUSIC windows across sessions (`repro.serve`).
* ``load``      — drive a running ``serve`` with N concurrent sessions
  and report throughput, latency percentiles, and batch occupancy.
* ``telemetry-report`` — summarize a ``--telemetry`` run directory.

Every command accepts ``--seed`` for reproducibility and prints ASCII
renderings of what the paper shows as figures.  Observability flags
are shared by every command: ``--telemetry DIR`` records spans,
metrics, and structured events into DIR (``trace.json`` there loads
straight into Perfetto), ``--trace FILE`` writes the Chrome trace
alone, and ``--quiet`` silences informational output (errors still
reach stderr; with telemetry on, the suppressed lines are preserved as
``cli.line`` events).

All user-facing output flows through one :class:`OutputWriter` on the
standard logging stack — ``main()`` is the only place handlers are
configured, and a lint test keeps ``print(`` out of the rest of
``src/repro``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.plots import render_heatmap, render_series
from repro.core.counting import SpatialVarianceClassifier, trace_spatial_variance
from repro.core.gestures import GestureDecoder
from repro.environment.geometry import Point
from repro.environment.human import Human
from repro.environment.trajectories import GestureTrajectory
from repro.environment.walls import stata_conference_room_small
from repro.rf.materials import MATERIALS, material_by_name
from repro.simulator.device import WiViDevice
from repro.simulator.experiment import (
    build_tracking_scene,
    counting_trial,
    gesture_trial,
    make_subject_pool,
    room_for_material,
)
from repro.environment.scene import Scene
from repro.telemetry import configure, deactivate, get_telemetry
from repro.telemetry.output import OutputWriter, configure_cli_logging

#: The CLI's single output writer (see module docstring).
out = OutputWriter()


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    """The telemetry/verbosity flags every subcommand carries."""
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record spans, metrics, and structured events into DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome-trace JSON (Perfetto-loadable) to FILE",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational output (errors still print)",
    )


def cmd_track(args: argparse.Namespace) -> int:
    """Image movers behind a wall (mode 1, §3.2)."""
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    if args.inject_faults:
        return _track_with_faults(device, args)
    nulling = device.calibrate()
    out(f"calibrated: {nulling.nulling_db:.1f} dB of nulling")
    spectrogram = device.image(args.duration)
    out(render_heatmap(spectrogram.normalized_db().T, spectrogram.theta_grid_deg))
    angles = spectrogram.dominant_angles_deg(exclude_dc_deg=10.0)
    out(f"dominant angle range: {angles.min():+.0f}..{angles.max():+.0f} deg "
        "(positive = toward the device)")
    return 0


def _track_with_faults(device: WiViDevice, args: argparse.Namespace) -> int:
    """Tracking run under the fault-injection + recovery pipeline."""
    from repro.core.monitoring import ResilientDevice
    from repro.errors import ReproError
    from repro.faults import FaultInjector, FaultSchedule, FaultScheduleConfig

    schedule = FaultSchedule.generate(
        FaultScheduleConfig(), duration_s=args.duration + 2.0, seed=args.fault_seed
    )
    out(f"fault schedule (seed {args.fault_seed}): {schedule.describe()}")
    resilient = ResilientDevice(device, injector=FaultInjector(schedule))
    try:
        spectrogram = resilient.image(args.duration)
    except ReproError as exc:
        out.error(f"device gave up: {exc}")
        return 1
    finally:
        for entry in resilient.injector.log:
            out(f"  fault: {entry.describe()}")
        for transition in resilient.machine.transitions:
            out(
                f"  health: capture {transition.capture_index}: "
                f"{transition.source.value} -> {transition.target.value} "
                f"({transition.reason})"
            )
    out(render_heatmap(spectrogram.normalized_db().T, spectrogram.theta_grid_deg))
    out(
        f"final health: {resilient.machine.state.value}; "
        f"{resilient.machine.recalibration_count} recalibrations, "
        f"{resilient.machine.recovery_count} recoveries, "
        f"{resilient.repaired_sample_count} samples repaired"
    )
    if spectrogram.fallback_fraction > 0:
        out(
            f"MUSIC degeneracy fallback on "
            f"{100 * spectrogram.fallback_fraction:.1f}% of frames"
        )
    angles = spectrogram.dominant_angles_deg(exclude_dc_deg=10.0)
    out(f"dominant angle range: {angles.min():+.0f}..{angles.max():+.0f} deg "
        "(positive = toward the device)")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Image movers *online*: columns stream out as samples arrive."""
    import time as _time

    from repro.analysis.plots import render_column_strip
    from repro.hardware.streaming import RxStreamer
    from repro.runtime import (
        BlockSource,
        ColumnEvent,
        DetectStage,
        DetectionEvent,
        GapEvent,
        HealthEvent,
        StreamingPipeline,
        StreamingTracker,
    )

    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    nulling = device.calibrate()
    out(f"calibrated: {nulling.nulling_db:.1f} dB of nulling")

    # The simulated radio's output; faults corrupt it at the hardware
    # boundary before the runtime ever sees a sample.
    series = device.capture(args.duration)
    injector = None
    if args.inject_faults:
        from repro.faults import FaultInjector, FaultSchedule, FaultScheduleConfig

        schedule = FaultSchedule.generate(
            FaultScheduleConfig(), duration_s=args.duration + 2.0, seed=args.fault_seed
        )
        out(f"fault schedule (seed {args.fault_seed}): {schedule.describe()}")
        injector = FaultInjector(schedule)
        series = injector.corrupt_series(series, 0.0)

    rate = device.config.timeseries.sample_rate_hz
    streamer = RxStreamer(max_buffers=args.max_buffers)
    source = BlockSource(streamer, block_size=args.block_size)
    tracker = StreamingTracker(device.config.tracking, use_music=not args.beamforming)
    pipeline = StreamingPipeline(source, tracker, detector=DetectStage())

    detections = 0

    def show(event) -> None:
        nonlocal detections
        if isinstance(event, ColumnEvent):
            column = event.column
            angle = tracker.config.theta_grid_deg[int(np.argmax(column.power))]
            out(
                f"t={column.time_s:6.2f}s  |{render_column_strip(column.power)}| "
                f"peak {angle:+4.0f} deg [{column.estimator}]"
            )
        elif isinstance(event, DetectionEvent):
            out(
                f"t={event.time_s:6.2f}s  motion at {event.angle_deg:+.0f} deg "
                f"({event.strength_db:.1f} dB over DC)"
            )
            detections += 1
        elif isinstance(event, HealthEvent):
            out(
                f"  health -> {event.state.value} "
                f"(block {event.block_index}: {event.reason})"
            )
        elif isinstance(event, GapEvent):
            out(f"  stream gap: {event.dropped_samples} samples lost")

    samples = series.samples
    start = _time.perf_counter()
    # Producer and consumer interleave chunk by chunk, the shape of the
    # real-time loop: push what the radio produced, drain what's ready.
    with get_telemetry().span("stream.run", samples=len(samples)):
        for offset in range(0, len(samples), args.block_size):
            chunk = samples[offset : offset + args.block_size]
            if args.realtime:
                _time.sleep(len(chunk) / rate)
            streamer.push(chunk, rate)
            for event in pipeline.process():
                show(event)
        streamer.close()
        for event in pipeline.process():
            show(event)
    elapsed = _time.perf_counter() - start

    columns = tracker.columns_emitted
    out(
        f"\n{columns} columns from {tracker.samples_seen} samples in "
        f"{elapsed:.2f} s ({columns / max(elapsed, 1e-9):.1f} columns/s); "
        f"{detections} detections; final health: {pipeline.health.value}"
    )
    for line in pipeline.metrics.describe():
        out(f"  {line}")
    if source.ring.dropped_sample_count or streamer.overflow_count:
        out(
            f"  backpressure: {streamer.overflow_count} streamer overflows, "
            f"{source.ring.dropped_sample_count} ring samples dropped"
        )
    if injector is not None:
        for entry in injector.log:
            out(f"  fault: {entry.describe()}")
    return 0


def cmd_gestures(args: argparse.Namespace) -> int:
    """Decode a gestured bit string (mode 2, Chapter 6)."""
    bits = [int(c) for c in args.bits]
    if any(b not in (0, 1) for b in bits):
        out.error("bits must be a string of 0s and 1s")
        return 2
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    trajectory = GestureTrajectory(
        base_position=Point(room.wall.far_face_x_m + args.distance, 0.2), bits=bits
    )
    scene = Scene(room=room, humans=[Human(trajectory)])
    device = WiViDevice(scene, rng)
    device.calibrate()
    result = device.receive_gestures(trajectory.duration_s())
    out(render_series(result.matched_output, title="matched-filter output"))
    out(f"sent:    {bits}")
    out(f"decoded: {result.bits}")
    out(f"per-bit SNR (dB): {[round(s, 1) for s in result.snr_db_per_bit]}")
    return 0 if result.bits == bits else 1


def cmd_count(args: argparse.Namespace) -> int:
    """Train and run the §7.4 occupant counter."""
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    pool = make_subject_pool(rng)
    out(f"training the counter ({args.train_trials} trials per class)...")
    training = {
        n: np.array(
            [
                trace_spatial_variance(
                    counting_trial(room, n, args.duration, rng, pool).spectrogram
                )
                for _ in range(args.train_trials)
            ]
        )
        for n in range(args.max_humans + 1)
    }
    classifier = SpatialVarianceClassifier().fit(training)
    truth = int(rng.integers(0, args.max_humans + 1))
    trial = counting_trial(room, truth, args.duration, rng, pool)
    estimate = classifier.predict(trace_spatial_variance(trial.spectrogram))
    out(f"ground truth: {truth} moving humans; estimate: {estimate}")
    return 0 if estimate == truth else 1


def cmd_materials(args: argparse.Namespace) -> int:
    """Run the §7.6 building-material sweep."""
    rng = np.random.default_rng(args.seed)
    pool = make_subject_pool(rng, 4)
    names = args.materials if args.materials else list(MATERIALS)
    out(f"{'material':>24} {'1-way dB':>9} {'decoded':>8} {'SNR dB':>7}")
    for name in names:
        material = material_by_name(name)
        room = room_for_material(material)
        subject = pool[0]
        trial, _ = gesture_trial(room, args.distance, [0], subject, rng)
        decoder = GestureDecoder(step_duration_s=subject.step_duration_s)
        result = decoder.decode(trial.spectrogram)
        decoded = "yes" if result.bits[:1] == [0] else "no"
        snr = decoder.measure_snr_db(trial.spectrogram)
        out(f"{name:>24} {material.one_way_attenuation_db:>9.0f} "
            f"{decoded:>8} {snr:>7.1f}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Track a scene and export its A'[theta, n] image as PGM/PPM."""
    from repro.analysis.export import export_spectrogram

    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    device.calibrate()
    spectrogram = device.image(args.duration)
    path = export_spectrogram(spectrogram, args.output, color=not args.gray)
    out(f"wrote {path} ({spectrogram.num_windows} windows x "
        f"{len(spectrogram.theta_grid_deg)} angles)")
    return 0


def cmd_nulling(args: argparse.Namespace) -> int:
    """Run Algorithm 1 and report the achieved depth."""
    rng = np.random.default_rng(args.seed)
    room = room_for_material(material_by_name(args.material))
    scene = Scene(room=room)
    device = WiViDevice(scene, rng)
    result = device.calibrate()
    out(f"wall: {args.material}")
    out(f"initial residual power: {result.residual_history[0]:.3e}")
    out(f"final residual power:   {result.final_residual_power:.3e}")
    out(f"iterations: {result.iterations} (converged: {result.converged})")
    out(f"achieved nulling: {result.nulling_db:.1f} dB (paper mean: 42 dB)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-session sensing service until stopped."""
    import asyncio

    from repro.serve import SchedulerConfig, SensingServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
        write_timeout_s=args.write_timeout if args.write_timeout > 0 else None,
        scheduler=SchedulerConfig(
            max_batch_windows=args.max_batch_windows,
            queue_capacity=args.queue_capacity,
        ),
    )
    chaos = None
    if args.chaos_seed is not None:
        from repro.chaos import ChaosSchedule, ChaosScheduleConfig, ServerChaos

        schedule = ChaosSchedule.generate(
            ChaosScheduleConfig(), horizon_ops=100, seed=args.chaos_seed
        )
        chaos = ServerChaos(schedule)

    async def run() -> int:
        server = SensingServer(config, chaos=chaos)
        port = await server.start()
        # One parseable line, immediately on bind: scripts (and the CI
        # smoke step) read the port from it when --port 0 was asked.
        out(f"serve: listening on {config.host} port {port}")
        try:
            await server.serve_until_stopped(args.duration)
        finally:
            await server.shutdown()
        snapshot = server.stats.snapshot()
        scheduler = server.scheduler.stats.snapshot()
        out(
            f"serve: handled {snapshot['requests']} requests "
            f"({snapshot['errors']} errors), served "
            f"{snapshot['columns_served']} columns in "
            f"{scheduler['ticks']} batches "
            f"(mean occupancy {scheduler['mean_batch_windows']:.1f} windows)"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        out("serve: interrupted, shut down")
        return 0


def cmd_load(args: argparse.Namespace) -> int:
    """Drive a running ``serve`` instance with concurrent sessions."""
    import asyncio

    from repro.serve import run_chaos_load, run_load

    if args.chaos:
        report = asyncio.run(
            run_chaos_load(
                host=args.host,
                port=args.port,
                sessions=args.sessions,
                pushes=args.pushes,
                block_size=args.block_size,
                seed=args.seed,
                chaos_seed=args.chaos_seed,
                config={"window_size": 64, "hop": 16, "subarray_size": 16},
            )
        )
        for key, value in report.summary().items():
            out(f"  {key}: {value}")
        if args.chaos_log is not None:
            with open(args.chaos_log, "w", encoding="utf-8") as handle:
                for line in report.chaos_log_lines():
                    handle.write(line + "\n")
            out(f"load: chaos log written to {args.chaos_log}")
        failed = False
        if report.diverged_columns:
            out.error(f"load: {report.diverged_columns} diverged column(s)")
            failed = True
        if not report.all_defined:
            bad = [o.outcome for o in report.outcomes if not o.defined]
            out.error(f"load: undefined session outcome(s): {bad}")
            failed = True
        incomplete = [
            o.session
            for o in report.outcomes
            if o.outcome == "complete" and o.columns != o.expected_columns
        ]
        if incomplete:
            out.error(f"load: incomplete column stream in session(s) {incomplete}")
            failed = True
        if failed:
            return 1
        out(
            "load: chaos run survived — zero divergence, "
            f"{report.total_chaos_events} chaos events, "
            f"{sum(o.reconnects for o in report.outcomes)} reconnects"
        )
        return 0

    report = asyncio.run(
        run_load(
            host=args.host,
            port=args.port,
            sessions=args.sessions,
            seconds=args.seconds,
            block_size=args.block_size,
            seed=args.seed,
        )
    )
    for key, value in report.summary().items():
        out(f"  {key}: {value}")
    if report.protocol_errors:
        out.error(f"load: {report.protocol_errors} protocol error(s)")
        return 1
    out("load: completed with zero protocol errors")
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    """Summarize a telemetry run directory (see ``--telemetry``)."""
    from repro.telemetry.report import summarize_run

    try:
        report = summarize_run(args.directory)
    except FileNotFoundError as exc:
        out.error(str(exc))
        return 2
    out(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Vi reproduction: see through walls with Wi-Fi",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    track = commands.add_parser("track", help="image movers behind a wall")
    track.add_argument("--humans", type=int, default=1)
    track.add_argument("--duration", type=float, default=8.0)
    track.add_argument(
        "--inject-faults",
        action="store_true",
        help="run through the fault-injection + recovery pipeline",
    )
    track.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule",
    )
    _add_seed(track)
    _add_observability(track)
    track.set_defaults(handler=cmd_track)

    stream = commands.add_parser(
        "stream", help="image movers online, column by column"
    )
    stream.add_argument("--humans", type=int, default=1)
    stream.add_argument("--duration", type=float, default=8.0)
    stream.add_argument(
        "--block-size",
        type=int,
        default=64,
        help="samples per streamed block",
    )
    stream.add_argument(
        "--max-buffers",
        type=int,
        default=64,
        help="receive-stream depth before overflow drops",
    )
    stream.add_argument(
        "--beamforming",
        action="store_true",
        help="plain Eq. 5.1 beamforming instead of smoothed MUSIC",
    )
    stream.add_argument(
        "--realtime",
        action="store_true",
        help="pace blocks at the 312.5 Hz channel-sample rate",
    )
    stream.add_argument(
        "--inject-faults",
        action="store_true",
        help="corrupt the stream with the deterministic fault schedule",
    )
    stream.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule",
    )
    _add_seed(stream)
    _add_observability(stream)
    stream.set_defaults(handler=cmd_stream)

    gestures = commands.add_parser("gestures", help="decode a gestured bit string")
    gestures.add_argument("bits", nargs="?", default="01")
    gestures.add_argument("--distance", type=float, default=3.0)
    _add_seed(gestures)
    _add_observability(gestures)
    gestures.set_defaults(handler=cmd_gestures)

    count = commands.add_parser("count", help="count occupants behind a wall")
    count.add_argument("--max-humans", type=int, default=3)
    count.add_argument("--duration", type=float, default=15.0)
    count.add_argument("--train-trials", type=int, default=3)
    _add_seed(count)
    _add_observability(count)
    count.set_defaults(handler=cmd_count)

    materials = commands.add_parser("materials", help="wall-material sweep")
    materials.add_argument("--distance", type=float, default=3.0)
    materials.add_argument("--materials", nargs="*", default=None)
    _add_seed(materials)
    _add_observability(materials)
    materials.set_defaults(handler=cmd_materials)

    nulling = commands.add_parser("nulling", help="run Algorithm 1")
    nulling.add_argument("--material", default='6" hollow wall')
    _add_seed(nulling)
    _add_observability(nulling)
    nulling.set_defaults(handler=cmd_nulling)

    export = commands.add_parser(
        "export", help="write the A'[theta, n] image to a PGM/PPM file"
    )
    export.add_argument("output", nargs="?", default="spectrogram.ppm")
    export.add_argument("--humans", type=int, default=1)
    export.add_argument("--duration", type=float, default=8.0)
    export.add_argument("--gray", action="store_true", help="PGM instead of PPM")
    _add_seed(export)
    _add_observability(export)
    export.set_defaults(handler=cmd_export)

    serve = commands.add_parser(
        "serve", help="run the multi-session sensing service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=9361, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="self-terminate after this many seconds (default: run forever)",
    )
    serve.add_argument("--max-sessions", type=int, default=64)
    serve.add_argument(
        "--max-batch-windows",
        type=int,
        default=64,
        help="windows one scheduler tick may stack (1 = serial dispatch)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=512,
        help="admission bound: queued windows before pushes are shed",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="per-connection read deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--write-timeout",
        type=float,
        default=10.0,
        help="per-reply write deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="inject seeded server-side chaos (stalled ticks, slow replies)",
    )
    _add_seed(serve)
    _add_observability(serve)
    serve.set_defaults(handler=cmd_serve)

    load = commands.add_parser(
        "load", help="load-generate against a running serve instance"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=9361)
    load.add_argument("--sessions", type=int, default=8)
    load.add_argument("--seconds", type=float, default=5.0)
    load.add_argument(
        "--block-size",
        type=int,
        default=400,
        help="complex samples per push request",
    )
    load.add_argument(
        "--chaos",
        action="store_true",
        help="run the seeded chaos harness instead of the timed load",
    )
    load.add_argument(
        "--chaos-seed",
        type=int,
        default=7,
        help="seed of the per-session chaos schedules (chaos mode)",
    )
    load.add_argument(
        "--pushes",
        type=int,
        default=24,
        help="pushes per session in chaos mode (fixed, for determinism)",
    )
    load.add_argument(
        "--chaos-log",
        default=None,
        metavar="FILE",
        help="write the deterministic chaos event log to FILE",
    )
    _add_seed(load)
    _add_observability(load)
    load.set_defaults(handler=cmd_load)

    report = commands.add_parser(
        "telemetry-report",
        help="summarize a --telemetry run directory",
    )
    report.add_argument("directory", help="directory a --telemetry run wrote")
    report.add_argument(
        "--quiet", action="store_true", help="suppress informational output"
    )
    report.set_defaults(handler=cmd_telemetry_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    The only place logging handlers and the telemetry session are
    configured: every subcommand runs inside a ``cli.<command>`` root
    span when telemetry is on, and the session is flushed (run files
    written) and deactivated on the way out — including on error.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(quiet=getattr(args, "quiet", False))
    telemetry = None
    out_dir = getattr(args, "telemetry", None)
    trace_file = getattr(args, "trace", None)
    if out_dir is not None or trace_file is not None:
        telemetry = configure(out_dir=out_dir, trace_file=trace_file)
    try:
        if telemetry is None:
            return args.handler(args)
        with telemetry.span(f"cli.{args.command}", seed=getattr(args, "seed", None)):
            code = args.handler(args)
        return code
    finally:
        if telemetry is not None:
            written = telemetry.flush()
            deactivate()
            if written:
                out(f"telemetry: wrote {', '.join(str(p) for p in written)}")


if __name__ == "__main__":
    raise SystemExit(main())
