"""Command-line interface: ``python -m repro <command>``.

Subcommands, one per headline capability:

* ``track``     — image a moving person through a wall (mode 1, §3.2).
* ``stream``    — the same imaging, online: spectrogram columns emitted
  block by block as the samples arrive (the `repro.runtime` engine).
* ``gestures``  — decode a gestured bit sequence (mode 2, Chapter 6).
* ``count``     — train and run the §7.4 occupant counter.
* ``materials`` — the §7.6 building-material sweep.
* ``nulling``   — run Algorithm 1 and report the achieved depth.
* ``serve``     — the multi-session sensing service: an asyncio TCP
  server micro-batching MUSIC windows across sessions (`repro.serve`).
  ``--record DIR`` taps every fresh session into a capture store;
  ``--dashboard`` co-hosts the ``repro.observe`` HTTP/WebSocket
  gateway (Prometheus ``/metrics``, live dashboard at ``/``).
* ``fleet``     — the sharded multi-worker service (`repro.fleet`): a
  routing frontend over ``--workers N`` forked serve processes, with
  consistent-hash session placement, shard drain, crash supervision,
  and exactly-merged cross-process telemetry.  Takes the same
  ``--record`` / ``--dashboard`` flags as ``serve``.
* ``observe``   — serve the same gateway over a *recorded*
  ``--telemetry`` run directory: replayed events on ``/ws/live``, the
  recorded metrics snapshot on ``/metrics``.
* ``load``      — drive a running ``serve`` with N concurrent sessions
  and report throughput, latency percentiles, and batch occupancy.
* ``record``    — run the streaming pipeline and record exactly what
  the tracker saw into a retention-managed capture store
  (`repro.capture`).
* ``replay``    — feed a capture back through a rebuilt tracker (or,
  with ``--port``, a live serve session) and prove the replayed
  columns bit-identical to the originals; ``--promote`` freezes a
  passing capture into a regression fixture bundle.
* ``captures``  — list or prune the capture store.
* ``telemetry-report`` — summarize a ``--telemetry`` run directory.

Every command accepts ``--seed`` for reproducibility and prints ASCII
renderings of what the paper shows as figures.  Observability flags
are shared by every command: ``--telemetry DIR`` records spans,
metrics, and structured events into DIR (``trace.json`` there loads
straight into Perfetto), ``--trace FILE`` writes the Chrome trace
alone, and ``--quiet`` silences informational output (errors still
reach stderr; with telemetry on, the suppressed lines are preserved as
``cli.line`` events).

All user-facing output flows through one :class:`OutputWriter` on the
standard logging stack — ``main()`` is the only place handlers are
configured, and a lint test keeps ``print(`` out of the rest of
``src/repro``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.plots import render_heatmap, render_series
from repro.core.counting import SpatialVarianceClassifier, trace_spatial_variance
from repro.core.gestures import GestureDecoder
from repro.dsp.backend import backend_infos, quick_conformance, set_active_backend
from repro.errors import DspBackendError
from repro.environment.geometry import Point
from repro.environment.human import Human
from repro.environment.trajectories import GestureTrajectory
from repro.environment.walls import stata_conference_room_small
from repro.rf.materials import MATERIALS, material_by_name
from repro.simulator.device import WiViDevice
from repro.simulator.experiment import (
    build_tracking_scene,
    counting_trial,
    gesture_trial,
    make_subject_pool,
    room_for_material,
)
from repro.environment.scene import Scene
from repro.telemetry import configure, deactivate, get_telemetry
from repro.telemetry.output import OutputWriter, configure_cli_logging

#: The CLI's single output writer (see module docstring).
out = OutputWriter()


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    """The telemetry/verbosity flags every subcommand carries."""
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record spans, metrics, and structured events into DIR",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome-trace JSON (Perfetto-loadable) to FILE",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress informational output (errors still print)",
    )


def cmd_track(args: argparse.Namespace) -> int:
    """Image movers behind a wall (mode 1, §3.2)."""
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    if args.inject_faults:
        return _track_with_faults(device, args)
    nulling = device.calibrate()
    out(f"calibrated: {nulling.nulling_db:.1f} dB of nulling")
    spectrogram = device.image(args.duration)
    out(render_heatmap(spectrogram.normalized_db().T, spectrogram.theta_grid_deg))
    angles = spectrogram.dominant_angles_deg(exclude_dc_deg=10.0)
    out(f"dominant angle range: {angles.min():+.0f}..{angles.max():+.0f} deg "
        "(positive = toward the device)")
    return 0


def _track_with_faults(device: WiViDevice, args: argparse.Namespace) -> int:
    """Tracking run under the fault-injection + recovery pipeline."""
    from repro.core.monitoring import ResilientDevice
    from repro.errors import ReproError
    from repro.faults import FaultInjector, FaultSchedule, FaultScheduleConfig

    schedule = FaultSchedule.generate(
        FaultScheduleConfig(), duration_s=args.duration + 2.0, seed=args.fault_seed
    )
    out(f"fault schedule (seed {args.fault_seed}): {schedule.describe()}")
    resilient = ResilientDevice(device, injector=FaultInjector(schedule))
    try:
        spectrogram = resilient.image(args.duration)
    except ReproError as exc:
        out.error(f"device gave up: {exc}")
        return 1
    finally:
        for entry in resilient.injector.log:
            out(f"  fault: {entry.describe()}")
        for transition in resilient.machine.transitions:
            out(
                f"  health: capture {transition.capture_index}: "
                f"{transition.source.value} -> {transition.target.value} "
                f"({transition.reason})"
            )
    out(render_heatmap(spectrogram.normalized_db().T, spectrogram.theta_grid_deg))
    out(
        f"final health: {resilient.machine.state.value}; "
        f"{resilient.machine.recalibration_count} recalibrations, "
        f"{resilient.machine.recovery_count} recoveries, "
        f"{resilient.repaired_sample_count} samples repaired"
    )
    if spectrogram.fallback_fraction > 0:
        out(
            f"MUSIC degeneracy fallback on "
            f"{100 * spectrogram.fallback_fraction:.1f}% of frames"
        )
    angles = spectrogram.dominant_angles_deg(exclude_dc_deg=10.0)
    out(f"dominant angle range: {angles.min():+.0f}..{angles.max():+.0f} deg "
        "(positive = toward the device)")
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Image movers *online*: columns stream out as samples arrive."""
    import time as _time

    from repro.analysis.plots import render_column_strip
    from repro.hardware.streaming import RxStreamer
    from repro.runtime import (
        BlockSource,
        ColumnEvent,
        DetectStage,
        DetectionEvent,
        GapEvent,
        HealthEvent,
        StreamingPipeline,
        StreamingTracker,
    )

    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    nulling = device.calibrate()
    out(f"calibrated: {nulling.nulling_db:.1f} dB of nulling")

    # The simulated radio's output; faults corrupt it at the hardware
    # boundary before the runtime ever sees a sample.
    series = device.capture(args.duration)
    injector = None
    if args.inject_faults:
        from repro.faults import FaultInjector, FaultSchedule, FaultScheduleConfig

        schedule = FaultSchedule.generate(
            FaultScheduleConfig(), duration_s=args.duration + 2.0, seed=args.fault_seed
        )
        out(f"fault schedule (seed {args.fault_seed}): {schedule.describe()}")
        injector = FaultInjector(schedule)
        series = injector.corrupt_series(series, 0.0)

    rate = device.config.timeseries.sample_rate_hz
    streamer = RxStreamer(max_buffers=args.max_buffers)
    source = BlockSource(streamer, block_size=args.block_size)
    tracker = StreamingTracker(device.config.tracking, use_music=not args.beamforming)
    pipeline = StreamingPipeline(source, tracker, detector=DetectStage())

    detections = 0

    def show(event) -> None:
        nonlocal detections
        if isinstance(event, ColumnEvent):
            column = event.column
            angle = tracker.config.theta_grid_deg[int(np.argmax(column.power))]
            out(
                f"t={column.time_s:6.2f}s  |{render_column_strip(column.power)}| "
                f"peak {angle:+4.0f} deg [{column.estimator}]"
            )
        elif isinstance(event, DetectionEvent):
            out(
                f"t={event.time_s:6.2f}s  motion at {event.angle_deg:+.0f} deg "
                f"({event.strength_db:.1f} dB over DC)"
            )
            detections += 1
        elif isinstance(event, HealthEvent):
            out(
                f"  health -> {event.state.value} "
                f"(block {event.block_index}: {event.reason})"
            )
        elif isinstance(event, GapEvent):
            out(f"  stream gap: {event.dropped_samples} samples lost")

    samples = series.samples
    start = _time.perf_counter()
    # Producer and consumer interleave chunk by chunk, the shape of the
    # real-time loop: push what the radio produced, drain what's ready.
    with get_telemetry().span("stream.run", samples=len(samples)):
        for offset in range(0, len(samples), args.block_size):
            chunk = samples[offset : offset + args.block_size]
            if args.realtime:
                _time.sleep(len(chunk) / rate)
            streamer.push(chunk, rate)
            for event in pipeline.process():
                show(event)
        streamer.close()
        for event in pipeline.process():
            show(event)
    elapsed = _time.perf_counter() - start

    columns = tracker.columns_emitted
    out(
        f"\n{columns} columns from {tracker.samples_seen} samples in "
        f"{elapsed:.2f} s ({columns / max(elapsed, 1e-9):.1f} columns/s); "
        f"{detections} detections; final health: {pipeline.health.value}"
    )
    for line in pipeline.metrics.describe():
        out(f"  {line}")
    if source.ring.dropped_sample_count or streamer.overflow_count:
        out(
            f"  backpressure: {streamer.overflow_count} streamer overflows, "
            f"{source.ring.dropped_sample_count} ring samples dropped"
        )
    if injector is not None:
        for entry in injector.log:
            out(f"  fault: {entry.describe()}")
    return 0


def cmd_gestures(args: argparse.Namespace) -> int:
    """Decode a gestured bit string (mode 2, Chapter 6)."""
    bits = [int(c) for c in args.bits]
    if any(b not in (0, 1) for b in bits):
        out.error("bits must be a string of 0s and 1s")
        return 2
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    trajectory = GestureTrajectory(
        base_position=Point(room.wall.far_face_x_m + args.distance, 0.2), bits=bits
    )
    scene = Scene(room=room, humans=[Human(trajectory)])
    device = WiViDevice(scene, rng)
    device.calibrate()
    result = device.receive_gestures(trajectory.duration_s())
    out(render_series(result.matched_output, title="matched-filter output"))
    out(f"sent:    {bits}")
    out(f"decoded: {result.bits}")
    out(f"per-bit SNR (dB): {[round(s, 1) for s in result.snr_db_per_bit]}")
    return 0 if result.bits == bits else 1


def cmd_count(args: argparse.Namespace) -> int:
    """Train and run the §7.4 occupant counter."""
    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    pool = make_subject_pool(rng)
    out(f"training the counter ({args.train_trials} trials per class)...")
    training = {
        n: np.array(
            [
                trace_spatial_variance(
                    counting_trial(room, n, args.duration, rng, pool).spectrogram
                )
                for _ in range(args.train_trials)
            ]
        )
        for n in range(args.max_humans + 1)
    }
    classifier = SpatialVarianceClassifier().fit(training)
    truth = int(rng.integers(0, args.max_humans + 1))
    trial = counting_trial(room, truth, args.duration, rng, pool)
    estimate = classifier.predict(trace_spatial_variance(trial.spectrogram))
    out(f"ground truth: {truth} moving humans; estimate: {estimate}")
    return 0 if estimate == truth else 1


def cmd_materials(args: argparse.Namespace) -> int:
    """Run the §7.6 building-material sweep."""
    rng = np.random.default_rng(args.seed)
    pool = make_subject_pool(rng, 4)
    names = args.materials if args.materials else list(MATERIALS)
    out(f"{'material':>24} {'1-way dB':>9} {'decoded':>8} {'SNR dB':>7}")
    for name in names:
        material = material_by_name(name)
        room = room_for_material(material)
        subject = pool[0]
        trial, _ = gesture_trial(room, args.distance, [0], subject, rng)
        decoder = GestureDecoder(step_duration_s=subject.step_duration_s)
        result = decoder.decode(trial.spectrogram)
        decoded = "yes" if result.bits[:1] == [0] else "no"
        snr = decoder.measure_snr_db(trial.spectrogram)
        out(f"{name:>24} {material.one_way_attenuation_db:>9.0f} "
            f"{decoded:>8} {snr:>7.1f}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Track a scene and export its A'[theta, n] image as PGM/PPM."""
    from repro.analysis.export import export_spectrogram

    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    device.calibrate()
    spectrogram = device.image(args.duration)
    path = export_spectrogram(spectrogram, args.output, color=not args.gray)
    out(f"wrote {path} ({spectrogram.num_windows} windows x "
        f"{len(spectrogram.theta_grid_deg)} angles)")
    return 0


def cmd_nulling(args: argparse.Namespace) -> int:
    """Run Algorithm 1 and report the achieved depth."""
    rng = np.random.default_rng(args.seed)
    room = room_for_material(material_by_name(args.material))
    scene = Scene(room=room)
    device = WiViDevice(scene, rng)
    result = device.calibrate()
    out(f"wall: {args.material}")
    out(f"initial residual power: {result.residual_history[0]:.3e}")
    out(f"final residual power:   {result.final_residual_power:.3e}")
    out(f"iterations: {result.iterations} (converged: {result.converged})")
    out(f"achieved nulling: {result.nulling_db:.1f} dB (paper mean: 42 dB)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-session sensing service until stopped."""
    import asyncio

    from repro.serve import SchedulerConfig, SensingServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
        write_timeout_s=args.write_timeout if args.write_timeout > 0 else None,
        scheduler=SchedulerConfig(
            max_batch_windows=args.max_batch_windows,
            queue_capacity=args.queue_capacity,
        ),
        record_dir=args.record,
    )
    chaos = None
    if args.chaos_seed is not None:
        from repro.chaos import ChaosSchedule, ChaosScheduleConfig, ServerChaos

        schedule = ChaosSchedule.generate(
            ChaosScheduleConfig(), horizon_ops=100, seed=args.chaos_seed
        )
        chaos = ServerChaos(schedule)

    async def run() -> int:
        hub = None
        gateway = None
        if args.dashboard:
            from repro.observe import ObserveConfig, ObserveGateway, TelemetryHub

            hub = TelemetryHub()
        server = SensingServer(config, chaos=chaos, hub=hub)
        port = await server.start()
        # One parseable line, immediately on bind: scripts (and the CI
        # smoke step) read the port from it when --port 0 was asked.
        out(f"serve: listening on {config.host} port {port}")
        if hub is not None:
            gateway = ObserveGateway(
                hub,
                server=server,
                config=ObserveConfig(
                    host=args.dashboard_host, port=args.dashboard_port
                ),
            )
            dashboard_port = await gateway.start()
            # Same parseable convention as the serve line above.
            out(
                f"observe: listening on {args.dashboard_host} "
                f"port {dashboard_port}"
            )
        try:
            await server.serve_until_stopped(args.duration)
        finally:
            if gateway is not None:
                await gateway.shutdown()
            await server.shutdown()
        snapshot = server.stats.snapshot()
        scheduler = server.scheduler.stats.snapshot()
        out(
            f"serve: handled {snapshot['requests']} requests "
            f"({snapshot['errors']} errors), served "
            f"{snapshot['columns_served']} columns in "
            f"{scheduler['ticks']} batches "
            f"(mean occupancy {scheduler['mean_batch_windows']:.1f} windows)"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        out("serve: interrupted, shut down")
        return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run the sharded multi-worker sensing fleet until stopped."""
    import asyncio

    from repro.fleet import FleetConfig, FleetServer
    from repro.serve import SchedulerConfig, ServeConfig

    config = FleetConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        serve=ServeConfig(
            max_sessions=args.max_sessions,
            write_timeout_s=args.write_timeout if args.write_timeout > 0 else None,
            scheduler=SchedulerConfig(
                max_batch_windows=args.max_batch_windows,
                queue_capacity=args.queue_capacity,
            ),
        ),
        client_idle_timeout_s=(
            args.idle_timeout if args.idle_timeout > 0 else None
        ),
        drain_timeout_s=args.drain_timeout,
        record_dir=args.record,
        telemetry_dir=getattr(args, "telemetry", None),
        dsp_backend=args.dsp_backend,
    )

    async def run() -> int:
        hub = None
        gateway = None
        if args.dashboard:
            from repro.observe import ObserveConfig, ObserveGateway, TelemetryHub

            hub = TelemetryHub()
        fleet = FleetServer(config, hub=hub)
        port = await fleet.start()
        # Same parseable convention as serve's bind line; the per-shard
        # lines let scripts (and the CI smoke step) find worker pids.
        out(f"fleet: listening on {config.host} port {port}")
        for snap in fleet.shard_snapshots():
            out(
                f"fleet: shard {snap['shard']} pid {snap['pid']} "
                f"port {snap['port']}"
            )
        if hub is not None:
            gateway = ObserveGateway(
                hub,
                fleet=fleet,
                config=ObserveConfig(
                    host=args.dashboard_host, port=args.dashboard_port
                ),
            )
            dashboard_port = await gateway.start()
            out(
                f"observe: listening on {args.dashboard_host} "
                f"port {dashboard_port}"
            )
        try:
            await fleet.serve_until_stopped(args.duration)
        finally:
            if gateway is not None:
                await gateway.shutdown()
            await fleet.shutdown()
        stats = fleet.stats.snapshot()
        out(
            f"fleet: routed {stats['sessions_routed']} session(s) "
            f"({stats['sessions_resumed']} resumed, "
            f"{stats['shed_sessions']} shed) across {config.workers} "
            f"worker(s); {stats['worker_restarts']} restart(s), "
            f"{stats['requests_relayed']} requests relayed"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        out("fleet: interrupted, shut down")
        return 0


def cmd_observe(args: argparse.Namespace) -> int:
    """Serve the observe gateway over a recorded telemetry directory."""
    import asyncio

    from repro.observe import ObserveConfig, ObserveGateway, TelemetryHub
    from repro.observe.replay import load_telemetry_replay

    try:
        replay = load_telemetry_replay(args.directory)
    except FileNotFoundError as exc:
        out.error(str(exc))
        return 2

    async def run() -> int:
        hub = TelemetryHub()
        gateway = ObserveGateway(
            hub,
            replay=replay,
            config=ObserveConfig(
                host=args.host, port=args.port, replay_rate=args.rate
            ),
        )
        port = await gateway.start()
        # One parseable line, matching the serve convention: scripts
        # read the bound port from it when --port 0 was asked.
        out(f"observe: listening on {args.host} port {port}")
        detail = f"observe: replaying {len(replay.events)} events from {args.directory}"
        if replay.skipped_lines:
            detail += f" ({replay.skipped_lines} truncated line(s) skipped)"
        out(detail)
        try:
            if args.duration is None:
                await asyncio.Event().wait()
            else:
                await asyncio.sleep(args.duration)
        finally:
            await gateway.shutdown()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        out("observe: interrupted, shut down")
        return 0


def cmd_load(args: argparse.Namespace) -> int:
    """Drive a running ``serve`` instance with concurrent sessions."""
    import asyncio

    from repro.serve import run_chaos_load, run_load

    if args.resilient:
        from repro.fleet import run_fleet_load

        report = asyncio.run(
            run_fleet_load(
                host=args.host,
                port=args.port,
                sessions=args.sessions,
                pushes=args.pushes,
                block_size=args.block_size,
                seed=args.seed,
                config={"window_size": 64, "hop": 16, "subarray_size": 16},
            )
        )
        for key, value in report.summary().items():
            out(f"  {key}: {value}")
        failed = False
        if report.diverged_columns:
            out.error(f"load: {report.diverged_columns} diverged column(s)")
            failed = True
        if not report.all_defined:
            bad = [o.outcome for o in report.outcomes if not o.defined]
            out.error(f"load: undefined session outcome(s): {bad}")
            failed = True
        if report.incomplete_sessions:
            bad = [
                f"{o.session}:{o.outcome}"
                for o in report.outcomes
                if o.outcome != "complete"
            ]
            out.error(f"load: incomplete session(s): {bad}")
            failed = True
        if failed:
            return 1
        out(
            "load: fleet run verified — zero divergence, "
            f"{report.migrations} migration(s), "
            f"{sum(o.resumes for o in report.outcomes)} resume(s)"
        )
        return 0

    if args.chaos:
        report = asyncio.run(
            run_chaos_load(
                host=args.host,
                port=args.port,
                sessions=args.sessions,
                pushes=args.pushes,
                block_size=args.block_size,
                seed=args.seed,
                chaos_seed=args.chaos_seed,
                config={"window_size": 64, "hop": 16, "subarray_size": 16},
            )
        )
        for key, value in report.summary().items():
            out(f"  {key}: {value}")
        if args.chaos_log is not None:
            with open(args.chaos_log, "w", encoding="utf-8") as handle:
                for line in report.chaos_log_lines():
                    handle.write(line + "\n")
            out(f"load: chaos log written to {args.chaos_log}")
        failed = False
        if report.diverged_columns:
            out.error(f"load: {report.diverged_columns} diverged column(s)")
            failed = True
        if not report.all_defined:
            bad = [o.outcome for o in report.outcomes if not o.defined]
            out.error(f"load: undefined session outcome(s): {bad}")
            failed = True
        incomplete = [
            o.session
            for o in report.outcomes
            if o.outcome == "complete" and o.columns != o.expected_columns
        ]
        if incomplete:
            out.error(f"load: incomplete column stream in session(s) {incomplete}")
            failed = True
        if failed:
            return 1
        out(
            "load: chaos run survived — zero divergence, "
            f"{report.total_chaos_events} chaos events, "
            f"{sum(o.reconnects for o in report.outcomes)} reconnects"
        )
        return 0

    report = asyncio.run(
        run_load(
            host=args.host,
            port=args.port,
            sessions=args.sessions,
            seconds=args.seconds,
            block_size=args.block_size,
            seed=args.seed,
        )
    )
    for key, value in report.summary().items():
        out(f"  {key}: {value}")
    if report.protocol_errors:
        out.error(f"load: {report.protocol_errors} protocol error(s)")
        return 1
    out("load: completed with zero protocol errors")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    """Record a streaming run into the capture store, bit-exactly."""
    from repro.capture import CaptureRecorder, CaptureStore, RecordingBlockSource
    from repro.runtime import (
        BlockSource,
        DetectStage,
        StreamingPipeline,
        StreamingTracker,
    )

    rng = np.random.default_rng(args.seed)
    room = stata_conference_room_small()
    scene = build_tracking_scene(room, args.humans, args.duration, rng)
    device = WiViDevice(scene, rng)
    nulling = device.calibrate()
    out(f"calibrated: {nulling.nulling_db:.1f} dB of nulling")
    series = device.capture(args.duration)
    fault_schedule = None
    if args.inject_faults:
        from repro.faults import FaultInjector, FaultSchedule, FaultScheduleConfig

        fault_schedule = FaultSchedule.generate(
            FaultScheduleConfig(), duration_s=args.duration + 2.0, seed=args.fault_seed
        )
        out(f"fault schedule (seed {args.fault_seed}): {fault_schedule.describe()}")
        series = FaultInjector(fault_schedule).corrupt_series(series, 0.0)

    samples = series.samples
    chunks = [
        samples[offset : offset + args.block_size]
        for offset in range(0, len(samples), args.block_size)
    ]
    store = CaptureStore(args.store)
    config = device.config.tracking
    writer = store.create(
        source="stream",
        config=config,
        sample_rate_hz=device.config.timeseries.sample_rate_hz,
        seed=args.seed,
        use_music=True,
        extra={
            "humans": args.humans,
            "duration_s": args.duration,
            "block_size": args.block_size,
            "fault_seed": args.fault_seed if args.inject_faults else None,
        },
    )
    recorder = CaptureRecorder(writer)
    source = RecordingBlockSource(
        BlockSource(iter(chunks), block_size=args.block_size), recorder
    )
    tracker = StreamingTracker(config)
    pipeline = StreamingPipeline(source, tracker, detector=DetectStage())
    with recorder:
        if fault_schedule is not None:
            recorder.record_fault_schedule(fault_schedule)
        with get_telemetry().span("record.run", samples=len(samples)):
            result = pipeline.run()
        for column in result.columns:
            recorder.record_column(column)
        for detection in result.detections:
            recorder.record_detection(detection)
        for event in result.health_events:
            recorder.record_health(event)
    # One parseable line, like serve's port line: scripts (and the CI
    # smoke step) read the capture id from it.
    out(f"record: capture {writer.header.capture_id} sealed in {store.root}")
    out(
        f"record: {writer.num_chunks} chunks, {writer.num_samples} samples, "
        f"{len(result.columns)} columns, {len(result.gaps)} gaps, "
        f"final health {pipeline.health.value}"
    )
    return 0


def _open_capture(args: argparse.Namespace):
    """Resolve the replay target: a bundle path or a store capture id."""
    from pathlib import Path

    from repro.capture import BUNDLE_SUFFIX, CaptureReader, CaptureStore

    if args.capture.endswith(BUNDLE_SUFFIX) and Path(args.capture).is_file():
        return CaptureReader(args.capture)
    return CaptureStore(args.store).open(args.capture)


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a capture and prove the columns bit-identical."""
    from repro.capture import promote_to_fixture, verify_capture, verify_serve
    from repro.errors import CaptureError, ReproError

    try:
        reader = _open_capture(args)
        if args.port is not None:
            verification = verify_serve(reader, args.host, args.port)
            mode = f"live serve session at {args.host}:{args.port}"
        else:
            verification = verify_capture(reader)
            mode = "offline tracker"
    except (CaptureError, ReproError, OSError) as exc:
        out.error(f"replay: {exc}")
        return 1
    if not verification.ok:
        out.error(
            f"replay: capture {verification.capture_id} DIVERGED via {mode}:"
        )
        for line in verification.mismatches:
            out.error(f"  {line}")
        return 1
    out(
        f"replay: capture {verification.capture_id} verified via {mode}: "
        f"{verification.num_columns} columns bit-identical"
    )
    if args.promote is not None:
        bundle = promote_to_fixture(reader, dest_dir=args.promote)
        out(f"replay: promoted to fixture {bundle}")
    return 0


def cmd_captures(args: argparse.Namespace) -> int:
    """List or prune the capture store."""
    import time as _time

    from repro.capture import CaptureStore, RetentionPolicy

    store = CaptureStore(args.store)
    if args.action == "list":
        infos = store.list_captures()
        if not infos:
            out(f"captures: store {store.root} is empty")
            return 0
        out(f"{'capture':>24} {'source':>8} {'sealed':>7} {'bytes':>10} {'age s':>8}")
        now = _time.time()
        for info in infos:
            out(
                f"{info.capture_id:>24} {info.source:>8} "
                f"{'yes' if info.sealed else 'NO':>7} {info.num_bytes:>10} "
                f"{max(now - info.created_ts, 0.0):>8.0f}"
            )
        out(f"captures: {len(infos)} capture(s), {store.total_bytes()} bytes total")
        return 0
    policy = RetentionPolicy(
        max_captures=args.max_captures,
        max_total_bytes=args.max_bytes,
        max_age_s=args.max_age,
    )
    if policy.unbounded:
        out.error(
            "captures prune: give at least one bound "
            "(--max-captures / --max-bytes / --max-age)"
        )
        return 2
    removed = store.prune(policy)
    for info in removed:
        out(f"captures: pruned {info.capture_id} ({info.num_bytes} bytes)")
    out(
        f"captures: pruned {len(removed)} capture(s); "
        f"{len(store.list_captures())} remain, {store.total_bytes()} bytes"
    )
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    """List DSP backends: availability, role, and conformance status.

    One parseable line per backend —

        ``name=numpy-float32 available=yes default=no active=no
        dtype=complex64 conformance=pass(max_den_err=...)``

    — so scripts (and the CI backend matrix) can grep a backend's
    status without JSON plumbing.  Unavailable backends report the
    import failure instead of a conformance verdict.
    """
    for info in backend_infos():
        if not info.available:
            status = f"unavailable({info.reason})"
        elif args.no_check:
            status = "skipped"
        else:
            status = quick_conformance(info.name)
        out(
            f"name={info.name} "
            f"available={'yes' if info.available else 'no'} "
            f"default={'yes' if info.default else 'no'} "
            f"active={'yes' if info.active else 'no'} "
            f"dtype={info.dtype} "
            f"conformance={status}"
        )
    return 0


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    """Summarize a telemetry run directory (see ``--telemetry``)."""
    from repro.telemetry.report import summarize_run

    try:
        report = summarize_run(args.directory)
    except FileNotFoundError as exc:
        out.error(str(exc))
        return 2
    out(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wi-Vi reproduction: see through walls with Wi-Fi",
    )
    parser.add_argument(
        "--dsp-backend",
        metavar="NAME",
        default=None,
        help="DSP backend for this process (overrides REPRO_DSP_BACKEND; "
        "see `repro backends` for the registered names)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    track = commands.add_parser("track", help="image movers behind a wall")
    track.add_argument("--humans", type=int, default=1)
    track.add_argument("--duration", type=float, default=8.0)
    track.add_argument(
        "--inject-faults",
        action="store_true",
        help="run through the fault-injection + recovery pipeline",
    )
    track.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule",
    )
    _add_seed(track)
    _add_observability(track)
    track.set_defaults(handler=cmd_track)

    stream = commands.add_parser(
        "stream", help="image movers online, column by column"
    )
    stream.add_argument("--humans", type=int, default=1)
    stream.add_argument("--duration", type=float, default=8.0)
    stream.add_argument(
        "--block-size",
        type=int,
        default=64,
        help="samples per streamed block",
    )
    stream.add_argument(
        "--max-buffers",
        type=int,
        default=64,
        help="receive-stream depth before overflow drops",
    )
    stream.add_argument(
        "--beamforming",
        action="store_true",
        help="plain Eq. 5.1 beamforming instead of smoothed MUSIC",
    )
    stream.add_argument(
        "--realtime",
        action="store_true",
        help="pace blocks at the 312.5 Hz channel-sample rate",
    )
    stream.add_argument(
        "--inject-faults",
        action="store_true",
        help="corrupt the stream with the deterministic fault schedule",
    )
    stream.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule",
    )
    _add_seed(stream)
    _add_observability(stream)
    stream.set_defaults(handler=cmd_stream)

    gestures = commands.add_parser("gestures", help="decode a gestured bit string")
    gestures.add_argument("bits", nargs="?", default="01")
    gestures.add_argument("--distance", type=float, default=3.0)
    _add_seed(gestures)
    _add_observability(gestures)
    gestures.set_defaults(handler=cmd_gestures)

    count = commands.add_parser("count", help="count occupants behind a wall")
    count.add_argument("--max-humans", type=int, default=3)
    count.add_argument("--duration", type=float, default=15.0)
    count.add_argument("--train-trials", type=int, default=3)
    _add_seed(count)
    _add_observability(count)
    count.set_defaults(handler=cmd_count)

    materials = commands.add_parser("materials", help="wall-material sweep")
    materials.add_argument("--distance", type=float, default=3.0)
    materials.add_argument("--materials", nargs="*", default=None)
    _add_seed(materials)
    _add_observability(materials)
    materials.set_defaults(handler=cmd_materials)

    nulling = commands.add_parser("nulling", help="run Algorithm 1")
    nulling.add_argument("--material", default='6" hollow wall')
    _add_seed(nulling)
    _add_observability(nulling)
    nulling.set_defaults(handler=cmd_nulling)

    export = commands.add_parser(
        "export", help="write the A'[theta, n] image to a PGM/PPM file"
    )
    export.add_argument("output", nargs="?", default="spectrogram.ppm")
    export.add_argument("--humans", type=int, default=1)
    export.add_argument("--duration", type=float, default=8.0)
    export.add_argument("--gray", action="store_true", help="PGM instead of PPM")
    _add_seed(export)
    _add_observability(export)
    export.set_defaults(handler=cmd_export)

    serve = commands.add_parser(
        "serve", help="run the multi-session sensing service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=9361, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="self-terminate after this many seconds (default: run forever)",
    )
    serve.add_argument("--max-sessions", type=int, default=64)
    serve.add_argument(
        "--max-batch-windows",
        type=int,
        default=64,
        help="windows one scheduler tick may stack (1 = serial dispatch)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=512,
        help="admission bound: queued windows before pushes are shed",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="per-connection read deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--write-timeout",
        type=float,
        default=10.0,
        help="per-reply write deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="inject seeded server-side chaos (stalled ticks, slow replies)",
    )
    serve.add_argument(
        "--record",
        metavar="DIR",
        default=None,
        help="record every fresh session into a capture store at DIR",
    )
    serve.add_argument(
        "--dashboard",
        action="store_true",
        help="co-host the observe gateway (/metrics, /ws/live, dashboard at /)",
    )
    serve.add_argument(
        "--dashboard-host", default="127.0.0.1", help="gateway bind host"
    )
    serve.add_argument(
        "--dashboard-port",
        type=int,
        default=0,
        help="gateway TCP port (0 picks a free one; printed on bind)",
    )
    _add_seed(serve)
    _add_observability(serve)
    serve.set_defaults(handler=cmd_serve)

    fleet = commands.add_parser(
        "fleet", help="run the sharded multi-worker sensing service"
    )
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument(
        "--port", type=int, default=9360, help="TCP port (0 picks a free one)"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shard worker processes behind the routing frontend",
    )
    fleet.add_argument(
        "--duration",
        type=float,
        default=None,
        help="self-terminate after this many seconds (default: run forever)",
    )
    fleet.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="session limit per shard worker",
    )
    fleet.add_argument(
        "--max-batch-windows",
        type=int,
        default=64,
        help="windows one scheduler tick may stack (per worker)",
    )
    fleet.add_argument(
        "--queue-capacity",
        type=int,
        default=512,
        help="per-worker admission bound: queued windows before shedding",
    )
    fleet.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="client-connection read deadline in seconds (0 disables)",
    )
    fleet.add_argument(
        "--write-timeout",
        type=float,
        default=10.0,
        help="per-reply write deadline in seconds (0 disables)",
    )
    fleet.add_argument(
        "--drain-timeout",
        type=float,
        default=15.0,
        help="seconds a draining shard may wait for sessions to migrate",
    )
    fleet.add_argument(
        "--record",
        metavar="DIR",
        default=None,
        help="record every fresh session into a shared capture store at DIR",
    )
    fleet.add_argument(
        "--dashboard",
        action="store_true",
        help="co-host the observe gateway (/metrics, /api/shards, dashboard)",
    )
    fleet.add_argument(
        "--dashboard-host", default="127.0.0.1", help="gateway bind host"
    )
    fleet.add_argument(
        "--dashboard-port",
        type=int,
        default=0,
        help="gateway TCP port (0 picks a free one; printed on bind)",
    )
    _add_seed(fleet)
    _add_observability(fleet)
    fleet.set_defaults(handler=cmd_fleet)

    observe = commands.add_parser(
        "observe", help="serve the gateway over a recorded telemetry run"
    )
    observe.add_argument(
        "--telemetry",
        dest="directory",
        metavar="DIR",
        required=True,
        help="telemetry run directory to replay (a --telemetry output)",
    )
    observe.add_argument("--host", default="127.0.0.1")
    observe.add_argument(
        "--port", type=int, default=9362, help="TCP port (0 picks a free one)"
    )
    observe.add_argument(
        "--duration",
        type=float,
        default=None,
        help="self-terminate after this many seconds (default: run forever)",
    )
    observe.add_argument(
        "--rate",
        type=float,
        default=500.0,
        help="recorded events streamed per second on /ws/live (0 = unpaced)",
    )
    observe.add_argument(
        "--quiet", action="store_true", help="suppress informational output"
    )
    observe.set_defaults(handler=cmd_observe)

    load = commands.add_parser(
        "load", help="load-generate against a running serve instance"
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=9361)
    load.add_argument("--sessions", type=int, default=8)
    load.add_argument("--seconds", type=float, default=5.0)
    load.add_argument(
        "--block-size",
        type=int,
        default=400,
        help="complex samples per push request",
    )
    load.add_argument(
        "--chaos",
        action="store_true",
        help="run the seeded chaos harness instead of the timed load",
    )
    load.add_argument(
        "--resilient",
        action="store_true",
        help="drive verifying resilient sessions (for a fleet frontend): "
        "fixed --pushes per session, every column checked bit-for-bit "
        "against offline compute",
    )
    load.add_argument(
        "--chaos-seed",
        type=int,
        default=7,
        help="seed of the per-session chaos schedules (chaos mode)",
    )
    load.add_argument(
        "--pushes",
        type=int,
        default=24,
        help="pushes per session in chaos mode (fixed, for determinism)",
    )
    load.add_argument(
        "--chaos-log",
        default=None,
        metavar="FILE",
        help="write the deterministic chaos event log to FILE",
    )
    _add_seed(load)
    _add_observability(load)
    load.set_defaults(handler=cmd_load)

    record = commands.add_parser(
        "record", help="record a streaming run into the capture store"
    )
    record.add_argument(
        "--store", default="captures", help="capture store directory"
    )
    record.add_argument("--humans", type=int, default=1)
    record.add_argument("--duration", type=float, default=8.0)
    record.add_argument(
        "--block-size", type=int, default=64, help="samples per streamed block"
    )
    record.add_argument(
        "--inject-faults",
        action="store_true",
        help="corrupt the stream with the deterministic fault schedule",
    )
    record.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault schedule",
    )
    _add_seed(record)
    _add_observability(record)
    record.set_defaults(handler=cmd_record)

    replay = commands.add_parser(
        "replay", help="replay a capture and verify bit-identical columns"
    )
    replay.add_argument(
        "capture", help="capture id in the store, or a .capture.ndjson.gz bundle"
    )
    replay.add_argument(
        "--store", default="captures", help="capture store directory"
    )
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument(
        "--port",
        type=int,
        default=None,
        help="replay through a live serve session at --host:--port "
        "(default: offline through a rebuilt tracker)",
    )
    replay.add_argument(
        "--promote",
        metavar="DIR",
        default=None,
        help="after a clean verify, freeze the capture as a fixture bundle in DIR",
    )
    _add_seed(replay)
    _add_observability(replay)
    replay.set_defaults(handler=cmd_replay)

    captures = commands.add_parser(
        "captures", help="list or prune the capture store"
    )
    captures.add_argument("action", choices=["list", "prune"])
    captures.add_argument(
        "--store", default="captures", help="capture store directory"
    )
    captures.add_argument(
        "--max-captures",
        type=int,
        default=None,
        help="prune: keep at most this many sealed captures",
    )
    captures.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="prune: keep the store under this many bytes",
    )
    captures.add_argument(
        "--max-age",
        type=float,
        default=None,
        help="prune: drop sealed captures older than this many seconds",
    )
    _add_seed(captures)
    _add_observability(captures)
    captures.set_defaults(handler=cmd_captures)

    report = commands.add_parser(
        "telemetry-report",
        help="summarize a --telemetry run directory",
    )
    report.add_argument("directory", help="directory a --telemetry run wrote")
    report.add_argument(
        "--quiet", action="store_true", help="suppress informational output"
    )
    report.set_defaults(handler=cmd_telemetry_report)

    backends = commands.add_parser(
        "backends",
        help="list DSP backends and their conformance status",
    )
    backends.add_argument(
        "--no-check",
        action="store_true",
        help="skip the conformance check (listing only)",
    )
    backends.add_argument(
        "--quiet", action="store_true", help="suppress informational output"
    )
    backends.set_defaults(handler=cmd_backends)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    The only place logging handlers and the telemetry session are
    configured: every subcommand runs inside a ``cli.<command>`` root
    span when telemetry is on, and the session is flushed (run files
    written) and deactivated on the way out — including on error.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_cli_logging(quiet=getattr(args, "quiet", False))
    if args.dsp_backend is not None:
        try:
            set_active_backend(args.dsp_backend)
        except DspBackendError as exc:
            out.error(str(exc))
            return 2
    telemetry = None
    out_dir = getattr(args, "telemetry", None)
    trace_file = getattr(args, "trace", None)
    if out_dir is not None or trace_file is not None:
        telemetry = configure(out_dir=out_dir, trace_file=trace_file)
    try:
        if telemetry is None:
            return args.handler(args)
        with telemetry.span(f"cli.{args.command}", seed=getattr(args, "seed", None)):
            code = args.handler(args)
        return code
    finally:
        if telemetry is not None:
            written = telemetry.flush()
            deactivate()
            if written:
                out(f"telemetry: wrote {', '.join(str(p) for p in written)}")


if __name__ == "__main__":
    raise SystemExit(main())
