"""repro.serve — multi-session sensing service.

A stdlib-only asyncio TCP server exposing the Wi-Vi streaming stack to
many concurrent clients over a newline-delimited-JSON protocol
(:mod:`repro.serve.protocol`).  Each connection's sessions keep their
own tracker and health machine (:mod:`repro.serve.session`); their
completed MUSIC windows meet in one cross-session micro-batching
scheduler (:mod:`repro.serve.scheduler`) that turns concurrent load
into large stacked :mod:`repro.dsp` passes — the continuous-batching
pattern from inference serving, correctness-free here thanks to the
PR-4 batch-stability contract.

The resilience layer (PR 6) makes the whole stack survivable: typed
error frames for malformed input, read/write deadlines and a scheduler
watchdog on the server, and a reconnecting, checkpoint-resuming client
(:mod:`repro.serve.resilient`) whose served columns stay bit-equal to
an uninterrupted run under the seeded chaos harness
(:mod:`repro.chaos`, driven by :func:`run_chaos_load`).
"""

from repro.serve.client import AsyncServeClient, ClientStats, PushReply, ServeClient
from repro.serve.load import (
    ChaosLoadReport,
    ChaosSessionOutcome,
    LoadReport,
    run_chaos_load,
    run_load,
)
from repro.serve.resilient import (
    BackoffPolicy,
    ResilienceStats,
    ResilientServeClient,
)
from repro.serve.scheduler import MicroBatchScheduler, SchedulerConfig, SchedulerStats
from repro.serve.session import (
    CONFIGURABLE_FIELDS,
    ServeSession,
    SessionStats,
    config_from_wire,
)
from repro.serve.server import SensingServer, ServeConfig, ServerStats

__all__ = [
    "AsyncServeClient",
    "BackoffPolicy",
    "CONFIGURABLE_FIELDS",
    "ChaosLoadReport",
    "ChaosSessionOutcome",
    "ClientStats",
    "LoadReport",
    "MicroBatchScheduler",
    "PushReply",
    "ResilienceStats",
    "ResilientServeClient",
    "SchedulerConfig",
    "SchedulerStats",
    "SensingServer",
    "ServeClient",
    "ServeConfig",
    "ServeSession",
    "ServerStats",
    "SessionStats",
    "config_from_wire",
    "run_chaos_load",
    "run_load",
]
