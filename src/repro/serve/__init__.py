"""repro.serve — multi-session sensing service.

A stdlib-only asyncio TCP server exposing the Wi-Vi streaming stack to
many concurrent clients over a newline-delimited-JSON protocol
(:mod:`repro.serve.protocol`).  Each connection's sessions keep their
own tracker and health machine (:mod:`repro.serve.session`); their
completed MUSIC windows meet in one cross-session micro-batching
scheduler (:mod:`repro.serve.scheduler`) that turns concurrent load
into large stacked :mod:`repro.dsp` passes — the continuous-batching
pattern from inference serving, correctness-free here thanks to the
PR-4 batch-stability contract.
"""

from repro.serve.client import AsyncServeClient, ClientStats, PushReply, ServeClient
from repro.serve.load import LoadReport, run_load
from repro.serve.scheduler import MicroBatchScheduler, SchedulerConfig, SchedulerStats
from repro.serve.session import (
    CONFIGURABLE_FIELDS,
    ServeSession,
    SessionStats,
    config_from_wire,
)
from repro.serve.server import SensingServer, ServeConfig, ServerStats

__all__ = [
    "AsyncServeClient",
    "CONFIGURABLE_FIELDS",
    "ClientStats",
    "LoadReport",
    "MicroBatchScheduler",
    "PushReply",
    "SchedulerConfig",
    "SchedulerStats",
    "SensingServer",
    "ServeClient",
    "ServeConfig",
    "ServeSession",
    "ServerStats",
    "SessionStats",
    "config_from_wire",
    "run_load",
]
