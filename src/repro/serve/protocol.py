"""The newline-delimited-JSON wire protocol of the sensing service.

One frame per line, one JSON object per frame, ``"type"`` names the
frame.  The request/response pairs:

==================  ======================  =======================
client sends        server replies          purpose
==================  ======================  =======================
``open_session``    ``session_opened``      create a tracking session
``push_blocks``     ``spectrogram_columns`` stream samples, get columns
                                            + detections + health
``close_session``   ``session_closed``      finish, get totals
``ping``            ``pong``                liveness probe
``server_stats``    ``server_stats_reply``  scheduler/occupancy stats
``telemetry_snapshot``  ``telemetry_snapshot_reply``  exact metrics
                                            snapshot of the serving
                                            process (fleet merge)
==================  ======================  =======================

Any request can instead draw an ``error`` frame carrying the
:mod:`repro.errors` taxonomy: the frame names the exception class
(``"error"``) and message, and :func:`raise_wire_error` re-raises the
matching class on the client, so remote failures dispatch exactly like
local ones.

**Resilience extensions** (PR 6).  ``push_blocks`` may carry a
1-based ``seq``; the server applies each sequence number at most once
(a duplicate draws an idempotent empty-columns ack flagged
``"duplicate": true``, a skip draws a typed ``SequenceError``), so a
client may blindly re-send after a lost reply.  ``open_session``
accepts ``"resumable": true`` — replies to that session's pushes then
carry a ``"checkpoint"``: the serialized tracker ingest state
(:func:`tracker_checkpoint_to_wire`), health-machine snapshot, session
stats, and last applied seq.  A later ``open_session`` with
``"resume": <checkpoint>`` rebuilds the session deterministically, so
columns served across a killed-and-resumed connection are
``np.array_equal`` to an uninterrupted run.

**Bit-exactness over JSON.**  Bulk float arrays — samples and
spectral columns — cross the wire in either of two encodings (packed
base64 little-endian float64, or plain number lists), and the decoder
accepts both.  The codec itself lives in :mod:`repro.encoding`, shared
with the on-disk capture format (:mod:`repro.capture`), and is
re-exported here unchanged — same wire format, same bit-exactness
guarantees.  Either way the served-vs-offline ``np.array_equal``
contract holds across the socket.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro import errors
from repro.encoding import (
    decode_samples,
    encode_samples,
    float_array_from_wire as _float_array_from_wire,
    float_array_to_wire as _float_array_to_wire,
    pack_floats,
    unpack_floats,
)
from repro.errors import ProtocolError, ReproError
from repro.runtime.tracker import SpectrogramColumn, TrackerCheckpoint

__all__ = [  # noqa: F822 - the codec names are re-exported imports
    "encode_frame",
    "decode_frame",
    "require_field",
    "pack_floats",
    "unpack_floats",
    "encode_samples",
    "decode_samples",
    "column_to_wire",
    "column_from_wire",
    "tracker_checkpoint_to_wire",
    "tracker_checkpoint_from_wire",
    "error_frame",
    "raise_wire_error",
]

# Frame types, client -> server.
OPEN_SESSION = "open_session"
PUSH_BLOCKS = "push_blocks"
CLOSE_SESSION = "close_session"
PING = "ping"
SERVER_STATS = "server_stats"
TELEMETRY_SNAPSHOT = "telemetry_snapshot"

# Frame types, server -> client.
SESSION_OPENED = "session_opened"
SPECTROGRAM_COLUMNS = "spectrogram_columns"
SESSION_CLOSED = "session_closed"
PONG = "pong"
SERVER_STATS_REPLY = "server_stats_reply"
TELEMETRY_SNAPSHOT_REPLY = "telemetry_snapshot_reply"
ERROR = "error"

#: Hard ceiling on one encoded frame (bytes).  A push of
#: ``max_push_samples`` complex samples stays far below this; anything
#: larger is a protocol violation, not a bigger buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialize one frame to its wire line (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(
    line: bytes | str, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises:
        ProtocolError: the line is not valid UTF-8, not a JSON object
            with a string ``"type"``, or exceeds ``max_bytes``.
    """
    if len(line) > max_bytes:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds {max_bytes}")
    if isinstance(line, (bytes, bytearray)):
        # Decode explicitly so a corrupted frame draws a *typed* error
        # naming the actual violation instead of raising through the
        # reader loop.
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("frame is not valid UTF-8") from None
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    kind = frame.get("type")
    if not isinstance(kind, str):
        raise ProtocolError('frame is missing a string "type"')
    return frame


def require_field(frame: dict[str, Any], name: str) -> Any:
    """Fetch a required frame field or raise :class:`ProtocolError`."""
    if name not in frame:
        raise ProtocolError(f'{frame.get("type", "?")} frame is missing "{name}"')
    return frame[name]


def column_to_wire(
    column: SpectrogramColumn, packed: bool = True
) -> dict[str, Any]:
    """One spectrogram column as its wire dict."""
    return {
        "index": column.index,
        "start_sample": column.start_sample,
        "time_s": column.time_s,
        "power": _float_array_to_wire(
            np.asarray(column.power, dtype=float), packed
        ),
        "num_sources": int(column.num_sources),
        "estimator": column.estimator,
    }


def column_from_wire(payload: dict[str, Any]) -> SpectrogramColumn:
    """Rebuild a :class:`SpectrogramColumn` from its wire dict."""
    try:
        return SpectrogramColumn(
            index=int(payload["index"]),
            start_sample=int(payload["start_sample"]),
            time_s=float(payload["time_s"]),
            power=_float_array_from_wire(payload["power"], "power"),
            num_sources=int(payload["num_sources"]),
            estimator=str(payload["estimator"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed column payload: {exc}") from None


def tracker_checkpoint_to_wire(
    checkpoint: TrackerCheckpoint, packed: bool = True
) -> dict[str, Any]:
    """A :class:`TrackerCheckpoint` as its wire dict (bit-exact)."""
    return {
        "buffered": encode_samples(checkpoint.buffered, packed),
        "next_start": int(checkpoint.next_start),
        "column_index": int(checkpoint.column_index),
        "samples_seen": int(checkpoint.samples_seen),
        "start_time_s": float(checkpoint.start_time_s),
        "use_music": bool(checkpoint.use_music),
    }


def tracker_checkpoint_from_wire(payload: Any) -> TrackerCheckpoint:
    """Rebuild a :class:`TrackerCheckpoint` from its wire dict.

    Raises:
        ProtocolError: the payload is not a well-formed checkpoint.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("tracker checkpoint must be a JSON object")
    try:
        return TrackerCheckpoint(
            buffered=decode_samples(payload["buffered"]),
            next_start=int(payload["next_start"]),
            column_index=int(payload["column_index"]),
            samples_seen=int(payload["samples_seen"]),
            start_time_s=float(payload["start_time_s"]),
            use_music=bool(payload["use_music"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed tracker checkpoint: {exc}") from None


def error_frame(
    exc: BaseException,
    session: str | None = None,
    seq: int | None = None,
) -> dict[str, Any]:
    """An ``error`` frame carrying the taxonomy class of ``exc``.

    Non-:class:`~repro.errors.ReproError` exceptions are reported as
    plain ``ReproError`` so a server bug never leaks an unmappable
    class name to clients.
    """
    name = type(exc).__name__ if isinstance(exc, ReproError) else "ReproError"
    frame: dict[str, Any] = {"type": ERROR, "error": name, "message": str(exc)}
    if session is not None:
        frame["session"] = session
    if seq is not None:
        frame["seq"] = seq
    return frame


def raise_wire_error(frame: dict[str, Any]) -> None:
    """Re-raise the taxonomy exception an ``error`` frame names.

    Unknown class names (or names that are not ``ReproError``
    subclasses exported by :mod:`repro.errors`) degrade to the base
    :class:`~repro.errors.ReproError` rather than failing opaquely.
    """
    name = frame.get("error", "ReproError")
    message = frame.get("message", "remote error")
    cls = getattr(errors, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        raise cls(str(message))
    except TypeError:  # pragma: no cover - classes with extra args
        raise ReproError(f"{name}: {message}") from None
