"""The newline-delimited-JSON wire protocol of the sensing service.

One frame per line, one JSON object per frame, ``"type"`` names the
frame.  The request/response pairs:

==================  ======================  =======================
client sends        server replies          purpose
==================  ======================  =======================
``open_session``    ``session_opened``      create a tracking session
``push_blocks``     ``spectrogram_columns`` stream samples, get columns
                                            + detections + health
``close_session``   ``session_closed``      finish, get totals
``ping``            ``pong``                liveness probe
``server_stats``    ``server_stats_reply``  scheduler/occupancy stats
==================  ======================  =======================

Any request can instead draw an ``error`` frame carrying the
:mod:`repro.errors` taxonomy: the frame names the exception class
(``"error"``) and message, and :func:`raise_wire_error` re-raises the
matching class on the client, so remote failures dispatch exactly like
local ones.

**Resilience extensions** (PR 6).  ``push_blocks`` may carry a
1-based ``seq``; the server applies each sequence number at most once
(a duplicate draws an idempotent empty-columns ack flagged
``"duplicate": true``, a skip draws a typed ``SequenceError``), so a
client may blindly re-send after a lost reply.  ``open_session``
accepts ``"resumable": true`` — replies to that session's pushes then
carry a ``"checkpoint"``: the serialized tracker ingest state
(:func:`tracker_checkpoint_to_wire`), health-machine snapshot, session
stats, and last applied seq.  A later ``open_session`` with
``"resume": <checkpoint>`` rebuilds the session deterministically, so
columns served across a killed-and-resumed connection are
``np.array_equal`` to an uninterrupted run.

**Bit-exactness over JSON.**  Bulk float arrays — samples and
spectral columns — cross the wire in either of two encodings, and the
decoder accepts both:

* **packed** (the default): base64 of the raw little-endian float64
  bytes.  Bit-exact by construction, ~40% smaller than decimal text,
  and three orders of magnitude cheaper to encode than per-float
  ``repr`` — the difference between the JSON codec and the DSP
  dominating a busy server's CPU.
* **plain lists** of JSON numbers, for debuggability (a frame is
  readable with ``jq``).  Still bit-exact: Python serializes floats
  via ``repr``, the shortest decimal string that round-trips to the
  identical IEEE-754 double (non-finite values ride the stdlib JSON
  extension literals ``NaN``/``Infinity``).

Either way the served-vs-offline ``np.array_equal`` contract holds
across the socket.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

import numpy as np

from repro import errors
from repro.errors import ProtocolError, ReproError
from repro.runtime.tracker import SpectrogramColumn, TrackerCheckpoint

# Frame types, client -> server.
OPEN_SESSION = "open_session"
PUSH_BLOCKS = "push_blocks"
CLOSE_SESSION = "close_session"
PING = "ping"
SERVER_STATS = "server_stats"

# Frame types, server -> client.
SESSION_OPENED = "session_opened"
SPECTROGRAM_COLUMNS = "spectrogram_columns"
SESSION_CLOSED = "session_closed"
PONG = "pong"
SERVER_STATS_REPLY = "server_stats_reply"
ERROR = "error"

#: Hard ceiling on one encoded frame (bytes).  A push of
#: ``max_push_samples`` complex samples stays far below this; anything
#: larger is a protocol violation, not a bigger buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(frame: dict[str, Any]) -> bytes:
    """Serialize one frame to its wire line (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(
    line: bytes | str, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises:
        ProtocolError: the line is not valid UTF-8, not a JSON object
            with a string ``"type"``, or exceeds ``max_bytes``.
    """
    if len(line) > max_bytes:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds {max_bytes}")
    if isinstance(line, (bytes, bytearray)):
        # Decode explicitly so a corrupted frame draws a *typed* error
        # naming the actual violation instead of raising through the
        # reader loop.
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("frame is not valid UTF-8") from None
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    kind = frame.get("type")
    if not isinstance(kind, str):
        raise ProtocolError('frame is missing a string "type"')
    return frame


def require_field(frame: dict[str, Any], name: str) -> Any:
    """Fetch a required frame field or raise :class:`ProtocolError`."""
    if name not in frame:
        raise ProtocolError(f'{frame.get("type", "?")} frame is missing "{name}"')
    return frame[name]


def pack_floats(values: np.ndarray) -> str:
    """Float64 array -> base64 of its little-endian bytes (bit-exact)."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype="<f8").tobytes()
    ).decode("ascii")


def unpack_floats(payload: str) -> np.ndarray:
    """Inverse of :func:`pack_floats`.

    Raises:
        ProtocolError: not valid base64, or not whole float64s.
    """
    try:
        raw = base64.b64decode(payload.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError):
        raise ProtocolError("packed floats are not valid base64") from None
    if len(raw) % 8 != 0:
        raise ProtocolError("packed floats are not whole float64s")
    return np.frombuffer(raw, dtype="<f8").astype(float)


def _float_array_to_wire(values: np.ndarray, packed: bool) -> Any:
    return pack_floats(values) if packed else values.tolist()


def _float_array_from_wire(payload: Any, what: str) -> np.ndarray:
    """Decode either encoding of a float array field."""
    if isinstance(payload, str):
        return unpack_floats(payload)
    if not isinstance(payload, list):
        raise ProtocolError(f"{what} must be a list of numbers or a packed string")
    try:
        values = np.asarray(payload, dtype=float)
    except (TypeError, ValueError):
        raise ProtocolError(f"{what} must contain only numbers") from None
    if values.ndim != 1:
        raise ProtocolError(f"{what} must be a flat list")
    return values


def encode_samples(samples: np.ndarray, packed: bool = True) -> Any:
    """Complex samples -> interleaved ``re, im`` pairs, packed or plain."""
    samples = np.asarray(samples, dtype=complex)
    if samples.ndim != 1:
        raise ValueError("samples must be one-dimensional")
    interleaved = np.empty(2 * len(samples), dtype=float)
    interleaved[0::2] = samples.real
    interleaved[1::2] = samples.imag
    return _float_array_to_wire(interleaved, packed)


def decode_samples(payload: Any) -> np.ndarray:
    """Interleaved re/im floats (either encoding) -> complex128 samples.

    Raises:
        ProtocolError: the payload is not an even-length run of floats.
    """
    interleaved = _float_array_from_wire(payload, "samples")
    if len(interleaved) % 2 != 0:
        raise ProtocolError("samples must interleave an even run of floats")
    # Assemble via the component views, not ``re + 1j * im``: the
    # multiply turns an infinite imaginary part into a NaN real part,
    # corrupting the non-finite samples fault injection relies on.
    samples = np.empty(len(interleaved) // 2, dtype=complex)
    samples.real = interleaved[0::2]
    samples.imag = interleaved[1::2]
    return samples


def column_to_wire(
    column: SpectrogramColumn, packed: bool = True
) -> dict[str, Any]:
    """One spectrogram column as its wire dict."""
    return {
        "index": column.index,
        "start_sample": column.start_sample,
        "time_s": column.time_s,
        "power": _float_array_to_wire(
            np.asarray(column.power, dtype=float), packed
        ),
        "num_sources": int(column.num_sources),
        "estimator": column.estimator,
    }


def column_from_wire(payload: dict[str, Any]) -> SpectrogramColumn:
    """Rebuild a :class:`SpectrogramColumn` from its wire dict."""
    try:
        return SpectrogramColumn(
            index=int(payload["index"]),
            start_sample=int(payload["start_sample"]),
            time_s=float(payload["time_s"]),
            power=_float_array_from_wire(payload["power"], "power"),
            num_sources=int(payload["num_sources"]),
            estimator=str(payload["estimator"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed column payload: {exc}") from None


def tracker_checkpoint_to_wire(
    checkpoint: TrackerCheckpoint, packed: bool = True
) -> dict[str, Any]:
    """A :class:`TrackerCheckpoint` as its wire dict (bit-exact)."""
    return {
        "buffered": encode_samples(checkpoint.buffered, packed),
        "next_start": int(checkpoint.next_start),
        "column_index": int(checkpoint.column_index),
        "samples_seen": int(checkpoint.samples_seen),
        "start_time_s": float(checkpoint.start_time_s),
        "use_music": bool(checkpoint.use_music),
    }


def tracker_checkpoint_from_wire(payload: Any) -> TrackerCheckpoint:
    """Rebuild a :class:`TrackerCheckpoint` from its wire dict.

    Raises:
        ProtocolError: the payload is not a well-formed checkpoint.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("tracker checkpoint must be a JSON object")
    try:
        return TrackerCheckpoint(
            buffered=decode_samples(payload["buffered"]),
            next_start=int(payload["next_start"]),
            column_index=int(payload["column_index"]),
            samples_seen=int(payload["samples_seen"]),
            start_time_s=float(payload["start_time_s"]),
            use_music=bool(payload["use_music"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed tracker checkpoint: {exc}") from None


def error_frame(
    exc: BaseException,
    session: str | None = None,
    seq: int | None = None,
) -> dict[str, Any]:
    """An ``error`` frame carrying the taxonomy class of ``exc``.

    Non-:class:`~repro.errors.ReproError` exceptions are reported as
    plain ``ReproError`` so a server bug never leaks an unmappable
    class name to clients.
    """
    name = type(exc).__name__ if isinstance(exc, ReproError) else "ReproError"
    frame: dict[str, Any] = {"type": ERROR, "error": name, "message": str(exc)}
    if session is not None:
        frame["session"] = session
    if seq is not None:
        frame["seq"] = seq
    return frame


def raise_wire_error(frame: dict[str, Any]) -> None:
    """Re-raise the taxonomy exception an ``error`` frame names.

    Unknown class names (or names that are not ``ReproError``
    subclasses exported by :mod:`repro.errors`) degrade to the base
    :class:`~repro.errors.ReproError` rather than failing opaquely.
    """
    name = frame.get("error", "ReproError")
    message = frame.get("message", "remote error")
    cls = getattr(errors, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        raise cls(str(message))
    except TypeError:  # pragma: no cover - classes with extra args
        raise ReproError(f"{name}: {message}") from None
