"""Cross-session micro-batching of MUSIC windows — the serving core.

The continuous-batching pattern from inference serving, applied to the
Wi-Vi DSP hot path: every active session's completed windows land in
one bounded admission queue, and each scheduler *tick* drains up to
``max_batch_windows`` compatible windows — across sessions — into one
contiguous stack for a single :func:`repro.core.tracking.
estimate_windows_batch` pass (one smoothed-covariance matmul, one
stacked ``eigh``, one masked pseudospectrum projection).  The PR-4
batch-stability contract makes this free of correctness cost: each
window's row is bit-identical whether it is estimated alone, inside
its own session's batch, or sandwiched between two other tenants'
windows.

Batching happens naturally under load without timers: the batch
computation itself blocks the event loop, during which every pending
client push accumulates in socket buffers; when the tick finishes and
the loop turns, all of those pushes enqueue their windows before the
next tick drains them.  An idle scheduler sleeps on an event and adds
no latency to a lone window.

Three policies round out the serving story:

* **Admission** — the queue is bounded; :meth:`MicroBatchScheduler.
  admit` answers whether a push's windows fit *before* the session
  buffers a sample, so shedding never desynchronizes a tracker.
* **Load shedding** — a push that does not fit is refused whole with
  :class:`~repro.errors.ServeOverloadError`; the shed windows are
  counted, never silently dropped mid-window.
* **Graceful drain** — shutdown stops admissions, runs ticks until
  the queue is empty, and only then lets the server close, so every
  admitted window is answered.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.tracking import (
    ESTIMATOR_BEAMFORMING,
    SpectrogramFrame,
    TrackingConfig,
    estimate_windows_batch,
)
from repro.dsp.backend import active_backend_name
from repro.dsp.spectrum import beamform_batch
from repro.dsp.steering import steering_matrix
from repro.errors import ServeOverloadError
from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.tracker import PendingWindow

#: Batch-occupancy histogram edges (windows per tick).
OCCUPANCY_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the micro-batching scheduler.

    Attributes:
        max_batch_windows: most windows one tick stacks (1 turns the
            scheduler into the per-window serial-dispatch baseline the
            load benchmark compares against).
        queue_capacity: admission bound — total windows that may wait
            across all sessions before pushes are shed.
        watchdog_timeout_s: windows waiting longer than this with no
            tick completing trip the watchdog, which degrades to
            per-session serial DSP compute (one window per pass) until
            batch ticks resume — the PR-1 degraded-mode philosophy
            applied to the scheduler.  ``None`` disables the watchdog.
            The watchdog shares the event loop, so it covers ticks
            stalled *at an await* (injected chaos stalls, wakeup bugs);
            a tick stalled inside a blocking numpy call stalls the
            whole loop and no in-process watchdog can help.
    """

    max_batch_windows: int = 64
    queue_capacity: int = 512
    watchdog_timeout_s: float | None = 2.0

    def __post_init__(self) -> None:
        if self.max_batch_windows < 1:
            raise ValueError("max_batch_windows must be positive")
        if self.queue_capacity < self.max_batch_windows:
            raise ValueError("queue_capacity must hold at least one full batch")
        if self.watchdog_timeout_s is not None and self.watchdog_timeout_s <= 0:
            raise ValueError("watchdog_timeout_s must be positive (or None)")


@dataclass
class _Entry:
    """One queued window: its batch group, payload, and completion."""

    key: tuple[TrackingConfig, bool]
    config: TrackingConfig
    use_music: bool
    window: np.ndarray
    future: asyncio.Future


@dataclass
class SchedulerStats:
    """Always-on accounting (no telemetry session required)."""

    ticks: int = 0
    windows: int = 0
    shed_windows: int = 0
    max_queue_depth: int = 0
    watchdog_activations: int = 0
    serial_windows: int = 0
    occupancy: Histogram = field(
        default_factory=lambda: Histogram("serve.batch_windows", OCCUPANCY_BUCKETS)
    )

    @property
    def mean_batch_windows(self) -> float:
        return self.windows / self.ticks if self.ticks else 0.0

    def snapshot(self) -> dict:
        return {
            "ticks": self.ticks,
            "windows": self.windows,
            "shed_windows": self.shed_windows,
            "max_queue_depth": self.max_queue_depth,
            "watchdog_activations": self.watchdog_activations,
            "serial_windows": self.serial_windows,
            "mean_batch_windows": self.mean_batch_windows,
            "batch_p50": self.occupancy.percentile(0.5),
            "batch_p99": self.occupancy.percentile(0.99),
            "dsp_backend": active_backend_name(),
        }


class MicroBatchScheduler:
    """Drains ready windows from all sessions into stacked DSP passes.

    Windows batch together when they share a *group key* — the frozen
    :class:`TrackingConfig` plus the MUSIC/beamforming choice — since a
    stack must agree on window size, smoothing geometry, and estimator.
    A tick serves the oldest queued group first and sweeps the whole
    queue for its key, so two interleaved tenants with the same config
    share every tick while a third, differently-configured tenant
    simply forms its own batches.  Per-session window order survives
    because one session maps to exactly one key.
    """

    def __init__(self, config: SchedulerConfig | None = None, chaos=None, hub=None):
        self.config = config if config is not None else SchedulerConfig()
        #: Optional :class:`repro.chaos.ServerChaos`; its ``before_tick``
        #: hook runs (and may stall) ahead of every batch tick.
        self.chaos = chaos
        #: Optional :class:`repro.observe.hub.TelemetryHub` tap for
        #: shed pushes and watchdog degradations; never blocks.
        self.hub = hub
        self.stats = SchedulerStats()
        self._queue: list[_Entry] = []
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._watchdog_task: asyncio.Task | None = None
        self._watchdog_stop: asyncio.Event | None = None
        self._last_progress = 0.0
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Launch the tick loop (and watchdog) on the running event loop."""
        if self.running:
            raise RuntimeError("scheduler is already running")
        self._draining = False
        self._last_progress = time.monotonic()
        self._task = asyncio.create_task(self._run(), name="serve-scheduler")
        if self.config.watchdog_timeout_s is not None:
            self._watchdog_stop = asyncio.Event()
            self._watchdog_task = asyncio.create_task(
                self._watchdog(), name="serve-scheduler-watchdog"
            )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish everything queued.

        Every already-admitted window still gets its frame; only then
        does the tick loop exit.  Idempotent.
        """
        self._draining = True
        self._wakeup.set()
        if self._task is not None:
            await self._task
            self._task = None
        if self._watchdog_task is not None:
            # Ask, don't cancel: the watchdog may be mid serial-drain
            # and owns futures it must complete before exiting.
            self._watchdog_stop.set()
            await self._watchdog_task
            self._watchdog_task = None
            self._watchdog_stop = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, num_windows: int) -> bool:
        """Whether ``num_windows`` more windows fit the admission queue."""
        if self._draining:
            return False
        return len(self._queue) + num_windows <= self.config.queue_capacity

    def shed(self, num_windows: int) -> ServeOverloadError:
        """Account a refused push; returns the error to send the client."""
        self.stats.shed_windows += num_windows
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.shed_windows").inc(num_windows)
        if self.hub is not None:
            self.hub.publish(
                "serve.shed", windows=num_windows, queue_depth=len(self._queue)
            )
        return ServeOverloadError(
            f"admission queue at {len(self._queue)}/{self.config.queue_capacity} "
            f"windows cannot absorb {num_windows} more; retry later"
        )

    def submit(
        self, config: TrackingConfig, use_music: bool, pending: "PendingWindow"
    ) -> asyncio.Future:
        """Queue one ready window; the future resolves to its frame.

        Callers must have cleared :meth:`admit` for the whole push
        first — submit itself refuses (raises
        :class:`ServeOverloadError`) only as a backstop.
        """
        if self._draining or len(self._queue) >= self.config.queue_capacity:
            raise self.shed(1)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.append(
            _Entry(
                key=(config, use_music),
                config=config,
                use_music=use_music,
                window=pending.samples,
                future=future,
            )
        )
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        self._wakeup.set()
        return future

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------

    def _take_batch(self) -> list[_Entry]:
        """Pop the oldest group's windows, up to ``max_batch_windows``.

        Sweeps the whole queue for entries sharing the head's group
        key, preserving arrival order within the batch and in the
        remainder.
        """
        key = self._queue[0].key
        limit = self.config.max_batch_windows
        batch: list[_Entry] = []
        remainder: list[_Entry] = []
        for entry in self._queue:
            if entry.key == key and len(batch) < limit:
                batch.append(entry)
            else:
                remainder.append(entry)
        self._queue = remainder
        return batch

    def _estimate_batch(self, batch: list[_Entry]) -> list[SpectrogramFrame]:
        """One stacked DSP pass over a compatible window batch."""
        config = batch[0].config
        windows = np.stack([entry.window for entry in batch])
        if batch[0].use_music:
            power, counts, estimators = estimate_windows_batch(windows, config)
            return [
                SpectrogramFrame(
                    power=power[i],
                    num_sources=int(counts[i]),
                    estimator=str(estimators[i]),
                )
                for i in range(len(batch))
            ]
        # Beamformed sessions: per-window mean removal exactly as
        # compute_beamformed_frame does it (scalar mean per window, so
        # the arithmetic is untouched by batching), then one batched
        # Eq. 5.1 projection — bit-identical by the stability contract.
        centered = np.stack([w - w.mean() for w in windows])
        steering = steering_matrix(
            config.theta_grid_deg,
            windows.shape[1],
            config.spacing_m,
            config.wavelength_m,
        )
        magnitudes = beamform_batch(centered, steering)
        return [
            SpectrogramFrame(
                power=magnitudes[i], num_sources=0, estimator=ESTIMATOR_BEAMFORMING
            )
            for i in range(len(batch))
        ]

    def _tick(self) -> None:
        """Drain one batch and complete its futures."""
        if not self._queue:
            # The watchdog (or a drain) emptied the queue while this
            # tick was stalled at an await; nothing left to do.
            return
        batch = self._take_batch()
        try:
            frames = self._estimate_batch(batch)
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        for entry, frame in zip(batch, frames):
            if not entry.future.done():
                entry.future.set_result(frame)
        self.stats.ticks += 1
        self.stats.windows += len(batch)
        self.stats.occupancy.observe(len(batch))
        self._last_progress = time.monotonic()
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.ticks").inc()
            telemetry.metrics.counter("serve.windows").inc(len(batch))
            telemetry.metrics.histogram(
                "serve.batch_windows", OCCUPANCY_BUCKETS
            ).observe(len(batch))
            telemetry.metrics.gauge("serve.queue_depth").set(len(self._queue))

    async def _run(self) -> None:
        while True:
            if not self._queue:
                if self._draining:
                    return
                self._wakeup.clear()
                # Even with an empty queue, progress is "now": a quiet
                # scheduler is idle, not stalled.
                self._last_progress = time.monotonic()
                await self._wakeup.wait()
                continue
            if self.chaos is not None:
                # Chaos may stall here — exactly the window in which
                # the watchdog's serial degraded path takes over.
                await self.chaos.before_tick()
            self._tick()
            # Yield one loop turn: handlers consume the frames just
            # completed and the reader callbacks that piled up during
            # the tick enqueue the next wave of windows.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # The watchdog
    # ------------------------------------------------------------------

    async def _serial_drain(self) -> None:
        """Degraded mode: complete queued windows one at a time.

        Each window is estimated as its own batch of one — by the PR-4
        batch-stability contract that is bit-identical to any stacked
        pass, so degrading costs throughput, never correctness.  A
        loop turn is yielded per window so waiting handlers stream
        their replies out while the drain proceeds.
        """
        while self._queue:
            entry = self._queue.pop(0)
            try:
                frames = self._estimate_batch([entry])
            except Exception as exc:  # noqa: BLE001 - forwarded to the waiter
                if not entry.future.done():
                    entry.future.set_exception(exc)
                continue
            if not entry.future.done():
                entry.future.set_result(frames[0])
            self.stats.serial_windows += 1
            self._last_progress = time.monotonic()
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.metrics.counter("serve.serial_windows").inc()
            await asyncio.sleep(0)

    async def _watchdog(self) -> None:
        """Degrade to serial compute when batch ticks stall.

        Fires when windows sit queued past ``watchdog_timeout_s`` with
        no tick completing — a stalled tick loop (chaos stall, a bug
        holding the wakeup) would otherwise wedge every waiting push.
        """
        timeout = self.config.watchdog_timeout_s
        poll = min(timeout / 4.0, 0.05)
        while True:
            try:
                await asyncio.wait_for(self._watchdog_stop.wait(), timeout=poll)
                return
            except asyncio.TimeoutError:
                pass
            if (
                self._queue
                and time.monotonic() - self._last_progress > timeout
            ):
                self.stats.watchdog_activations += 1
                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.metrics.counter("serve.watchdog_activations").inc()
                    telemetry.events.emit(
                        "serve.watchdog_degraded",
                        queued_windows=len(self._queue),
                        stalled_s=round(
                            time.monotonic() - self._last_progress, 3
                        ),
                    )
                if self.hub is not None:
                    self.hub.publish(
                        "serve.watchdog",
                        queued_windows=len(self._queue),
                        stalled_s=round(time.monotonic() - self._last_progress, 3),
                    )
                await self._serial_drain()
