"""Load generator for the sensing service.

Spins N concurrent sessions — each its own connection, so the server's
micro-batching has real cross-session concurrency to exploit — and
streams seeded complex-noise blocks for a fixed duration.  Reports the
numbers the serving benchmark and the CI smoke step care about:
aggregate columns/s, request-latency percentiles, error/shed counts,
and the server's own scheduler snapshot (batch occupancy).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.chaos import ChaosSchedule, ChaosScheduleConfig, ClientChaos
from repro.core.tracking import compute_spectrogram
from repro.errors import ReproError, ServeOverloadError
from repro.serve.client import AsyncServeClient
from repro.serve.resilient import BackoffPolicy, ResilientServeClient
from repro.serve.session import config_from_wire

#: Default seed; matches benchmarks/common.py (Wi-Vi's SIGCOMM 2013
#: camera-ready date) without importing from outside the package.
DEFAULT_SEED = 20130812


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    sessions: int = 0
    seconds: float = 0.0
    requests: int = 0
    columns: int = 0
    detections: int = 0
    protocol_errors: int = 0
    shed_requests: int = 0
    latencies_s: list[float] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def columns_per_s(self) -> float:
        return self.columns / self.seconds if self.seconds > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Request latency percentile in milliseconds."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q * 100)) * 1e3

    def summary(self) -> dict[str, Any]:
        return {
            "sessions": self.sessions,
            "seconds": round(self.seconds, 3),
            "requests": self.requests,
            "columns": self.columns,
            "columns_per_s": round(self.columns_per_s, 2),
            "detections": self.detections,
            "protocol_errors": self.protocol_errors,
            "shed_requests": self.shed_requests,
            "latency_p50_ms": round(self.latency_percentile(0.5), 3),
            "latency_p99_ms": round(self.latency_percentile(0.99), 3),
            "batch_occupancy_mean": self.server_stats.get("scheduler", {}).get(
                "mean_batch_windows"
            ),
            "batch_occupancy_p99": self.server_stats.get("scheduler", {}).get(
                "batch_p99"
            ),
        }


async def _drive_session(
    host: str,
    port: int,
    seconds: float,
    block_size: int,
    seed: int,
    config: dict[str, Any] | None,
    report: LoadReport,
    stop: asyncio.Event,
) -> None:
    """One session's lifetime: open, push until the clock runs out, close."""
    rng = np.random.default_rng(seed)
    client = AsyncServeClient(host, port)
    await client.connect()
    try:
        await client.open_session(config=config)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + seconds
        while loop.time() < deadline and not stop.is_set():
            block = rng.standard_normal(block_size) + 1j * rng.standard_normal(
                block_size
            )
            try:
                await client.push(block)
            except ServeOverloadError:
                report.shed_requests += 1
                await asyncio.sleep(0.01)
            except ReproError:
                report.protocol_errors += 1
                break
        try:
            await client.close_session()
        except (ReproError, ConnectionError):  # pragma: no cover - teardown race
            pass
    finally:
        report.requests += client.stats.requests
        report.columns += client.stats.columns
        report.detections += client.stats.detections
        report.latencies_s.extend(client.stats.latencies_s)
        await client.aclose()


async def run_load(
    host: str,
    port: int,
    sessions: int = 8,
    seconds: float = 5.0,
    block_size: int = 400,
    seed: int = DEFAULT_SEED,
    config: dict[str, Any] | None = None,
) -> LoadReport:
    """Drive ``sessions`` concurrent clients for ``seconds``.

    Each session streams independent seeded noise (seed + session
    index), so runs are reproducible while sessions stay decorrelated.
    """
    report = LoadReport(sessions=sessions, seconds=seconds)
    stop = asyncio.Event()
    tasks = [
        asyncio.create_task(
            _drive_session(
                host, port, seconds, block_size, seed + i, config, report, stop
            ),
            name=f"load-session-{i}",
        )
        for i in range(sessions)
    ]
    results = await asyncio.gather(*tasks, return_exceptions=True)
    for outcome in results:
        if isinstance(outcome, BaseException):
            report.protocol_errors += 1
    # One last connection for the server's own view of the run.
    probe = AsyncServeClient(host, port)
    try:
        await probe.connect()
        report.server_stats = await probe.server_stats()
        await probe.aclose()
    except (ConnectionError, OSError, ReproError):  # pragma: no cover
        pass
    return report


# ----------------------------------------------------------------------
# Chaos mode
# ----------------------------------------------------------------------


@dataclass
class ChaosSessionOutcome:
    """How one chaos-driven session ended."""

    session: int
    outcome: str  # "complete" or "error:<TaxonomyClass>"
    columns: int = 0
    expected_columns: int = 0
    diverged_columns: int = 0
    reconnects: int = 0
    resumes: int = 0
    duplicate_acks: int = 0
    chaos_events_applied: int = 0

    @property
    def defined(self) -> bool:
        """Terminal state the failure model allows: done, or typed."""
        return self.outcome == "complete" or self.outcome.startswith("error:")


@dataclass
class ChaosLoadReport:
    """Aggregate outcome of one seeded chaos load run.

    The two gates the soak enforces: :attr:`diverged_columns` must be
    zero (every served column bit-equal to the offline reference), and
    every session outcome must be *defined* — either ``complete`` or a
    typed taxonomy error, never a hang or an unhandled exception.
    """

    sessions: int = 0
    pushes_per_session: int = 0
    chaos_seed: int = 0
    outcomes: list[ChaosSessionOutcome] = field(default_factory=list)
    recovery_latencies_s: list[float] = field(default_factory=list)
    chaos_log: list[str] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def diverged_columns(self) -> int:
        return sum(outcome.diverged_columns for outcome in self.outcomes)

    @property
    def all_defined(self) -> bool:
        return all(outcome.defined for outcome in self.outcomes)

    @property
    def total_chaos_events(self) -> int:
        return sum(o.chaos_events_applied for o in self.outcomes)

    def recovery_percentile(self, q: float) -> float:
        """Reconnect-to-first-column latency percentile, milliseconds."""
        if not self.recovery_latencies_s:
            return 0.0
        return float(
            np.percentile(np.asarray(self.recovery_latencies_s), q * 100)
        ) * 1e3

    def chaos_log_lines(self) -> list[str]:
        """The deterministic chaos record: plans + client-side logs.

        Bit-for-bit identical across runs of the same seeds — the
        property the CI soak diffs.  Server-side STALL_TICK and
        REPLY_LATENCY application is timing-dependent (tick counts vary
        with load), so it is deliberately excluded; see DESIGN.md §11.
        """
        return list(self.chaos_log)

    def summary(self) -> dict[str, Any]:
        return {
            "sessions": self.sessions,
            "pushes_per_session": self.pushes_per_session,
            "chaos_seed": self.chaos_seed,
            "chaos_events_applied": self.total_chaos_events,
            "columns": sum(o.columns for o in self.outcomes),
            "diverged_columns": self.diverged_columns,
            "all_outcomes_defined": self.all_defined,
            "outcomes": [o.outcome for o in self.outcomes],
            "reconnects": sum(o.reconnects for o in self.outcomes),
            "resumes": sum(o.resumes for o in self.outcomes),
            "duplicate_acks": sum(o.duplicate_acks for o in self.outcomes),
            "recovery_p50_ms": round(self.recovery_percentile(0.5), 3),
            "recovery_p99_ms": round(self.recovery_percentile(0.99), 3),
        }


def _chaos_trace(seed: int, pushes: int, block_size: int) -> np.ndarray:
    """One session's full seeded trace, generated up front.

    Pre-generating (rather than drawing inside the push loop) is what
    makes the offline reference and the re-sent pushes bit-identical.
    """
    rng = np.random.default_rng(seed)
    n = np.arange(pushes * block_size)
    return (
        np.exp(1j * 0.12 * n)
        + 0.4 * np.exp(-1j * 0.05 * n)
        + 0.25 * (rng.standard_normal(len(n)) + 1j * rng.standard_normal(len(n)))
        + 0.6
    )


async def _drive_chaos_session(
    index: int,
    host: str,
    port: int,
    trace: np.ndarray,
    block_size: int,
    pushes: int,
    chaos: ClientChaos,
    backoff: BackoffPolicy,
    config: dict[str, Any] | None,
    expected_power: np.ndarray,
) -> tuple[ChaosSessionOutcome, list[float]]:
    """One session's chaos-ridden lifetime; never raises."""
    client = ResilientServeClient(
        host,
        port,
        session_config=config,
        chaos=chaos,
        backoff=backoff,
        seed=chaos.seed,
    )
    outcome = "complete"
    try:
        await client.start()
        for push in range(pushes):
            block = trace[push * block_size : (push + 1) * block_size]
            await client.push(block)
        await client.close_session()
    except ReproError as exc:
        outcome = f"error:{type(exc).__name__}"
    except (ConnectionError, OSError, asyncio.IncompleteReadError):
        outcome = "error:ConnectionError"
    finally:
        await client.aclose()
    served = client.served_columns()
    diverged = 0
    for column in served:
        if column.index >= len(expected_power) or not np.array_equal(
            column.power, expected_power[column.index]
        ):
            diverged += 1
    if outcome == "complete" and len(served) != len(expected_power):
        outcome = "error:IncompleteStream"
    return ChaosSessionOutcome(
        session=index,
        outcome=outcome,
        columns=len(served),
        expected_columns=len(expected_power),
        diverged_columns=diverged,
        reconnects=client.stats.reconnects,
        resumes=client.stats.resumes,
        duplicate_acks=client.stats.duplicate_acks,
        chaos_events_applied=client.stats.chaos_events_applied,
    ), client.stats.recovery_latencies_s


async def run_chaos_load(
    host: str,
    port: int,
    sessions: int = 8,
    pushes: int = 24,
    block_size: int = 200,
    seed: int = DEFAULT_SEED,
    chaos_seed: int = 7,
    chaos_config: ChaosScheduleConfig | None = None,
    config: dict[str, Any] | None = None,
    backoff: BackoffPolicy | None = None,
) -> ChaosLoadReport:
    """Drive N resilient sessions through seeded chaos; verify columns.

    Each session gets its own trace (``seed + i``) and its own chaos
    schedule (``chaos_seed + i``, horizon = its push count), applied by
    :class:`ResilientServeClient`.  Every served column is checked
    bit-for-bit against the offline ``compute_spectrogram`` of the same
    trace, so a recovery bug that drops, re-orders, or re-computes a
    window differently is a counted divergence, not a silent pass.
    """
    chaos_config = chaos_config or ChaosScheduleConfig()
    backoff = backoff or BackoffPolicy()
    report = ChaosLoadReport(
        sessions=sessions, pushes_per_session=pushes, chaos_seed=chaos_seed
    )
    tracking = config_from_wire(dict(config) if config else None)
    plans: list[ClientChaos] = []
    traces: list[np.ndarray] = []
    references: list[np.ndarray] = []
    for i in range(sessions):
        schedule = ChaosSchedule.generate(chaos_config, pushes, chaos_seed + i)
        plans.append(ClientChaos(schedule, seed=chaos_seed + i))
        trace = _chaos_trace(seed + i, pushes, block_size)
        traces.append(trace)
        references.append(compute_spectrogram(trace, tracking).power)
    results = await asyncio.gather(
        *[
            _drive_chaos_session(
                i,
                host,
                port,
                traces[i],
                block_size,
                pushes,
                plans[i],
                backoff,
                config,
                references[i],
            )
            for i in range(sessions)
        ],
        return_exceptions=True,
    )
    for i, result in enumerate(results):
        if isinstance(result, BaseException):
            # A driver bug, not a protocol outcome: record it as an
            # *undefined* terminal state so the gate fails loudly.
            report.outcomes.append(
                ChaosSessionOutcome(
                    session=i, outcome=f"undefined:{type(result).__name__}"
                )
            )
            continue
        outcome, recoveries = result
        report.outcomes.append(outcome)
        report.recovery_latencies_s.extend(recoveries)
    # The deterministic chaos record: per-session plan + applied log.
    for i, plan in enumerate(plans):
        for line in plan.schedule.describe():
            report.chaos_log.append(f"s{i} plan {line}")
        for entry in plan.log:
            report.chaos_log.append(f"s{i} applied {entry.describe()}")
    probe = AsyncServeClient(host, port)
    try:
        await probe.connect()
        report.server_stats = await probe.server_stats()
        await probe.aclose()
    except (ConnectionError, OSError, ReproError):  # pragma: no cover
        pass
    return report
