"""Load generator for the sensing service.

Spins N concurrent sessions — each its own connection, so the server's
micro-batching has real cross-session concurrency to exploit — and
streams seeded complex-noise blocks for a fixed duration.  Reports the
numbers the serving benchmark and the CI smoke step care about:
aggregate columns/s, request-latency percentiles, error/shed counts,
and the server's own scheduler snapshot (batch occupancy).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ReproError, ServeOverloadError
from repro.serve.client import AsyncServeClient

#: Default seed; matches benchmarks/common.py (Wi-Vi's SIGCOMM 2013
#: camera-ready date) without importing from outside the package.
DEFAULT_SEED = 20130812


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    sessions: int = 0
    seconds: float = 0.0
    requests: int = 0
    columns: int = 0
    detections: int = 0
    protocol_errors: int = 0
    shed_requests: int = 0
    latencies_s: list[float] = field(default_factory=list)
    server_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def columns_per_s(self) -> float:
        return self.columns / self.seconds if self.seconds > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Request latency percentile in milliseconds."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q * 100)) * 1e3

    def summary(self) -> dict[str, Any]:
        return {
            "sessions": self.sessions,
            "seconds": round(self.seconds, 3),
            "requests": self.requests,
            "columns": self.columns,
            "columns_per_s": round(self.columns_per_s, 2),
            "detections": self.detections,
            "protocol_errors": self.protocol_errors,
            "shed_requests": self.shed_requests,
            "latency_p50_ms": round(self.latency_percentile(0.5), 3),
            "latency_p99_ms": round(self.latency_percentile(0.99), 3),
            "batch_occupancy_mean": self.server_stats.get("scheduler", {}).get(
                "mean_batch_windows"
            ),
            "batch_occupancy_p99": self.server_stats.get("scheduler", {}).get(
                "batch_p99"
            ),
        }


async def _drive_session(
    host: str,
    port: int,
    seconds: float,
    block_size: int,
    seed: int,
    config: dict[str, Any] | None,
    report: LoadReport,
    stop: asyncio.Event,
) -> None:
    """One session's lifetime: open, push until the clock runs out, close."""
    rng = np.random.default_rng(seed)
    client = AsyncServeClient(host, port)
    await client.connect()
    try:
        await client.open_session(config=config)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + seconds
        while loop.time() < deadline and not stop.is_set():
            block = rng.standard_normal(block_size) + 1j * rng.standard_normal(
                block_size
            )
            try:
                await client.push(block)
            except ServeOverloadError:
                report.shed_requests += 1
                await asyncio.sleep(0.01)
            except ReproError:
                report.protocol_errors += 1
                break
        try:
            await client.close_session()
        except (ReproError, ConnectionError):  # pragma: no cover - teardown race
            pass
    finally:
        report.requests += client.stats.requests
        report.columns += client.stats.columns
        report.detections += client.stats.detections
        report.latencies_s.extend(client.stats.latencies_s)
        await client.aclose()


async def run_load(
    host: str,
    port: int,
    sessions: int = 8,
    seconds: float = 5.0,
    block_size: int = 400,
    seed: int = DEFAULT_SEED,
    config: dict[str, Any] | None = None,
) -> LoadReport:
    """Drive ``sessions`` concurrent clients for ``seconds``.

    Each session streams independent seeded noise (seed + session
    index), so runs are reproducible while sessions stay decorrelated.
    """
    report = LoadReport(sessions=sessions, seconds=seconds)
    stop = asyncio.Event()
    tasks = [
        asyncio.create_task(
            _drive_session(
                host, port, seconds, block_size, seed + i, config, report, stop
            ),
            name=f"load-session-{i}",
        )
        for i in range(sessions)
    ]
    results = await asyncio.gather(*tasks, return_exceptions=True)
    for outcome in results:
        if isinstance(outcome, BaseException):
            report.protocol_errors += 1
    # One last connection for the server's own view of the run.
    probe = AsyncServeClient(host, port)
    try:
        await probe.connect()
        report.server_stats = await probe.server_stats()
        await probe.aclose()
    except (ConnectionError, OSError, ReproError):  # pragma: no cover
        pass
    return report
