"""Programmatic clients for the sensing service.

:class:`AsyncServeClient` is the native asyncio client — one
connection, any number of sequential requests, at most one session at
a time (open a second client for a second session; the server batches
across connections).  :class:`ServeClient` wraps it behind a blocking
facade driving a private event loop, for scripts and tests that are
not async themselves.

Error frames re-raise as the :mod:`repro.errors` class they name
(:func:`repro.serve.protocol.raise_wire_error`), so client code can
``except ServeOverloadError`` to back off exactly as server-side code
would.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ProtocolError
from repro.runtime.tracker import SpectrogramColumn
from repro.serve import protocol


@dataclass(frozen=True)
class PushReply:
    """One ``push_blocks`` round trip, decoded.

    ``checkpoint`` is the server's resume checkpoint (only on sessions
    opened ``resumable=True``); ``duplicate`` marks the idempotent ack
    of a re-sent seq — its columns rode the original reply.
    """

    columns: list[SpectrogramColumn]
    detections: list[dict[str, Any]]
    health: list[dict[str, Any]]
    latency_s: float
    checkpoint: dict[str, Any] | None = None
    duplicate: bool = False


@dataclass
class ClientStats:
    """Per-client accounting the load generator aggregates."""

    requests: int = 0
    columns: int = 0
    detections: int = 0
    errors: int = 0
    shed: int = 0
    latencies_s: list[float] = field(default_factory=list)


class AsyncServeClient:
    """One connection to a :class:`~repro.serve.server.SensingServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.session_id: str | None = None
        self.routing_key: str | None = None
        self.stats = ClientStats()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._seq = 0

    async def connect(self) -> "AsyncServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_FRAME_BYTES
        )
        return self

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
            self._writer = None
            self._reader = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def send_raw(self, data: bytes) -> None:
        """Write raw bytes to the wire (the chaos client's torn frames)."""
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._writer.write(data)
        await self._writer.drain()

    async def read_reply(self) -> dict[str, Any]:
        """Read one reply frame without raising on ``error`` frames."""
        if self._reader is None:
            raise RuntimeError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_frame(line)

    async def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip; error frames raise."""
        if self._writer is None:
            raise RuntimeError("client is not connected")
        self._writer.write(protocol.encode_frame(frame))
        await self._writer.drain()
        reply = await self.read_reply()
        self.stats.requests += 1
        if reply.get("type") == protocol.ERROR:
            self.stats.errors += 1
            protocol.raise_wire_error(reply)
        return reply

    # ------------------------------------------------------------------
    # The session verbs
    # ------------------------------------------------------------------

    async def ping(self) -> dict[str, Any]:
        return await self.request({"type": protocol.PING})

    async def server_stats(self) -> dict[str, Any]:
        return await self.request({"type": protocol.SERVER_STATS})

    async def telemetry_snapshot(self) -> dict[str, Any]:
        """The serving process's exact metrics snapshot (merge form)."""
        return await self.request({"type": protocol.TELEMETRY_SNAPSHOT})

    async def open_session(
        self,
        config: dict[str, Any] | None = None,
        use_music: bool = True,
        start_time_s: float = 0.0,
        resumable: bool = False,
        resume: dict[str, Any] | None = None,
        routing_key: str | None = None,
    ) -> str:
        if self.session_id is not None:
            raise RuntimeError(f"session {self.session_id} is already open")
        frame: dict[str, Any] = {
            "type": protocol.OPEN_SESSION,
            "use_music": use_music,
            "start_time_s": start_time_s,
        }
        if config is not None:
            frame["config"] = config
        if resumable or resume is not None:
            frame["resumable"] = True
        if resume is not None:
            frame["resume"] = resume
        if routing_key is not None:
            # Consumed by a fleet frontend (consistent-hash shard
            # assignment); a plain server ignores unknown fields.
            frame["routing_key"] = routing_key
        reply = await self.request(frame)
        self.session_id = protocol.require_field(reply, "session")
        # A fleet frontend echoes the key it routed on (minting one for
        # sessions that sent none) so a resuming client lands on the
        # same shard.
        key = reply.get("routing_key")
        self.routing_key = key if isinstance(key, str) else routing_key
        # A resumed session continues its seq stream where the
        # checkpoint left it, so blind re-sends stay idempotent.
        last_seq = reply.get("last_seq", 0)
        if isinstance(last_seq, int) and not isinstance(last_seq, bool):
            self._seq = max(self._seq, last_seq)
        return self.session_id

    def push_frame(self, samples: np.ndarray, seq: int) -> dict[str, Any]:
        """Build (but do not send) one ``push_blocks`` frame."""
        if self.session_id is None:
            raise RuntimeError("no session is open")
        return {
            "type": protocol.PUSH_BLOCKS,
            "session": self.session_id,
            "seq": seq,
            "samples": protocol.encode_samples(np.asarray(samples, dtype=complex)),
        }

    def decode_push_reply(
        self, reply: dict[str, Any], latency_s: float = 0.0
    ) -> PushReply:
        """Decode a ``spectrogram_columns`` frame into a :class:`PushReply`."""
        if reply.get("type") != protocol.SPECTROGRAM_COLUMNS:
            raise ProtocolError(f"unexpected reply type {reply.get('type')!r}")
        columns = [
            protocol.column_from_wire(payload)
            for payload in reply.get("columns", [])
        ]
        detections = reply.get("detections", [])
        self.stats.columns += len(columns)
        self.stats.detections += len(detections)
        return PushReply(
            columns=columns,
            detections=detections,
            health=reply.get("health", []),
            latency_s=latency_s,
            checkpoint=reply.get("checkpoint"),
            duplicate=bool(reply.get("duplicate", False)),
        )

    async def push(self, samples: np.ndarray) -> PushReply:
        """Stream one sample block; returns the columns it completed.

        Latency is measured client-side around the whole round trip —
        the number the load generator reports percentiles of.
        """
        if self.session_id is None:
            raise RuntimeError("no session is open")
        self._seq += 1
        frame = self.push_frame(samples, self._seq)
        start = time.perf_counter()
        try:
            reply = await self.request(frame)
        except Exception:
            # A rejected push never advanced the server's last_seq, so
            # the number is not burnt: reusing it keeps the next push
            # in sequence instead of drawing a SequenceError.
            self._seq -= 1
            raise
        latency = time.perf_counter() - start
        self.stats.latencies_s.append(latency)
        return self.decode_push_reply(reply, latency_s=latency)

    async def close_session(self) -> dict[str, Any]:
        if self.session_id is None:
            raise RuntimeError("no session is open")
        reply = await self.request(
            {"type": protocol.CLOSE_SESSION, "session": self.session_id}
        )
        self.session_id = None
        return reply


class ServeClient:
    """Blocking facade over :class:`AsyncServeClient`.

    Owns a private event loop so a plain script (or the console-script
    smoke test) can drive a session without touching asyncio; the
    persistent connection lives across calls.
    """

    def __init__(self, host: str, port: int):
        self._loop = asyncio.new_event_loop()
        self._client = AsyncServeClient(host, port)

    def _run(self, coroutine):
        return self._loop.run_until_complete(coroutine)

    @property
    def stats(self) -> ClientStats:
        return self._client.stats

    @property
    def session_id(self) -> str | None:
        return self._client.session_id

    def connect(self) -> "ServeClient":
        self._run(self._client.connect())
        return self

    def ping(self) -> dict[str, Any]:
        return self._run(self._client.ping())

    def server_stats(self) -> dict[str, Any]:
        return self._run(self._client.server_stats())

    def open_session(self, **kwargs: Any) -> str:
        return self._run(self._client.open_session(**kwargs))

    def push(self, samples: np.ndarray) -> PushReply:
        return self._run(self._client.push(samples))

    def close_session(self) -> dict[str, Any]:
        return self._run(self._client.close_session())

    def close(self) -> None:
        self._run(self._client.aclose())
        self._loop.close()

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
