"""The asyncio TCP front end of the multi-session sensing service.

``SensingServer`` binds a socket, accepts any number of client
connections, and multiplexes their sessions over one
:class:`~repro.serve.scheduler.MicroBatchScheduler`.  Each connection
is handled sequentially (read a frame, answer it, read the next) so
per-session ordering is free; concurrency — and hence cross-session
batches — comes from many connections awaiting their window futures
at once.

Sessions are connection-scoped: they die with their socket, and a
session that walks its health machine to FAILED is closed alone — the
degradation boundary the single-tenant pipeline never needed.

Request telemetry follows the stack's conventions: with a telemetry
session active every request runs inside a ``serve.<type>`` span,
counters track requests/errors/sessions, and the scheduler feeds
queue-depth and batch-occupancy instruments.  Always-on counters
(:class:`ServerStats`, the scheduler's stats) keep the load benchmark
and ``server_stats`` frame working with telemetry off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.dsp.backend import active_backend_name
from repro.errors import (
    ProtocolError,
    ReproError,
    SequenceError,
    ServeOverloadError,
    ServeTimeoutError,
    SessionLimitError,
)
from repro.serve import protocol
from repro.serve.scheduler import MicroBatchScheduler, SchedulerConfig
from repro.serve.session import ServeSession, config_from_wire
from repro.telemetry.context import get_telemetry
from repro.telemetry.metrics import LATENCY_BUCKETS_MS, Histogram


@dataclass(frozen=True)
class ServeConfig:
    """Deployment knobs of the sensing service.

    Attributes:
        idle_timeout_s: per-connection read deadline — the longest the
            server waits for one complete frame (covers both idle
            connections and slow-loris partial lines).  On expiry the
            client draws a typed :class:`ServeTimeoutError` frame and
            the connection closes; ``None`` disables the deadline.
        write_timeout_s: the longest one reply write may take to drain
            before the connection is declared dead (a client that
            stopped reading).  ``None`` disables the deadline.
        max_frame_bytes: bounded-read ceiling on one wire line; longer
            frames draw a typed error, never a bigger buffer.
        record_dir: when set, the server opens a
            :class:`repro.capture.store.CaptureStore` there and records
            every *fresh* session (resumed sessions start mid-stream,
            so their captures could never pass the determinism gate):
            exactly the blocks each session's tracker ingested, its
            health events, and its served columns.  The capture seals
            when the session ends — cleanly or not.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 64
    max_push_samples: int = 16384
    idle_timeout_s: float | None = 30.0
    write_timeout_s: float | None = 10.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    record_dir: str | None = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        if self.max_push_samples < 1:
            raise ValueError("max_push_samples must be positive")
        for name in ("idle_timeout_s", "write_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        if self.max_frame_bytes < 4096:
            raise ValueError("max_frame_bytes must hold a control frame")


@dataclass
class ServerStats:
    """Always-on request accounting."""

    requests: int = 0
    errors: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    sessions_failed: int = 0
    sessions_resumed: int = 0
    columns_served: int = 0
    disconnects: int = 0
    read_timeouts: int = 0
    write_timeouts: int = 0
    malformed_frames: int = 0
    duplicate_pushes: int = 0
    sequence_errors: int = 0
    request_latency_ms: Histogram = field(
        default_factory=lambda: Histogram(
            "serve.request_latency_ms", LATENCY_BUCKETS_MS
        )
    )

    def snapshot(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "sessions_opened": self.sessions_opened,
            "sessions_closed": self.sessions_closed,
            "sessions_failed": self.sessions_failed,
            "sessions_resumed": self.sessions_resumed,
            "columns_served": self.columns_served,
            "disconnects": self.disconnects,
            "read_timeouts": self.read_timeouts,
            "write_timeouts": self.write_timeouts,
            "malformed_frames": self.malformed_frames,
            "duplicate_pushes": self.duplicate_pushes,
            "sequence_errors": self.sequence_errors,
            "request_p50_ms": self.request_latency_ms.percentile(0.5),
            "request_p99_ms": self.request_latency_ms.percentile(0.99),
        }


class SensingServer:
    """Serve many concurrent Wi-Vi sessions over micro-batched DSP."""

    def __init__(
        self, config: ServeConfig | None = None, chaos: Any = None, hub: Any = None
    ):
        self.config = config if config is not None else ServeConfig()
        #: Optional :class:`repro.chaos.ServerChaos` — injects stalled
        #: ticks (inside the scheduler) and delayed replies (here).
        self.chaos = chaos
        #: Optional :class:`repro.observe.hub.TelemetryHub` — the live
        #: operator tap.  Publishing never blocks: with no dashboard
        #: subscribed each tap costs one list check, and a slow
        #: subscriber is shed by the hub, never felt here.
        self.hub = hub
        self.scheduler = MicroBatchScheduler(self.config.scheduler, chaos=chaos, hub=hub)
        self.stats = ServerStats()
        self.capture_store = None
        if self.config.record_dir is not None:
            # Imported here, not at module top: repro.capture's replay
            # side imports the serve client, and a top-level import in
            # both directions would tie the packages into a knot.
            from repro.capture.store import CaptureStore

            self.capture_store = CaptureStore(self.config.record_dir)
        self.sessions: dict[str, ServeSession] = {}
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._session_counter = 0
        self._inflight_requests = 0
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (drives ``/readyz``)."""
        return self._stopped.is_set()

    def session_snapshots(self) -> list[dict[str, Any]]:
        """Every live session's :meth:`~ServeSession.snapshot`, sorted."""
        return [
            self.sessions[session_id].snapshot()
            for session_id in sorted(
                self.sessions, key=lambda s: (len(s), s)
            )
        ]

    async def start(self) -> int:
        """Bind, start the scheduler, return the bound port."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_frame_bytes,
        )
        self.scheduler.start()
        return self.port

    async def serve_until_stopped(self, duration_s: float | None = None) -> None:
        """Block until :meth:`shutdown` (or for ``duration_s`` seconds)."""
        if duration_s is None:
            await self._stopped.wait()
            return
        try:
            await asyncio.wait_for(self._stopped.wait(), timeout=duration_s)
        except asyncio.TimeoutError:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, answer everything admitted.

        Order matters: close the listener (no new connections), drain
        the scheduler (every queued window completes, so in-flight
        push requests get their columns), wait for those requests'
        replies to reach the wire, then close the remaining client
        connections.  Idempotent.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.drain()
        # The drained windows resolved handler futures, but the
        # handlers still need loop turns to serialize their replies —
        # closing the sockets first would swallow them.
        for _ in range(1000):
            if self._inflight_requests == 0:
                break
            await asyncio.sleep(0.005)
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown races
                pass
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One wire line, bounded by the idle deadline when configured."""
        if self.config.idle_timeout_s is None:
            return await reader.readline()
        return await asyncio.wait_for(
            reader.readline(), timeout=self.config.idle_timeout_s
        )

    async def _send(self, writer: asyncio.StreamWriter, frame: dict[str, Any]) -> bool:
        """Write one reply frame; ``False`` means the peer is gone.

        A reset/broken-pipe mid-write must not raise through the
        handler — the caller tears the connection (and its sessions)
        down cleanly with the disconnect accounted for.
        """
        if self.chaos is not None:
            await self.chaos.before_reply()
        try:
            writer.write(protocol.encode_frame(frame))
            if self.config.write_timeout_s is None:
                await writer.drain()
            else:
                await asyncio.wait_for(
                    writer.drain(), timeout=self.config.write_timeout_s
                )
        except asyncio.TimeoutError:
            self.stats.write_timeouts += 1
            self._count_disconnect("reply write exceeded write_timeout_s")
            return False
        except (ConnectionError, OSError):
            self._count_disconnect("peer vanished during reply write")
            return False
        return True

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        owned: dict[str, ServeSession] = {}
        try:
            while True:
                try:
                    line = await self._read_line(reader)
                except asyncio.TimeoutError:
                    self.stats.read_timeouts += 1
                    self._count_error()
                    await self._send(
                        writer,
                        protocol.error_frame(
                            ServeTimeoutError(
                                "no complete frame within the "
                                f"{self.config.idle_timeout_s}s idle deadline"
                            )
                        ),
                    )
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    self._count_error()
                    await self._send(
                        writer,
                        protocol.error_frame(
                            ProtocolError("frame exceeds the size limit")
                        ),
                    )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    frame = protocol.decode_frame(line, self.config.max_frame_bytes)
                except ProtocolError as exc:
                    # The newline framing survives one corrupt line, so
                    # a torn or mangled frame costs the client a typed
                    # error — not the connection and its sessions.
                    self.stats.malformed_frames += 1
                    self._count_error()
                    if not await self._send(writer, protocol.error_frame(exc)):
                        break
                    continue
                self._inflight_requests += 1
                delivered = False
                try:
                    reply = await self._handle_frame(frame, owned)
                    delivered = await self._send(writer, reply)
                finally:
                    self._inflight_requests -= 1
                if not delivered:
                    break
        except (ConnectionError, OSError):
            self._count_disconnect("connection reset mid-request")
        finally:
            for session_id in list(owned):
                self._drop_session(session_id, owned)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _drop_session(self, session_id: str, owned: dict[str, ServeSession]) -> None:
        owned.pop(session_id, None)
        session = self.sessions.pop(session_id, None)
        if session is None:
            return
        if session.recorder is not None and not session.recorder.writer.sealed:
            # Seal whatever the session lived to see — a clean close, a
            # FAILED health machine, and a vanished connection all leave
            # a complete (replayable) record of the blocks ingested.
            session.recorder.seal(
                session=session.id,
                health=session.health.value,
                columns_out=session.stats.columns_out,
            )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.gauge("serve.active_sessions").set(
                len(self.sessions)
            )
        if self.hub is not None:
            self.hub.publish(
                "session.closed",
                session=session_id,
                health=session.health.value,
                columns_out=session.stats.columns_out,
                active_sessions=len(self.sessions),
            )

    def _count_error(self) -> None:
        self.stats.errors += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.errors").inc()

    def _count_disconnect(self, reason: str) -> None:
        self.stats.disconnects += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.disconnects").inc()
            telemetry.events.emit("serve.disconnect", reason=reason)
        if self.hub is not None:
            self.hub.publish("serve.disconnect", reason=reason)

    async def _handle_frame(
        self, frame: dict[str, Any], owned: dict[str, ServeSession]
    ) -> dict[str, Any]:
        """Answer one request frame; errors become error frames."""
        kind = frame["type"]
        session_id = frame.get("session")
        seq = frame.get("seq")
        self.stats.requests += 1
        start = time.perf_counter()
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.requests").inc()
            telemetry.metrics.counter(f"serve.requests.{kind}").inc()
        try:
            with telemetry.span(f"serve.{kind}", session=session_id):
                if kind == protocol.PING:
                    reply: dict[str, Any] = {"type": protocol.PONG}
                elif kind == protocol.SERVER_STATS:
                    reply = self._stats_reply()
                elif kind == protocol.TELEMETRY_SNAPSHOT:
                    reply = self._telemetry_snapshot_reply()
                elif kind == protocol.OPEN_SESSION:
                    reply = self._open_session(frame, owned)
                elif kind == protocol.PUSH_BLOCKS:
                    reply = await self._push_blocks(frame, owned)
                elif kind == protocol.CLOSE_SESSION:
                    reply = self._close_session(frame, owned)
                else:
                    raise ProtocolError(f"unknown frame type {kind!r}")
        except ReproError as exc:
            self._count_error()
            if isinstance(exc, (ServeOverloadError, ProtocolError)) and telemetry.enabled:
                telemetry.events.emit(
                    "serve.request_rejected",
                    kind=kind,
                    session=session_id,
                    error=type(exc).__name__,
                    message=str(exc),
                )
            reply = protocol.error_frame(exc, session=session_id, seq=seq)
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the connection
            self._count_error()
            reply = protocol.error_frame(
                ReproError(f"internal error: {exc}"), session=session_id, seq=seq
            )
        finally:
            self.stats.request_latency_ms.observe(
                (time.perf_counter() - start) * 1e3
            )
        return reply

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _stats_reply(self) -> dict[str, Any]:
        return {
            "type": protocol.SERVER_STATS_REPLY,
            "active_sessions": len(self.sessions),
            "queue_depth": self.scheduler.queue_depth,
            "dsp_backend": active_backend_name(),
            "server": self.stats.snapshot(),
            "scheduler": self.scheduler.stats.snapshot(),
        }

    def _telemetry_snapshot_reply(self) -> dict[str, Any]:
        """This process's exact metrics snapshot (the fleet merge feed).

        The snapshot is the PR-3 merge form: a fleet frontend folds one
        per worker into a fresh registry with
        :meth:`~repro.telemetry.metrics.MetricsRegistry.merge`, and the
        result provably equals the sum of the per-process registries.
        With telemetry disabled the reply is flagged and empty rather
        than an error, so probing a bare server stays harmless.
        """
        telemetry = get_telemetry()
        return {
            "type": protocol.TELEMETRY_SNAPSHOT_REPLY,
            "enabled": telemetry.enabled,
            "dsp_backend": active_backend_name(),
            "metrics": telemetry.metrics.snapshot() if telemetry.enabled else {},
        }

    def _open_session(
        self, frame: dict[str, Any], owned: dict[str, ServeSession]
    ) -> dict[str, Any]:
        if len(self.sessions) >= self.config.max_sessions:
            raise SessionLimitError(
                f"server is at its limit of {self.config.max_sessions} sessions"
            )
        config = config_from_wire(frame.get("config"))
        use_music = frame.get("use_music", True)
        if not isinstance(use_music, bool):
            raise ProtocolError("use_music must be a boolean")
        start_time_s = frame.get("start_time_s", 0.0)
        if isinstance(start_time_s, bool) or not isinstance(start_time_s, (int, float)):
            raise ProtocolError("start_time_s must be a number")
        resumable = frame.get("resumable", False)
        if not isinstance(resumable, bool):
            raise ProtocolError("resumable must be a boolean")
        checkpoint = frame.get("resume")
        self._session_counter += 1
        session_id = f"s{self._session_counter}"
        if checkpoint is not None:
            session = ServeSession.resume(
                session_id=session_id,
                config=config,
                checkpoint=checkpoint,
                use_music=use_music,
                start_time_s=float(start_time_s),
                max_push_samples=self.config.max_push_samples,
            )
            self.stats.sessions_resumed += 1
        else:
            session = ServeSession(
                session_id=session_id,
                config=config,
                use_music=use_music,
                start_time_s=float(start_time_s),
                max_push_samples=self.config.max_push_samples,
                resumable=resumable,
            )
        if self.capture_store is not None and checkpoint is None:
            from repro.capture.recorder import CaptureRecorder

            writer = self.capture_store.create(
                source="serve",
                config=config,
                sample_rate_hz=1.0 / config.sample_period_s,
                use_music=use_music,
                start_time_s=float(start_time_s),
                ring_capacity=session.tracker.ring.capacity,
                extra={"session": session.id},
            )
            session.recorder = CaptureRecorder(writer)
        self.sessions[session.id] = session
        owned[session.id] = session
        self.stats.sessions_opened += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.counter("serve.sessions_opened").inc()
            if checkpoint is not None:
                telemetry.metrics.counter("serve.sessions_resumed").inc()
            telemetry.metrics.gauge("serve.active_sessions").set(len(self.sessions))
        if self.hub is not None:
            self.hub.publish(
                "session.opened",
                session=session.id,
                resumed=checkpoint is not None,
                use_music=use_music,
                window_size=config.window_size,
                hop=config.hop,
                active_sessions=len(self.sessions),
            )
        return {
            "type": protocol.SESSION_OPENED,
            "session": session.id,
            "window_size": config.window_size,
            "hop": config.hop,
            "num_angles": len(config.theta_grid_deg),
            "use_music": use_music,
            "resumed": checkpoint is not None,
            "last_seq": session.last_seq,
        }

    def _owned_session(
        self, frame: dict[str, Any], owned: dict[str, ServeSession]
    ) -> ServeSession:
        session_id = protocol.require_field(frame, "session")
        session = owned.get(session_id)
        if session is None:
            raise ProtocolError(
                f"no session {session_id!r} is open on this connection"
            )
        return session

    async def _push_blocks(
        self, frame: dict[str, Any], owned: dict[str, ServeSession]
    ) -> dict[str, Any]:
        session = self._owned_session(frame, owned)
        seq = frame.get("seq")
        if seq is not None:
            try:
                apply_push = session.check_seq(seq)
            except SequenceError:
                self.stats.sequence_errors += 1
                raise
            if not apply_push:
                # Duplicate of an already-applied push: acknowledge
                # idempotently, touch nothing.  The columns it produced
                # the first time rode the original reply.
                self.stats.duplicate_pushes += 1
                reply = {
                    "type": protocol.SPECTROGRAM_COLUMNS,
                    "session": session.id,
                    "columns": [],
                    "detections": [],
                    "health": [],
                    "duplicate": True,
                    "seq": seq,
                }
                if session.resumable:
                    reply["checkpoint"] = session.checkpoint()
                return reply
        samples = protocol.decode_samples(protocol.require_field(frame, "samples"))
        num_windows = session.validate_push(samples)
        if not self.scheduler.admit(num_windows):
            session.stats.shed_requests += 1
            raise self.scheduler.shed(num_windows)
        try:
            ingest = session.ingest(samples)
        except ReproError:
            # Health machine reached FAILED: this session alone dies.
            self.stats.sessions_failed += 1
            self._drop_session(session.id, owned)
            raise
        futures = [
            self.scheduler.submit(session.config, session.use_music, pending)
            for pending in ingest.pending
        ]
        frames = (
            await asyncio.gather(*futures, return_exceptions=True) if futures else []
        )
        failure = next(
            (f for f in frames if isinstance(f, BaseException)), None
        )
        if failure is not None:
            # Every future was retrieved above; surface the first
            # failure as a structured error for this request alone.
            if isinstance(failure, ReproError):
                raise failure
            raise ReproError(f"batch estimation failed: {failure}") from failure
        columns = []
        detections = []
        for pending, estimated in zip(ingest.pending, frames):
            column, detection = session.resolve(pending, estimated)
            columns.append(protocol.column_to_wire(column))
            if detection is not None:
                detections.append(
                    {
                        "column_index": detection.column_index,
                        "time_s": detection.time_s,
                        "angle_deg": detection.angle_deg,
                        "strength_db": detection.strength_db,
                    }
                )
        self.stats.columns_served += len(columns)
        telemetry = get_telemetry()
        if telemetry.enabled and columns:
            telemetry.metrics.counter("serve.columns").inc(len(columns))
        health_events = [
            {"state": event.state.value, "reason": event.reason}
            for event in ingest.health_events
        ]
        if self.hub is not None:
            # One batched event per push (not per column): the wire
            # dicts already built for the reply are shared as-is, so a
            # subscribed dashboard costs no extra encoding on this path.
            if columns:
                self.hub.publish("columns", session=session.id, columns=columns)
            if detections:
                self.hub.publish(
                    "detections", session=session.id, detections=detections
                )
            if health_events:
                self.hub.publish("health", session=session.id, events=health_events)
        reply: dict[str, Any] = {
            "type": protocol.SPECTROGRAM_COLUMNS,
            "session": session.id,
            "columns": columns,
            "detections": detections,
            "health": health_events,
        }
        if seq is not None:
            session.advance_seq(seq)
            reply["seq"] = seq
        if session.resumable:
            reply["checkpoint"] = session.checkpoint()
        return reply

    def _close_session(
        self, frame: dict[str, Any], owned: dict[str, ServeSession]
    ) -> dict[str, Any]:
        session = self._owned_session(frame, owned)
        body = session.close()
        self._drop_session(session.id, owned)
        self.stats.sessions_closed += 1
        return {"type": protocol.SESSION_CLOSED, **body}
