"""A reconnecting, resuming client that survives (and applies) chaos.

:class:`ResilientServeClient` wraps :class:`~repro.serve.client.
AsyncServeClient` with the full recovery loop the chaos harness
exercises:

* **Reconnect with backoff** — every connection loss (injected or
  real) triggers :class:`BackoffPolicy`-paced reconnection attempts
  with seeded jitter, so two runs of the same seed back off
  identically.
* **Session resume** — sessions open ``resumable=True``; every push
  reply carries the server's checkpoint, and after a reconnect the
  client presents the freshest one, rebuilding the session at exactly
  the state of the last *answered* push.
* **Idempotent re-send** — pushes carry monotonically increasing
  ``seq`` numbers that only advance when a reply lands.  A push whose
  reply was lost is re-sent with the same seq after resume: the server
  either applies it (the checkpoint predates it) or acks it as a
  duplicate — columns come out equal to an uninterrupted run either
  way.

With a :class:`~repro.chaos.ClientChaos` plan attached, the client
*performs* the scheduled mangling around its own pushes — torn
prefixes, guaranteed-invalid corruption, oversized junk, mid-push
disconnects, slow-loris dribble, duplicate and reordered sends — and
then recovers from each, which is what the chaos soak gates on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.chaos.injector import ClientChaos
from repro.chaos.schedule import ChaosEvent, ChaosKind
from repro.errors import (
    FleetError,
    ProtocolError,
    ReproError,
    SequenceError,
    ServeOverloadError,
    ServeTimeoutError,
)
from repro.runtime.tracker import SpectrogramColumn
from repro.serve import protocol
from repro.serve.client import AsyncServeClient, PushReply


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with seeded jitter for reconnect attempts."""

    initial_s: float = 0.05
    multiplier: float = 2.0
    max_s: float = 1.0
    jitter: float = 0.1
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.initial_s <= 0 or self.max_s <= 0:
            raise ValueError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("backoff jitter must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("backoff must allow at least one attempt")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before reconnect ``attempt`` (0-based), jittered."""
        base = min(self.initial_s * self.multiplier**attempt, self.max_s)
        if self.jitter > 0:
            base *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(base, 0.0)


@dataclass
class ResilienceStats:
    """What the recovery loop had to do to keep the stream whole."""

    pushes: int = 0
    reconnects: int = 0
    resumes: int = 0
    resends: int = 0
    duplicate_acks: int = 0
    chaos_events_applied: int = 0
    shed_retries: int = 0
    #: Typed fleet migration signals absorbed (shard drain / crash).
    fleet_migrations: int = 0
    #: Reconnect-begin to first post-resume column, per recovery.
    recovery_latencies_s: list[float] = field(default_factory=list)


class ResilientServeClient:
    """One session's survivable connection to the sensing server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        session_config: dict[str, Any] | None = None,
        use_music: bool = True,
        start_time_s: float = 0.0,
        chaos: ClientChaos | None = None,
        backoff: BackoffPolicy | None = None,
        seed: int = 0,
        slow_loris_chunk_bytes: int = 64,
        shed_retry_limit: int = 200,
        routing_key: str | None = None,
    ):
        self.host = host
        self.port = port
        self.session_config = session_config
        self.use_music = use_music
        self.start_time_s = start_time_s
        #: Stable shard-affinity key (fleet frontends route on it and
        #: echo it back; a resume presents the same key, so the session
        #: re-hashes deterministically).
        self.routing_key = routing_key
        self.chaos = chaos
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.slow_loris_chunk_bytes = slow_loris_chunk_bytes
        self.shed_retry_limit = shed_retry_limit
        # Backoff jitter comes from its own child stream so it never
        # perturbs the chaos plan's draws.
        self._backoff_rng = np.random.default_rng([int(seed), 1_000_003])
        self.stats = ResilienceStats()
        #: Served columns keyed by column index (duplicates dropped).
        self.columns: dict[int, SpectrogramColumn] = {}
        self.detections: list[dict[str, Any]] = []
        self.health_events: list[dict[str, Any]] = []
        self._client: AsyncServeClient | None = None
        self._checkpoint: dict[str, Any] | None = None
        self._seq = 0
        self._push_op = 0
        self._recovery_started: float | None = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Connect and open the (resumable) session."""
        await self._reconnect(resume=False)

    async def aclose(self) -> None:
        if self._client is not None:
            await self._client.aclose()
            self._client = None

    async def close_session(self) -> dict[str, Any]:
        """Close the session (with recovery) and return its report."""
        for attempt in range(self.backoff.max_attempts):
            try:
                if self._client is None or not self._client.connected:
                    await self._reconnect(resume=True)
                assert self._client is not None
                return await self._client.close_session()
            except FleetError:
                # The shard drained/crashed out from under the close;
                # resume on a healthy shard and close there.
                self.stats.fleet_migrations += 1
                await self._drop_connection()
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await self._drop_connection()
        raise ConnectionError("could not close the session: server unreachable")

    async def _drop_connection(self) -> None:
        if self._client is not None:
            await self._client.aclose()
            self._client = None

    async def _abort_connection(self) -> None:
        """Hard-close the socket mid-exchange (the disconnect chaos)."""
        if self._client is not None and self._client._writer is not None:
            transport = self._client._writer.transport
            if transport is not None:
                transport.abort()
        await self._drop_connection()

    async def _reconnect(self, resume: bool) -> None:
        """(Re)connect and (re)open the session, with paced backoff."""
        if self._recovery_started is None and resume:
            self._recovery_started = time.perf_counter()
        last_error: Exception | None = None
        for attempt in range(self.backoff.max_attempts):
            if attempt > 0 or resume:
                await asyncio.sleep(self.backoff.delay_s(attempt, self._backoff_rng))
            await self._drop_connection()
            client = AsyncServeClient(self.host, self.port)
            try:
                await client.connect()
                await client.open_session(
                    config=self.session_config,
                    use_music=self.use_music,
                    start_time_s=self.start_time_s,
                    resumable=True,
                    resume=self._checkpoint if resume else None,
                    routing_key=self.routing_key,
                )
                if client.routing_key is not None:
                    # Keep whatever key the frontend minted/echoed so
                    # later resumes hash to the same shard assignment.
                    self.routing_key = client.routing_key
            except ReproError:
                # A typed rejection (SessionResumeError, session limit,
                # ...) will not get better with retries — surface it.
                await client.aclose()
                raise
            except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
                last_error = exc
                await client.aclose()
                continue
            self._client = client
            if resume:
                self.stats.reconnects += 1
                if self._checkpoint is not None:
                    self.stats.resumes += 1
            return
        raise ConnectionError(
            f"could not reconnect after {self.backoff.max_attempts} attempts"
        ) from last_error

    # ------------------------------------------------------------------
    # The push loop
    # ------------------------------------------------------------------

    async def push(self, samples: np.ndarray) -> PushReply:
        """Push one block through whatever chaos is scheduled for it."""
        op = self._push_op
        self._push_op += 1
        events = self.chaos.plan_for(op) if self.chaos is not None else []
        for event in events:
            await self._apply_prelude(event, samples, op)
        reply = await self._push_reliably(samples, op)
        for event in events:
            await self._apply_postlude(event, samples, op)
        self.stats.pushes += 1
        return reply

    async def _apply_prelude(
        self, event: ChaosEvent, samples: np.ndarray, op: int
    ) -> None:
        """Chaos applied *before* the clean push goes out."""
        chaos = self.chaos
        assert chaos is not None
        kind = event.kind
        if kind is ChaosKind.TRUNCATE_FRAME:
            # A torn frame loses the newline framing; the only sane
            # follow-up is hanging up and resuming.
            await self._ensure_connected()
            assert self._client is not None
            frame = self._client.push_frame(samples, self._seq + 1)
            torn, detail = chaos.truncate(protocol.encode_frame(frame), event)
            try:
                await self._client.send_raw(torn)
            except (ConnectionError, OSError):
                pass
            chaos.record(op, kind, detail)
            self.stats.chaos_events_applied += 1
            await self._abort_connection()
        elif kind is ChaosKind.CORRUPT_FRAME:
            # Newline framing survives: the server answers with a
            # typed error and keeps the connection.
            await self._ensure_connected()
            assert self._client is not None
            frame = self._client.push_frame(samples, self._seq + 1)
            mangled, detail = chaos.corrupt(protocol.encode_frame(frame), op)
            chaos.record(op, kind, detail)
            self.stats.chaos_events_applied += 1
            try:
                await self._client.send_raw(mangled)
                reply = await self._client.read_reply()
                if reply.get("type") != protocol.ERROR:
                    raise ProtocolError(
                        "server accepted a corrupted frame"
                    )  # pragma: no cover - would be a server bug
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await self._drop_connection()
        elif kind is ChaosKind.OVERSIZED_FRAME:
            # Beyond the bounded read: the server reports and hangs up.
            await self._ensure_connected()
            assert self._client is not None
            junk, detail = chaos.oversize_frame(protocol.MAX_FRAME_BYTES)
            chaos.record(op, kind, detail)
            self.stats.chaos_events_applied += 1
            try:
                await self._client.send_raw(junk)
                await self._client.read_reply()  # the typed error, if it arrives
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
            await self._drop_connection()
        elif kind is ChaosKind.DISCONNECT:
            if not chaos.disconnect_after_send(op):
                chaos.record(op, kind, "before send")
                self.stats.chaos_events_applied += 1
                await self._abort_connection()
            else:
                # The nasty half: bytes out, reply lost.  Send the real
                # push, kill the socket, and let the reliable loop
                # re-send the same seq after resume.
                await self._ensure_connected()
                assert self._client is not None
                frame = self._client.push_frame(samples, self._seq + 1)
                chaos.record(op, kind, "after send (reply lost)")
                self.stats.chaos_events_applied += 1
                try:
                    await self._client.send_raw(protocol.encode_frame(frame))
                except (ConnectionError, OSError):
                    pass
                await self._abort_connection()
        elif kind is ChaosKind.REORDER_PUSH:
            # A skipped-ahead seq must draw a typed SequenceError and
            # leave the session untouched.
            await self._ensure_connected()
            assert self._client is not None
            frame = self._client.push_frame(samples, self._seq + 2)
            chaos.record(op, kind, f"sent seq {self._seq + 2} early")
            self.stats.chaos_events_applied += 1
            try:
                reply = await self._client.request(frame)
                raise ProtocolError(
                    f"server accepted out-of-order seq: {reply.get('type')!r}"
                )  # pragma: no cover - would be a server bug
            except SequenceError:
                pass
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await self._drop_connection()

    async def _apply_postlude(
        self, event: ChaosEvent, samples: np.ndarray, op: int
    ) -> None:
        """Chaos applied *after* the clean push was answered."""
        chaos = self.chaos
        assert chaos is not None
        if event.kind is not ChaosKind.DUPLICATE_PUSH:
            return
        # Blind re-send of the seq that just landed: the server must
        # ack idempotently with zero columns.
        chaos.record(op, event.kind, f"re-sent seq {self._seq}")
        self.stats.chaos_events_applied += 1
        try:
            await self._ensure_connected()
            assert self._client is not None
            frame = self._client.push_frame(samples, self._seq)
            reply = await self._client.request(frame)
            decoded = self._client.decode_push_reply(reply)
            if not decoded.duplicate or decoded.columns:
                raise ProtocolError(
                    "duplicate seq was not acked idempotently"
                )  # pragma: no cover - would be a server bug
            self.stats.duplicate_acks += 1
            if decoded.checkpoint is not None:
                self._checkpoint = decoded.checkpoint
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            await self._drop_connection()

    async def _ensure_connected(self) -> None:
        if self._client is None or not self._client.connected:
            await self._reconnect(resume=True)

    async def _push_reliably(self, samples: np.ndarray, op: int) -> PushReply:
        """Send the clean push for this op until a reply lands.

        Re-sends keep the same seq, so a push the server applied before
        the connection died is acked as a duplicate, never re-applied.
        """
        seq = self._seq + 1
        slow = (
            next(
                (
                    e
                    for e in (self.chaos.plan_for(op) if self.chaos else [])
                    if e.kind is ChaosKind.SLOW_LORIS
                ),
                None,
            )
        )
        shed_retries = 0
        attempts = 0
        while True:
            attempts += 1
            try:
                await self._ensure_connected()
                assert self._client is not None
                frame = self._client.push_frame(samples, seq)
                data = protocol.encode_frame(frame)
                start = time.perf_counter()
                if slow is not None and attempts == 1:
                    await self._send_slow_loris(data, slow, op)
                else:
                    await self._client.send_raw(data)
                reply = await self._client.read_reply()
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await self._drop_connection()
                self.stats.resends += 1
                continue
            if reply.get("type") == protocol.ERROR:
                self._client.stats.errors += 1
                try:
                    protocol.raise_wire_error(reply)
                except ServeOverloadError:
                    # Shed pushes never advanced the tracker; retry the
                    # same seq until the queue drains.
                    shed_retries += 1
                    self.stats.shed_retries += 1
                    if shed_retries > self.shed_retry_limit:
                        raise
                    await asyncio.sleep(0.01)
                    continue
                except ServeTimeoutError:
                    # The idle deadline fired (a long stall on our
                    # side); the server is hanging up — reconnect.
                    await self._drop_connection()
                    self.stats.resends += 1
                    continue
                except FleetError:
                    # A migration signal from the routing frontend: the
                    # shard owning this session is draining or died.
                    # Reconnect and resume from the freshest checkpoint
                    # — the frontend hashes the session onto a healthy
                    # shard, and the same seq is re-sent there.
                    self.stats.fleet_migrations += 1
                    await self._drop_connection()
                    self.stats.resends += 1
                    continue
                # Any other taxonomy error is terminal for this push
                # and propagates (DeviceFailedError, ProtocolError...).
                raise AssertionError("unreachable")  # pragma: no cover
            latency = time.perf_counter() - start
            decoded = self._client.decode_push_reply(reply, latency_s=latency)
            self._client.stats.requests += 1
            self._client.stats.latencies_s.append(latency)
            self._absorb(decoded)
            if decoded.duplicate:
                self.stats.duplicate_acks += 1
            self._seq = seq
            return decoded

    async def _send_slow_loris(
        self, data: bytes, event: ChaosEvent, op: int
    ) -> None:
        """Dribble one frame out in small delayed chunks."""
        assert self._client is not None and self.chaos is not None
        chunk = self.slow_loris_chunk_bytes
        pieces = range(0, len(data), chunk)
        self.chaos.record(
            op,
            event.kind,
            f"dribbled {len(data)} bytes in {len(pieces)} chunks",
        )
        self.stats.chaos_events_applied += 1
        for offset in pieces:
            await self._client.send_raw(data[offset : offset + chunk])
            if offset + chunk < len(data) and event.magnitude > 0:
                await asyncio.sleep(event.magnitude)

    def _absorb(self, reply: PushReply) -> None:
        """Fold one answered push into the served stream (dedup safe)."""
        for column in reply.columns:
            if column.index not in self.columns:
                self.columns[column.index] = column
        self.detections.extend(reply.detections)
        self.health_events.extend(reply.health)
        if reply.checkpoint is not None:
            self._checkpoint = reply.checkpoint
        if self._recovery_started is not None and reply.columns:
            self.stats.recovery_latencies_s.append(
                time.perf_counter() - self._recovery_started
            )
            self._recovery_started = None

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def served_columns(self) -> list[SpectrogramColumn]:
        """All served columns in index order (gap-free when complete)."""
        return [self.columns[index] for index in sorted(self.columns)]
