"""Per-client session state for the sensing service.

Each connected client session owns the full single-tenant streaming
stack in miniature: a PR-2 :class:`~repro.runtime.tracker.
StreamingTracker` (window alignment + column bookkeeping), a PR-1
health machine driven block by block through the runtime's
:class:`~repro.runtime.pipeline.ConditionStage`, and a per-session
:class:`~repro.runtime.pipeline.DetectStage`.  Faults therefore
degrade *per session*: a client streaming NaN bursts walks its own
machine to DEGRADED (and eventually FAILED, closing only that
session) while every other session stays HEALTHY.

What a session does **not** own is the estimator: completed windows
are handed to the cross-session micro-batching scheduler
(:mod:`repro.serve.scheduler`), and the frames come back through
:meth:`ServeSession.resolve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.monitoring import DeviceHealth
from repro.core.tracking import TrackingConfig
from repro.errors import (
    DeviceFailedError,
    ProtocolError,
    SequenceError,
    SessionResumeError,
)
from repro.runtime.pipeline import (
    ConditionStage,
    DetectStage,
    DetectionEvent,
    HealthEvent,
)
from repro.runtime.ring import SampleBlock
from repro.runtime.tracker import (
    PendingWindow,
    SpectrogramColumn,
    StreamingTracker,
)
from repro.core.tracking import SpectrogramFrame
from repro.serve import protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.capture.recorder import CaptureRecorder

#: TrackingConfig fields a client may override in ``open_session``.
#: Geometry-level knobs only — wavelength/speed/grid stay server-side
#: policy, like a real deployment's calibrated constants.
CONFIGURABLE_FIELDS = (
    "window_size",
    "hop",
    "subarray_size",
    "max_sources",
    "condition_limit",
)


def config_from_wire(overrides: dict[str, Any] | None) -> TrackingConfig:
    """Build a session's :class:`TrackingConfig` from wire overrides.

    Raises:
        ProtocolError: unknown field, wrong type, or a combination the
            config itself rejects.
    """
    overrides = overrides or {}
    if not isinstance(overrides, dict):
        raise ProtocolError("config must be a JSON object")
    unknown = sorted(set(overrides) - set(CONFIGURABLE_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {', '.join(unknown)}; "
            f"configurable: {', '.join(CONFIGURABLE_FIELDS)}"
        )
    kwargs: dict[str, Any] = {}
    for name, value in overrides.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(f"config field {name!r} must be a number")
        kwargs[name] = float(value) if name == "condition_limit" else int(value)
    try:
        return TrackingConfig(**kwargs)
    except ValueError as exc:
        raise ProtocolError(f"invalid session config: {exc}") from None


@dataclass
class SessionStats:
    """Per-session accounting the close frame reports."""

    pushes: int = 0
    samples_in: int = 0
    columns_out: int = 0
    detections: int = 0
    shed_requests: int = 0


@dataclass
class IngestResult:
    """What one accepted push produced (before estimation)."""

    pending: list[PendingWindow]
    health_events: list[HealthEvent] = field(default_factory=list)


class ServeSession:
    """One client's sensing state inside the multi-session server."""

    def __init__(
        self,
        session_id: str,
        config: TrackingConfig,
        use_music: bool = True,
        start_time_s: float = 0.0,
        max_push_samples: int = 16384,
        resumable: bool = False,
    ):
        self.id = session_id
        self.config = config
        self.use_music = use_music
        self.max_push_samples = max_push_samples
        self.resumable = resumable
        ring_capacity = max(4 * config.window_size, config.window_size + max_push_samples)
        self.tracker = StreamingTracker(
            config,
            start_time_s=start_time_s,
            use_music=use_music,
            ring_capacity=ring_capacity,
        )
        self.condition = ConditionStage()
        self.detector = DetectStage(theta_grid_deg=config.theta_grid_deg)
        self.stats = SessionStats()
        self.closed = False
        #: Highest ``seq`` applied to the tracker (0 before any push).
        self.last_seq = 0
        #: Optional capture tap (``repro serve --record DIR``): when
        #: set, every block the tracker ingests, every health event,
        #: and every resolved column is recorded through it — exactly
        #: what this session saw, nothing the admission layer refused.
        self.recorder: CaptureRecorder | None = None

    # ------------------------------------------------------------------
    # Idempotent sequencing
    # ------------------------------------------------------------------

    def check_seq(self, seq: Any) -> bool:
        """Classify a push's sequence number before any buffering.

        Returns ``True`` for the next in-order seq (apply the push and
        call :meth:`advance_seq` once it lands), ``False`` for a
        duplicate (already applied — acknowledge idempotently, touch
        nothing).

        Raises:
            ProtocolError: ``seq`` is not a positive integer.
            SequenceError: ``seq`` skips ahead of the next expected
                number — the push is refused whole, tracker untouched.
        """
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
            raise ProtocolError("seq must be a positive integer")
        if seq <= self.last_seq:
            return False
        if seq > self.last_seq + 1:
            raise SequenceError(
                f"push seq {seq} skips ahead of expected {self.last_seq + 1}; "
                "re-send pushes in order"
            )
        return True

    def advance_seq(self, seq: int) -> None:
        self.last_seq = seq

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """The session's resume checkpoint as a wire-ready dict.

        Deterministic: a session restored from it (same config, same
        subsequent pushes) serves columns ``np.array_equal`` to this
        one's.  Taken between pushes — the push handler attaches it to
        each reply *after* resolving that push's windows.
        """
        return {
            "tracker": protocol.tracker_checkpoint_to_wire(self.tracker.checkpoint()),
            "health": self.condition.machine.snapshot_state(),
            "bad_blocks": self.condition.bad_block_count,
            "stats": {
                "pushes": self.stats.pushes,
                "samples_in": self.stats.samples_in,
                "columns_out": self.stats.columns_out,
                "detections": self.stats.detections,
                "shed_requests": self.stats.shed_requests,
            },
            "last_seq": self.last_seq,
        }

    @classmethod
    def resume(
        cls,
        session_id: str,
        config: TrackingConfig,
        checkpoint: dict[str, Any],
        use_music: bool = True,
        start_time_s: float = 0.0,
        max_push_samples: int = 16384,
    ) -> "ServeSession":
        """Rebuild a session from a client-presented checkpoint.

        Raises:
            SessionResumeError: the checkpoint is malformed or
                inconsistent with the presented config.
        """
        if not isinstance(checkpoint, dict):
            raise SessionResumeError("resume checkpoint must be a JSON object")
        session = cls(
            session_id=session_id,
            config=config,
            use_music=use_music,
            start_time_s=start_time_s,
            max_push_samples=max_push_samples,
            resumable=True,
        )
        try:
            tracker_cp = protocol.tracker_checkpoint_from_wire(
                checkpoint.get("tracker")
            )
            session.tracker.restore(tracker_cp)
            session.condition.machine.restore_state(checkpoint.get("health", {}))
            session.condition.bad_block_count = int(checkpoint.get("bad_blocks", 0))
            stats = checkpoint.get("stats", {})
            if not isinstance(stats, dict):
                raise ValueError("stats must be a JSON object")
            for name in (
                "pushes",
                "samples_in",
                "columns_out",
                "detections",
                "shed_requests",
            ):
                setattr(session.stats, name, int(stats.get(name, 0)))
            last_seq = checkpoint.get("last_seq", 0)
            if isinstance(last_seq, bool) or not isinstance(last_seq, int):
                raise ValueError("last_seq must be an integer")
            session.last_seq = max(0, last_seq)
        except (ProtocolError, TypeError, ValueError) as exc:
            raise SessionResumeError(f"cannot resume session: {exc}") from None
        if session.health is DeviceHealth.FAILED:
            raise SessionResumeError(
                "checkpoint health state is FAILED; the session cannot resume"
            )
        return session

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    @property
    def health(self) -> DeviceHealth:
        return self.condition.machine.state

    def _screen(self, samples: np.ndarray) -> list[HealthEvent]:
        """Drive the session's health machine with this block.

        A served session has no radio to re-run Algorithm 1 on, so a
        machine that asks for RECALIBRATING cannot be obliged: each
        *bad* block that lands in that state counts as a failed
        recalibration, and the policy's failure budget walks the
        session to FAILED instead of parking a faulty stream forever.
        Clean blocks are not failures — a transient burst leaves the
        session degraded but alive.

        Raises:
            DeviceFailedError: the machine just reached FAILED — the
                session is dead (the server closes it), but only this
                session.
        """
        block = SampleBlock(samples=samples, start_index=self.tracker.samples_seen)
        machine = self.condition.machine
        before = len(machine.transitions)
        bad_before = self.condition.bad_block_count
        self.condition.process(block)
        if (
            self.health is DeviceHealth.RECALIBRATING
            and self.condition.bad_block_count > bad_before
        ):
            machine.recalibration_failed(
                f"session {self.id} has no radio to recalibrate"
            )
        events = [
            HealthEvent(
                block_index=block.start_index,
                state=transition.target,
                reason=transition.reason,
            )
            for transition in machine.transitions[before:]
        ]
        if self.health is DeviceHealth.FAILED:
            raise DeviceFailedError(
                f"session {self.id} health machine reached FAILED"
            )
        return events

    # ------------------------------------------------------------------
    # Ingest / resolve
    # ------------------------------------------------------------------

    def validate_push(self, samples: np.ndarray) -> int:
        """Pre-admission checks; returns the windows this push completes.

        Nothing is buffered yet — the scheduler's admission decision
        happens between this and :meth:`ingest`, so a shed push leaves
        the session's window alignment untouched.

        Raises:
            ProtocolError: empty, oversized, or misshapen payload.
        """
        if samples.ndim != 1:
            raise ProtocolError("samples must be one-dimensional")
        if len(samples) == 0:
            raise ProtocolError("push_blocks carried no samples")
        if len(samples) > self.max_push_samples:
            raise ProtocolError(
                f"push of {len(samples)} samples exceeds the per-request "
                f"limit of {self.max_push_samples}"
            )
        return self.tracker.expected_windows(len(samples))

    def ingest(self, samples: np.ndarray) -> IngestResult:
        """Screen + buffer an admitted block; drain its ready windows."""
        health_events = self._screen(samples)
        if self.recorder is not None:
            # Record at the tracker boundary: the block passed
            # screening (one that killed the session raised above and
            # never reached the tracker), and ``samples_seen`` is its
            # delivered-stream start index — a shed or duplicate push
            # never gets here, so the capture holds exactly the blocks
            # the tracker consumed, in order.
            self.recorder.record_block(samples, self.tracker.samples_seen)
            for event in health_events:
                self.recorder.record_health(event)
        self.tracker.ingest(samples)
        pending = self.tracker.poll_ready_windows()
        self.stats.pushes += 1
        self.stats.samples_in += len(samples)
        return IngestResult(pending=pending, health_events=health_events)

    def resolve(
        self, pending: PendingWindow, frame: SpectrogramFrame
    ) -> tuple[SpectrogramColumn, DetectionEvent | None]:
        """Complete one scheduled window: column + optional detection."""
        column = self.tracker.resolve(pending, frame)
        detection = self.detector.process(column, self.config.theta_grid_deg)
        self.stats.columns_out += 1
        if detection is not None:
            self.stats.detections += 1
        if self.recorder is not None:
            self.recorder.record_column(column)
            if detection is not None:
                self.recorder.record_detection(detection)
        return column, detection

    def snapshot(self) -> dict[str, Any]:
        """The session as the observe gateway's ``/api/sessions`` reports it.

        Read-only operator view: health-machine state, idempotent-seq
        progress, throughput accounting, and the drop/degradation
        counters (ring overwrites, screened-bad blocks, shed pushes)
        an operator triages a session with.
        """
        return {
            "session": self.id,
            "health": self.health.value,
            "closed": self.closed,
            "resumable": self.resumable,
            "use_music": self.use_music,
            "window_size": self.config.window_size,
            "hop": self.config.hop,
            "last_seq": self.last_seq,
            "pushes": self.stats.pushes,
            "samples_in": self.stats.samples_in,
            "columns_out": self.stats.columns_out,
            "detections": self.stats.detections,
            "shed_requests": self.stats.shed_requests,
            "bad_blocks": self.condition.bad_block_count,
            "ring_dropped_samples": self.tracker.ring.dropped_sample_count,
            "recording": self.recorder is not None,
            "dsp_backend": self.tracker.dsp_backend,
        }

    def close(self) -> dict[str, Any]:
        """Mark the session closed; return the ``session_closed`` body."""
        self.closed = True
        return {
            "session": self.id,
            "pushes": self.stats.pushes,
            "samples_in": self.stats.samples_in,
            "columns_out": self.stats.columns_out,
            "detections": self.stats.detections,
            "shed_requests": self.stats.shed_requests,
            "health": self.health.value,
        }
