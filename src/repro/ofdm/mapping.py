"""Constellation mapping and interleaving for the OFDM data plane.

BPSK, QPSK, and 16-QAM with Gray labelling and unit average power, plus
the simple block interleaver that spreads adjacent code bits across
subcarriers (so a notch in the frequency-selective channel does not
wipe out a run of bits).
"""

from __future__ import annotations

import numpy as np

_QAM16_LEVELS = np.array([-3.0, -1.0, 1.0, 3.0]) / np.sqrt(10.0)
#: Gray-coded 2-bit labels onto amplitude levels.
_GRAY2 = {(0, 0): 0, (0, 1): 1, (1, 1): 2, (1, 0): 3}
_GRAY2_INVERSE = {v: k for k, v in _GRAY2.items()}

MODULATIONS = ("bpsk", "qpsk", "qam16")


def bits_per_symbol(modulation: str) -> int:
    """Bits carried by one constellation point of ``modulation``."""
    try:
        return {"bpsk": 1, "qpsk": 2, "qam16": 4}[modulation]
    except KeyError:
        raise ValueError(
            f"unknown modulation {modulation!r}; choose from {MODULATIONS}"
        ) from None


def map_bits(bits: np.ndarray, modulation: str) -> np.ndarray:
    """Bits -> unit-average-power constellation points."""
    bits = np.asarray(bits, dtype=int)
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must be 0 or 1")
    width = bits_per_symbol(modulation)
    if len(bits) % width != 0:
        raise ValueError(f"bit count must be a multiple of {width} for {modulation}")
    groups = bits.reshape(-1, width)
    if modulation == "bpsk":
        return (2.0 * groups[:, 0] - 1.0).astype(complex)
    if modulation == "qpsk":
        real = (2.0 * groups[:, 0] - 1.0) / np.sqrt(2.0)
        imag = (2.0 * groups[:, 1] - 1.0) / np.sqrt(2.0)
        return real + 1j * imag
    # 16-QAM: first two bits -> I level, last two -> Q level.
    i_index = np.array([_GRAY2[(g[0], g[1])] for g in groups])
    q_index = np.array([_GRAY2[(g[2], g[3])] for g in groups])
    return _QAM16_LEVELS[i_index] + 1j * _QAM16_LEVELS[q_index]


def demap_symbols(symbols: np.ndarray, modulation: str) -> np.ndarray:
    """Hard-decision demapping back to bits."""
    symbols = np.asarray(symbols, dtype=complex)
    if modulation == "bpsk":
        return (symbols.real > 0).astype(int)
    if modulation == "qpsk":
        bits = np.empty((len(symbols), 2), dtype=int)
        bits[:, 0] = symbols.real > 0
        bits[:, 1] = symbols.imag > 0
        return bits.ravel()
    if modulation == "qam16":
        bits = np.empty((len(symbols), 4), dtype=int)
        for row, symbol in enumerate(symbols):
            i_index = int(np.argmin(np.abs(symbol.real - _QAM16_LEVELS)))
            q_index = int(np.argmin(np.abs(symbol.imag - _QAM16_LEVELS)))
            bits[row, 0:2] = _GRAY2_INVERSE[i_index]
            bits[row, 2:4] = _GRAY2_INVERSE[q_index]
        return bits.ravel()
    raise ValueError(f"unknown modulation {modulation!r}; choose from {MODULATIONS}")


def interleave(bits: np.ndarray, depth: int) -> np.ndarray:
    """Row-in, column-out block interleaver (pads with zeros).

    ``depth`` is the number of rows; adjacent input bits land ``depth``
    positions apart at the output.
    """
    bits = np.asarray(bits, dtype=int)
    if depth < 1:
        raise ValueError("depth must be positive")
    if depth == 1:
        return bits.copy()
    columns = int(np.ceil(len(bits) / depth))
    padded = np.zeros(depth * columns, dtype=int)
    padded[: len(bits)] = bits
    return padded.reshape(depth, columns).T.ravel()


def deinterleave(bits: np.ndarray, depth: int, original_length: int) -> np.ndarray:
    """Invert :func:`interleave`."""
    bits = np.asarray(bits, dtype=int)
    if depth < 1:
        raise ValueError("depth must be positive")
    if original_length < 0 or original_length > len(bits):
        raise ValueError("original length out of range")
    if depth == 1:
        return bits[:original_length].copy()
    columns = len(bits) // depth
    if columns * depth != len(bits):
        raise ValueError("bit count must be a multiple of depth")
    return bits.reshape(columns, depth).T.ravel()[:original_length]
