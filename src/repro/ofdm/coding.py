"""Convolutional coding for the Wi-Fi OFDM data plane.

The industry-standard K = 7, rate-1/2 convolutional code used by
802.11a/g (generators 133 and 171 octal) with a hard-decision Viterbi
decoder, plus the 802.11 frame check sequence (CRC-32).

Wi-Vi transmits "standard Wi-Fi OFDM" (§3, §7.1); while the sensing
pipeline never decodes payloads, the substrate is a real communication
PHY, and this module completes it — the device built here can carry
data with the same waveform it senses with.
"""

from __future__ import annotations

import numpy as np

#: 802.11 convolutional code: constraint length 7, generators (octal).
CONSTRAINT_LENGTH = 7
GENERATOR_POLYNOMIALS = (0o133, 0o171)

_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)


def _output_bits(state: int, input_bit: int) -> tuple[int, int]:
    """Encoder outputs for a register state and incoming bit.

    The register holds the most recent bit in the MSB.
    """
    register = (input_bit << (CONSTRAINT_LENGTH - 1)) | state
    outputs = []
    for polynomial in GENERATOR_POLYNOMIALS:
        tapped = register & polynomial
        outputs.append(bin(tapped).count("1") % 2)
    return outputs[0], outputs[1]


def _next_state(state: int, input_bit: int) -> int:
    return ((input_bit << (CONSTRAINT_LENGTH - 1)) | state) >> 1


def convolutional_encode(bits: np.ndarray, terminate: bool = True) -> np.ndarray:
    """Rate-1/2 convolutional encoding.

    ``terminate`` appends K-1 zero tail bits so the trellis ends in the
    zero state, as 802.11 does.
    """
    bits = np.asarray(bits, dtype=int)
    if bits.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if np.any((bits != 0) & (bits != 1)):
        raise ValueError("bits must be 0 or 1")
    stream = list(bits)
    if terminate:
        stream += [0] * (CONSTRAINT_LENGTH - 1)
    state = 0
    encoded = np.empty(2 * len(stream), dtype=int)
    for index, bit in enumerate(stream):
        first, second = _output_bits(state, int(bit))
        encoded[2 * index] = first
        encoded[2 * index + 1] = second
        state = _next_state(state, int(bit))
    return encoded


def _build_trellis():
    """Precompute (next_state, output pair) for every (state, bit)."""
    next_states = np.empty((_NUM_STATES, 2), dtype=int)
    outputs = np.empty((_NUM_STATES, 2, 2), dtype=int)
    for state in range(_NUM_STATES):
        for bit in (0, 1):
            next_states[state, bit] = _next_state(state, bit)
            outputs[state, bit] = _output_bits(state, bit)
    return next_states, outputs


_NEXT_STATES, _OUTPUTS = _build_trellis()


def viterbi_decode(
    encoded: np.ndarray, num_data_bits: int | None = None, terminated: bool = True
) -> np.ndarray:
    """Hard-decision Viterbi decoding of the rate-1/2 code.

    Args:
        encoded: received code bits (possibly corrupted), length 2N.
        num_data_bits: number of *payload* bits to return; defaults to
            N minus the tail.
        terminated: whether the encoder appended the zero tail (decode
            then ends in state 0).
    """
    encoded = np.asarray(encoded, dtype=int)
    if encoded.ndim != 1 or len(encoded) % 2 != 0:
        raise ValueError("encoded stream must have even length")
    num_steps = len(encoded) // 2
    tail = CONSTRAINT_LENGTH - 1 if terminated else 0
    if num_data_bits is None:
        num_data_bits = num_steps - tail
    if num_data_bits < 0 or num_data_bits > num_steps - tail:
        raise ValueError("num_data_bits inconsistent with stream length")

    infinity = np.iinfo(np.int64).max // 2
    metrics = np.full(_NUM_STATES, infinity, dtype=np.int64)
    metrics[0] = 0
    history = np.empty((num_steps, _NUM_STATES), dtype=np.int8)

    received = encoded.reshape(num_steps, 2)
    for step in range(num_steps):
        new_metrics = np.full(_NUM_STATES, infinity, dtype=np.int64)
        decisions = np.zeros(_NUM_STATES, dtype=np.int8)
        for state in range(_NUM_STATES):
            if metrics[state] >= infinity:
                continue
            for bit in (0, 1):
                branch = int(
                    (received[step, 0] != _OUTPUTS[state, bit, 0])
                    + (received[step, 1] != _OUTPUTS[state, bit, 1])
                )
                candidate = metrics[state] + branch
                target = _NEXT_STATES[state, bit]
                if candidate < new_metrics[target]:
                    new_metrics[target] = candidate
                    # Record the *predecessor* state and bit packed
                    # together: bit in LSB is enough because the
                    # predecessor is recoverable from target and bit.
                    decisions[target] = bit | (
                        (state & ((1 << (CONSTRAINT_LENGTH - 2)) - 1)) << 1
                    )
        metrics = new_metrics
        history[step] = decisions

    final_state = 0 if terminated else int(np.argmin(metrics))
    bits = np.empty(num_steps, dtype=int)
    state = final_state
    for step in range(num_steps - 1, -1, -1):
        packed = int(history[step, state])
        bit = packed & 1
        bits[step] = bit
        # Invert the state transition: next = (bit << 6 | prev) >> 1,
        # so prev = ((next << 1) | lost_lsb) & 0x3f with the lost LSB
        # recovered from the packed decision.
        lost_lsb = (packed >> 1) & 1 if CONSTRAINT_LENGTH > 2 else 0
        prev_high = (state << 1) & (_NUM_STATES - 1)
        state = prev_high | lost_lsb
        # The bit we stored is the input; the rest of prev's bits are
        # determined by the transition.
    return bits[:num_data_bits]


def crc32(bits: np.ndarray) -> np.ndarray:
    """The 802.11 frame check sequence over a bit array (MSB-first
    bytes), returned as 32 bits."""
    bits = np.asarray(bits, dtype=int)
    if len(bits) % 8 != 0:
        raise ValueError("CRC-32 operates on whole bytes")
    import zlib

    data = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        for bit in bits[start : start + 8]:
            byte = (byte << 1) | int(bit)
        data.append(byte)
    checksum = zlib.crc32(bytes(data)) & 0xFFFFFFFF
    return np.array([(checksum >> shift) & 1 for shift in range(31, -1, -1)], dtype=int)


def append_crc(bits: np.ndarray) -> np.ndarray:
    """Append the FCS to a byte-aligned bit array."""
    bits = np.asarray(bits, dtype=int)
    return np.concatenate([bits, crc32(bits)])


def check_crc(bits_with_crc: np.ndarray) -> bool:
    """Validate a byte-aligned bit array carrying a trailing FCS."""
    bits_with_crc = np.asarray(bits_with_crc, dtype=int)
    if len(bits_with_crc) < 32:
        return False
    payload, received = bits_with_crc[:-32], bits_with_crc[-32:]
    if len(payload) % 8 != 0:
        return False
    return bool(np.array_equal(crc32(payload), received))
