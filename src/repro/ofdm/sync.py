"""Packet detection and synchronization for the OFDM data plane.

`OfdmPhy.receive` assumes a sample-aligned waveform; a real receiver
must first *find* the packet and correct the carrier-frequency offset
(CFO) between the two radios' oscillators.  This module implements the
classic Schmidl & Cox approach over a repeated short training field:

* the STF is one OFDM training symbol transmitted twice;
* a sliding autocorrelation at lag L (the symbol length) plateaus where
  the two copies overlap, giving timing;
* the *phase* of that autocorrelation is ``2*pi*f_cfo*L*T``, giving the
  CFO up to ±1/(2·L·T).

Wi-Vi itself sidesteps CFO by wiring all radios to one clock (§7.1) —
the sensing pipeline needs *phase coherence*, which sync cannot
provide — but the data plane of the Wi-Fi substrate needs this layer to
be a real modem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ofdm.modulation import OfdmConfig, OfdmModem
from repro.ofdm.preamble import training_symbol

#: Seed distinguishing the sync preamble from the channel-estimation one.
STF_SEED = 0x53594E43  # "SYNC"


def build_stf(config: OfdmConfig | None = None) -> np.ndarray:
    """The short training field: one OFDM symbol repeated twice."""
    config = config if config is not None else OfdmConfig()
    modem = OfdmModem(config)
    symbol = modem.modulate(training_symbol(config, seed=STF_SEED))
    return np.concatenate([symbol, symbol])


@dataclass
class SyncResult:
    """Detector output.

    Attributes:
        detected: whether a plateau cleared the threshold.
        start_index: estimated first sample of the STF.
        cfo_hz: estimated carrier-frequency offset.
        metric: the normalized autocorrelation timing metric.
    """

    detected: bool
    start_index: int
    cfo_hz: float
    metric: np.ndarray


def schmidl_cox(
    samples: np.ndarray,
    config: OfdmConfig | None = None,
    threshold: float = 0.6,
) -> SyncResult:
    """Detect the repeated STF and estimate timing + CFO.

    Args:
        samples: received complex baseband stream.
        config: OFDM numerology (sets the repetition lag).
        threshold: plateau height in the normalized metric (0..1).
    """
    config = config if config is not None else OfdmConfig()
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    samples = np.asarray(samples, dtype=complex)
    lag = config.symbol_length
    if len(samples) < 2 * lag + 1:
        raise ValueError("stream shorter than one STF")

    # P[d] = sum_k conj(x[d+k]) x[d+k+L];  R[d] = mean energy of both
    # halves.  Normalizing by one half alone lets silent stretches
    # (tiny P over tiny R) fake a plateau, so both halves contribute
    # and windows with negligible energy are gated out entirely.
    products = np.conj(samples[:-lag]) * samples[lag:]
    energy = np.abs(samples) ** 2
    window = np.ones(lag)
    p = np.convolve(products, window, mode="valid")
    first_half = np.convolve(energy[:-lag], window, mode="valid")
    second_half = np.convolve(energy[lag:], window, mode="valid")
    r = 0.5 * (first_half + second_half)
    metric = np.abs(p) ** 2 / np.maximum(r**2, 1e-30)
    metric[r < 0.1 * r.max()] = 0.0

    peak_index = int(np.argmax(metric))
    if metric[peak_index] < threshold:
        return SyncResult(False, -1, 0.0, metric)

    # The metric plateaus over the CP-ambiguity region; take the
    # centre of the region within 90% of the peak around it.
    near = metric >= 0.9 * metric[peak_index]
    left = peak_index
    while left > 0 and near[left - 1]:
        left -= 1
    right = peak_index
    while right < len(near) - 1 and near[right + 1]:
        right += 1
    start = (left + right) // 2

    sample_period = 1.0 / config.bandwidth_hz
    cfo_hz = float(np.angle(p[start]) / (2.0 * math.pi * lag * sample_period))
    return SyncResult(True, start, cfo_hz, metric)


def correct_cfo(
    samples: np.ndarray, cfo_hz: float, config: OfdmConfig | None = None
) -> np.ndarray:
    """De-rotate a stream by the estimated CFO."""
    config = config if config is not None else OfdmConfig()
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(len(samples))
    return samples * np.exp(-2j * math.pi * cfo_hz * n / config.bandwidth_hz)


def apply_cfo(
    samples: np.ndarray, cfo_hz: float, config: OfdmConfig | None = None
) -> np.ndarray:
    """Impose a CFO on a stream (channel/impairment side)."""
    return correct_cfo(samples, -cfo_hz, config)
