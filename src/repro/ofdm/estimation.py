"""Channel estimation from OFDM training symbols.

Least-squares per subcarrier (``h-hat = y / x``), averaging across
repeated training symbols, and combining across subcarriers "to improve
the SNR" (§7.1).
"""

from __future__ import annotations

import numpy as np


def ls_channel_estimate(
    received_symbols: np.ndarray, training_symbols: np.ndarray
) -> np.ndarray:
    """Per-subcarrier least-squares channel estimate y / x.

    Shapes broadcast: pass (num_symbols, num_used) received against a
    (num_used,) or matching training grid.
    """
    received = np.asarray(received_symbols, dtype=complex)
    training = np.asarray(training_symbols, dtype=complex)
    if np.any(np.abs(training) == 0):
        raise ValueError("training symbols must be non-zero on every subcarrier")
    return received / training


def average_symbol_estimates(estimates: np.ndarray) -> np.ndarray:
    """Average per-symbol channel estimates over the symbol axis.

    Coherent averaging of K repeated training symbols reduces the
    estimation noise power by a factor of K.
    """
    estimates = np.asarray(estimates, dtype=complex)
    if estimates.ndim == 1:
        return estimates
    return estimates.mean(axis=0)


def combine_subcarriers(per_subcarrier: np.ndarray) -> complex:
    """Combine per-subcarrier channel values into one complex gain.

    Wi-Vi combines measurements across subcarriers to improve SNR
    (§7.1).  For tracking, what matters is the common motion-induced
    phase trajectory; the per-subcarrier static phases differ (the
    channel is frequency-selective), so a plain mean would let
    subcarriers cancel.  We phase-align subcarriers to the first one
    before averaging — maximal-ratio combining against the dominant
    component.
    """
    values = np.asarray(per_subcarrier, dtype=complex).ravel()
    if values.size == 0:
        raise ValueError("nothing to combine")
    reference = values[np.argmax(np.abs(values))]
    if abs(reference) == 0:
        return 0j
    # Rotate every subcarrier onto the reference phase, then average:
    # magnitudes add coherently, the common phase is preserved.
    rotations = np.exp(-1j * np.angle(values * np.conj(reference)))
    aligned = values * rotations
    return complex(np.mean(aligned))


def estimation_snr_db(
    true_channel: np.ndarray, estimated_channel: np.ndarray
) -> float:
    """SNR of a channel estimate: channel power over error power, dB."""
    true = np.asarray(true_channel, dtype=complex)
    estimate = np.asarray(estimated_channel, dtype=complex)
    error_power = float(np.mean(np.abs(estimate - true) ** 2))
    signal_power = float(np.mean(np.abs(true) ** 2))
    if error_power == 0:
        return float("inf")
    if signal_power == 0:
        raise ValueError("true channel has zero power")
    return 10.0 * np.log10(signal_power / error_power)
