"""A complete packet PHY over the OFDM modem.

Transmit chain: payload bits -> CRC-32 -> convolutional code ->
interleave -> constellation map -> OFDM symbols, prefixed by two
training symbols for channel estimation.  Receive chain inverts each
step, equalizing per subcarrier with the training estimate.

This rounds out the Wi-Fi substrate Wi-Vi rides on: the same 64-carrier
waveform the sensing pipeline sounds the room with can carry data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ofdm.coding import (
    append_crc,
    check_crc,
    convolutional_encode,
    viterbi_decode,
)
from repro.ofdm.estimation import average_symbol_estimates, ls_channel_estimate
from repro.ofdm.mapping import (
    bits_per_symbol,
    deinterleave,
    demap_symbols,
    interleave,
    map_bits,
)
from repro.ofdm.modulation import OfdmConfig, OfdmModem
from repro.ofdm.preamble import training_burst

#: Tail bits appended by the terminated convolutional encoder.
_TAIL_BITS = 6


@dataclass(frozen=True)
class PhyConfig:
    """Data-plane parameters."""

    modulation: str = "qpsk"
    num_training_symbols: int = 2
    interleaver_depth: int = 8

    def __post_init__(self) -> None:
        bits_per_symbol(self.modulation)  # validates the name
        if self.num_training_symbols < 1:
            raise ValueError("need at least one training symbol")
        if self.interleaver_depth < 1:
            raise ValueError("interleaver depth must be positive")


@dataclass
class PhyPacket:
    """A transmitted packet: the waveform plus decode bookkeeping."""

    waveform: np.ndarray
    num_payload_bits: int
    num_coded_bits: int
    num_data_symbols: int


@dataclass
class DecodeResult:
    """Receiver output."""

    payload_bits: np.ndarray
    crc_ok: bool
    channel_estimate: np.ndarray


class OfdmPhy:
    """Packet transmitter/receiver over one OFDM numerology."""

    def __init__(self, config: PhyConfig | None = None, ofdm: OfdmConfig | None = None):
        self.config = config if config is not None else PhyConfig()
        self.modem = OfdmModem(ofdm)

    # ------------------------------------------------------------------
    # Transmit
    # ------------------------------------------------------------------

    def transmit(self, payload_bits: np.ndarray) -> PhyPacket:
        """Encode payload bits into a time-domain packet waveform."""
        payload = np.asarray(payload_bits, dtype=int)
        if payload.ndim != 1:
            raise ValueError("payload must be a one-dimensional bit array")
        if len(payload) % 8 != 0:
            raise ValueError("payload must be byte-aligned for the CRC")

        protected = append_crc(payload)
        coded = convolutional_encode(protected, terminate=True)
        shuffled = interleave(coded, self.config.interleaver_depth)

        width = bits_per_symbol(self.config.modulation)
        num_used = self.modem.config.num_used
        bits_per_ofdm_symbol = width * num_used
        num_data_symbols = int(np.ceil(len(shuffled) / bits_per_ofdm_symbol))
        padded = np.zeros(num_data_symbols * bits_per_ofdm_symbol, dtype=int)
        padded[: len(shuffled)] = shuffled

        points = map_bits(padded, self.config.modulation)
        grid = points.reshape(num_data_symbols, num_used)
        training = training_burst(self.modem.config, self.config.num_training_symbols)
        frequency_grid = np.concatenate([training, grid], axis=0)
        waveform = self.modem.modulate(frequency_grid).ravel()
        return PhyPacket(
            waveform=waveform,
            num_payload_bits=len(payload),
            num_coded_bits=len(shuffled),
            num_data_symbols=num_data_symbols,
        )

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def receive(self, waveform: np.ndarray, packet: PhyPacket) -> DecodeResult:
        """Decode a received packet waveform.

        ``packet`` supplies the frame dimensions (in a full system they
        would ride in a SIGNAL field; we keep the header out-of-band
        for clarity).
        """
        waveform = np.asarray(waveform, dtype=complex)
        symbol_length = self.modem.config.symbol_length
        total_symbols = self.config.num_training_symbols + packet.num_data_symbols
        expected = total_symbols * symbol_length
        if len(waveform) < expected:
            raise ValueError(
                f"waveform of {len(waveform)} samples shorter than the "
                f"{expected}-sample frame"
            )
        grid = self.modem.demodulate(
            waveform[:expected].reshape(total_symbols, symbol_length)
        )
        training_received = grid[: self.config.num_training_symbols]
        data_received = grid[self.config.num_training_symbols :]

        training = training_burst(self.modem.config, self.config.num_training_symbols)
        channel = average_symbol_estimates(
            ls_channel_estimate(training_received, training)
        )
        safe_channel = np.where(np.abs(channel) < 1e-12, 1.0, channel)
        equalized = data_received / safe_channel

        demapped = demap_symbols(equalized.ravel(), self.config.modulation)
        shuffled = demapped[: packet.num_coded_bits]
        coded = deinterleave(
            np.concatenate(
                [shuffled, np.zeros(
                    _padded_length(packet.num_coded_bits, self.config.interleaver_depth)
                    - packet.num_coded_bits,
                    dtype=int,
                )]
            ),
            self.config.interleaver_depth,
            packet.num_coded_bits,
        )
        protected = viterbi_decode(
            coded, num_data_bits=packet.num_payload_bits + 32, terminated=True
        )
        payload = protected[: packet.num_payload_bits]
        return DecodeResult(
            payload_bits=payload,
            crc_ok=check_crc(protected),
            channel_estimate=channel,
        )


def _padded_length(length: int, depth: int) -> int:
    columns = int(np.ceil(length / depth))
    return depth * columns
