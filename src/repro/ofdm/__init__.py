"""Wi-Fi-style OFDM physical layer.

"We implement standard Wi-Fi OFDM modulation in the UHD code; each
OFDM symbol consists of 64 subcarriers including the DC.  The nulling
procedure ... is performed on a subcarrier basis.  The channel
measurements across the different subcarriers are combined to improve
the SNR." (§7.1)
"""

from repro.ofdm.coding import (
    append_crc,
    check_crc,
    convolutional_encode,
    viterbi_decode,
)
from repro.ofdm.estimation import (
    average_symbol_estimates,
    combine_subcarriers,
    ls_channel_estimate,
)
from repro.ofdm.mapping import demap_symbols, map_bits
from repro.ofdm.modulation import OfdmConfig, OfdmModem
from repro.ofdm.phy import OfdmPhy, PhyConfig
from repro.ofdm.preamble import training_symbol
from repro.ofdm.sync import build_stf, correct_cfo, schmidl_cox

__all__ = [
    "OfdmConfig",
    "OfdmModem",
    "OfdmPhy",
    "PhyConfig",
    "append_crc",
    "average_symbol_estimates",
    "build_stf",
    "check_crc",
    "combine_subcarriers",
    "convolutional_encode",
    "correct_cfo",
    "demap_symbols",
    "ls_channel_estimate",
    "map_bits",
    "schmidl_cox",
    "training_symbol",
    "viterbi_decode",
]
