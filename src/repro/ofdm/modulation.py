"""OFDM modulation and demodulation.

64 subcarriers including DC (§7.1), a cyclic prefix, and the usual
802.11-style subcarrier layout: DC and band-edge guards are left
unused; the remaining subcarriers carry training or data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import BANDWIDTH_HZ, NUM_SUBCARRIERS


@dataclass(frozen=True)
class OfdmConfig:
    """OFDM numerology.

    Attributes:
        num_subcarriers: FFT size (64 including DC, §7.1).
        cp_length: cyclic-prefix length in samples (16, the 802.11
            quarter-symbol prefix).
        num_guard: unused subcarriers at each band edge.
        bandwidth_hz: occupied bandwidth (5 MHz in the prototype).
    """

    num_subcarriers: int = NUM_SUBCARRIERS
    cp_length: int = 16
    num_guard: int = 6
    bandwidth_hz: float = BANDWIDTH_HZ

    def __post_init__(self) -> None:
        if self.num_subcarriers < 8:
            raise ValueError("need at least 8 subcarriers")
        if not 0 <= self.cp_length < self.num_subcarriers:
            raise ValueError("cyclic prefix must be shorter than the symbol")
        if self.num_guard * 2 + 1 >= self.num_subcarriers:
            raise ValueError("guards leave no usable subcarriers")

    @property
    def symbol_length(self) -> int:
        """Time-domain samples per OFDM symbol, prefix included."""
        return self.num_subcarriers + self.cp_length

    @property
    def symbol_duration_s(self) -> float:
        return self.symbol_length / self.bandwidth_hz

    @property
    def used_subcarriers(self) -> np.ndarray:
        """Indices (FFT bins) that carry signal: all but DC and guards.

        Bins follow numpy FFT ordering: 0 is DC, 1..N/2-1 positive
        frequencies, N/2..N-1 negative frequencies.
        """
        half = self.num_subcarriers // 2
        positive = np.arange(1, half - self.num_guard)
        negative = np.arange(half + self.num_guard, self.num_subcarriers)
        return np.concatenate([positive, negative])

    @property
    def num_used(self) -> int:
        return len(self.used_subcarriers)

    def subcarrier_frequencies_hz(self) -> np.ndarray:
        """Baseband centre frequency of each used subcarrier (Hz)."""
        spacing = self.bandwidth_hz / self.num_subcarriers
        bins = self.used_subcarriers.astype(float)
        half = self.num_subcarriers // 2
        bins = np.where(bins >= half, bins - self.num_subcarriers, bins)
        return bins * spacing


class OfdmModem:
    """Modulator/demodulator for one OFDM numerology."""

    def __init__(self, config: OfdmConfig | None = None):
        self.config = config if config is not None else OfdmConfig()

    def modulate(self, frequency_symbols: np.ndarray) -> np.ndarray:
        """Map used-subcarrier values to a time-domain symbol with CP.

        ``frequency_symbols`` has shape (..., num_used); the output has
        shape (..., symbol_length).  Time samples are normalized so a
        unit-power constellation yields unit mean-square amplitude.
        """
        symbols = np.atleast_2d(np.asarray(frequency_symbols, dtype=complex))
        if symbols.shape[-1] != self.config.num_used:
            raise ValueError(
                f"expected {self.config.num_used} used subcarriers, "
                f"got {symbols.shape[-1]}"
            )
        n = self.config.num_subcarriers
        grid = np.zeros(symbols.shape[:-1] + (n,), dtype=complex)
        grid[..., self.config.used_subcarriers] = symbols
        # Scale so E[|time sample|^2] == E[|constellation point|^2].
        time_domain = np.fft.ifft(grid, axis=-1) * (n / np.sqrt(self.config.num_used))
        with_cp = np.concatenate(
            [time_domain[..., -self.config.cp_length :], time_domain], axis=-1
        )
        return with_cp if np.ndim(frequency_symbols) > 1 else with_cp[0]

    def demodulate(self, time_samples: np.ndarray) -> np.ndarray:
        """Strip the CP and return used-subcarrier values."""
        samples = np.atleast_2d(np.asarray(time_samples, dtype=complex))
        if samples.shape[-1] != self.config.symbol_length:
            raise ValueError(
                f"expected symbols of {self.config.symbol_length} samples, "
                f"got {samples.shape[-1]}"
            )
        body = samples[..., self.config.cp_length :]
        grid = np.fft.fft(body, axis=-1) / (
            self.config.num_subcarriers / np.sqrt(self.config.num_used)
        )
        used = grid[..., self.config.used_subcarriers]
        return used if np.ndim(time_samples) > 1 else used[0]

    def apply_channel_frequency_domain(
        self, frequency_symbols: np.ndarray, channel_response: np.ndarray
    ) -> np.ndarray:
        """Multiply used-subcarrier symbols by a channel response.

        Equivalent to time-domain convolution for delay spreads shorter
        than the cyclic prefix, which holds for the indoor scenes here
        (CP of 16 samples at 5 MHz = 3.2 us = 960 m of excess path).
        """
        symbols = np.asarray(frequency_symbols, dtype=complex)
        response = np.asarray(channel_response, dtype=complex)
        if response.shape[-1] != self.config.num_used:
            raise ValueError("channel response must cover the used subcarriers")
        return symbols * response
