"""Training preambles for channel estimation.

Algorithm 1 starts with each transmit antenna sending "a known
preamble x" alone, from which the receiver estimates h-hat = y / x per
subcarrier.
"""

from __future__ import annotations

import numpy as np

from repro.ofdm.modulation import OfdmConfig


def training_symbol(config: OfdmConfig, seed: int = 0x57495649) -> np.ndarray:
    """A deterministic unit-power BPSK training symbol.

    The default seed spells "WIVI".  Every element is +/-1, so dividing
    the received subcarriers by the training symbol never amplifies
    noise unevenly (constant-modulus training, as in 802.11 LTFs).
    """
    rng = np.random.default_rng(seed)
    signs = rng.integers(0, 2, size=config.num_used) * 2 - 1
    return signs.astype(complex)


def training_burst(
    config: OfdmConfig, num_symbols: int, seed: int = 0x57495649
) -> np.ndarray:
    """``num_symbols`` repetitions of the training symbol, shape
    (num_symbols, num_used).  Repetition lets the estimator average
    down the noise."""
    if num_symbols < 1:
        raise ValueError("need at least one training symbol")
    symbol = training_symbol(config, seed)
    return np.tile(symbol, (num_symbols, 1))
