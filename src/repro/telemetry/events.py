"""The structured event log: timestamped JSONL records with trace ids.

Where spans answer "how long did each stage take", events answer "what
happened": nulling residuals per iteration, MUSIC eigenvalue spectra
per window, health-machine transitions, stream gaps, injected faults.
Each record carries a wall-clock timestamp and — when emitted inside a
span — the trace/span ids that tie it back to the timing picture.

Values are coerced to JSON-able types on emit (numpy arrays to lists,
numpy scalars to Python scalars, enums to their values), so callers
pass whatever they have.
"""

from __future__ import annotations

import enum
import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.telemetry.trace import NullTracer, Tracer


def jsonable(value: Any) -> Any:
    """Best-effort coercion of ``value`` into JSON-encodable types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, np.ndarray):
        return [jsonable(item) for item in value.tolist()]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, complex):
        return {"re": value.real, "im": value.imag}
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    return str(value)


class EventLog:
    """Append-only structured event record, exported as JSONL.

    Args:
        tracer: when given, every record is stamped with the tracer's
            trace id and the currently-open span's id.
        clock: wall-clock seconds source (injectable for tests).
    """

    enabled = True

    def __init__(self, tracer: Tracer | NullTracer | None = None, clock=time.time):
        self._tracer = tracer
        self._clock = clock
        self.records: list[dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self.records)

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the stored record."""
        record: dict[str, Any] = {"ts": round(float(self._clock()), 6), "kind": kind}
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            record["trace_id"] = tracer.trace_id
            record["span_id"] = tracer.current_span_id
        for key, value in fields.items():
            record[key] = jsonable(value)
        self.records.append(record)
        return record

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """Every recorded event of one kind, in emission order."""
        return [record for record in self.records if record["kind"] == kind]

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one event per line; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record) + "\n")
        return path


class NullEventLog:
    """Event-log-shaped no-op for the disabled path."""

    enabled = False
    records: tuple[()] = ()

    def __len__(self) -> int:
        return 0

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return []


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL file (events or spans) back into records."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def read_jsonl_tolerant(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Load a JSONL file, skipping lines that do not parse.

    A writer that has not flushed (or died mid-write) leaves a torn
    line — usually the last one, but crash-truncated files can tear
    anywhere.  Returns ``(records, skipped)`` where ``skipped`` counts
    the unparseable lines, so report tooling can surface the loss
    instead of refusing the whole file.
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped
