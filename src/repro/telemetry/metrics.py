"""Counters, gauges, fixed-bucket histograms, and stage accounting.

The registry is the cross-process half of the telemetry story: every
metric can :meth:`~MetricsRegistry.snapshot` itself into a plain JSON
dict and a registry can :meth:`~MetricsRegistry.merge` such snapshots
back in — counters add, histograms add bucket-wise, gauges keep the
most recent write.  A ProcessPool worker therefore records locally,
ships the snapshot home with its result (pickle-friendly), and the
parent's merged totals equal a serial run's exactly (enforced by
test).

This module also owns the per-stage accounting the streaming runtime
charges (:class:`StageMetrics` / :class:`StageTimer` /
:class:`RuntimeMetrics`), superseding the retired runtime metrics shim
home (which now just re-exports these names).  Stage timers gained
error accounting: a stage that *raises* still pays its wall time but
credits no output items, and the failure is counted in
``StageMetrics.errors``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.telemetry.context import get_telemetry

#: Default latency buckets (milliseconds): roughly log-spaced from
#: 50 us to 10 s, the range between a no-op stage call and a stuck one.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


@dataclass
class Counter:
    """A monotonically-increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def merge(self, snap: dict[str, Any]) -> None:
        self.value += snap["value"]


@dataclass
class Gauge:
    """A point-in-time value (last write wins, also on merge)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def merge(self, snap: dict[str, Any]) -> None:
        self.value = snap["value"]


class Histogram:
    """A fixed-bucket histogram with Prometheus-style ``le`` edges.

    ``buckets`` are ascending upper edges; a value lands in the first
    bucket whose edge is **>= value** (edges are inclusive), and values
    above the last edge land in the implicit overflow bucket, so
    ``counts`` has ``len(buckets) + 1`` entries.  Alongside the bucket
    counts the histogram tracks count/sum/min/max, which makes merged
    percentile estimates and exact means possible.
    """

    def __init__(self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_MS):
        if not buckets:
            raise ValueError("need at least one bucket edge")
        edges = tuple(float(edge) for edge in buckets)
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly ascending")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution quantile estimate, ``q`` in [0, 1].

        Returns the upper edge of the bucket holding the q-th
        observation (the overflow bucket reports the observed max);
        exact to within one bucket width, which is what fixed-bucket
        histograms buy in exchange for constant memory.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max
        return self.max  # pragma: no cover - rank <= count by construction

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    def merge(self, snap: dict[str, Any]) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket edges differ"
            )
        for i, count in enumerate(snap["counts"]):
            self.counts[i] += count
        self.count += snap["count"]
        self.sum += snap["sum"]
        if snap["min"] is not None and snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] is not None and snap["max"] > self.max:
            self.max = snap["max"]


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the live instrument; a name can hold only one instrument kind.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_MS
    ) -> Histogram:
        histogram = self._get(name, Histogram, lambda: Histogram(name, buckets))
        if histogram.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {name!r} already exists with other buckets")
        return histogram

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A plain-JSON view of every metric, keyed by name, sorted."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in.

        Unknown names are created with the snapshot's own shape, so a
        fresh registry can absorb any set of worker snapshots.
        """
        for name, snap in snapshot.items():
            kind = snap["type"]
            if kind == "counter":
                self.counter(name).merge(snap)
            elif kind == "gauge":
                self.gauge(name).merge(snap)
            elif kind == "histogram":
                self.histogram(name, tuple(snap["buckets"])).merge(snap)
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def export_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.snapshot(), indent=2), encoding="utf-8")
        return path


def diff_snapshot(
    prev: dict[str, dict[str, Any]], cur: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """The delta between two registry snapshots, in merge form.

    Feeding every delta of a snapshot chain (starting from ``{}``) to
    :meth:`MetricsRegistry.merge` reproduces the final snapshot: counter
    values and histogram bucket counts are integer-valued in practice so
    their subtract-then-add round trip is exact; histogram ``min``/``max``
    carry the running extrema (merge keeps extrema, so cumulative values
    merge exactly); gauges carry the current value (last write wins).
    Histogram ``sum`` telescopes up to float rounding.  Metrics that did
    not change since ``prev`` are omitted; metrics never shrink, so a
    name present in ``prev`` but not ``cur`` cannot happen with a live
    registry and is ignored.
    """
    delta: dict[str, dict[str, Any]] = {}
    for name, snap in cur.items():
        kind = snap["type"]
        before = prev.get(name)
        if before is not None and before["type"] != kind:
            raise ValueError(
                f"metric {name!r} changed type {before['type']!r} -> {kind!r}"
            )
        if kind == "counter":
            base = before["value"] if before else 0.0
            if snap["value"] != base:
                delta[name] = {"type": "counter", "value": snap["value"] - base}
        elif kind == "gauge":
            if before is None or before["value"] != snap["value"]:
                delta[name] = {"type": "gauge", "value": snap["value"]}
        elif kind == "histogram":
            if before is not None and list(before["buckets"]) != list(snap["buckets"]):
                raise ValueError(f"histogram {name!r} bucket edges changed")
            base_count = before["count"] if before else 0
            if snap["count"] == base_count:
                continue
            base_counts = before["counts"] if before else [0] * len(snap["counts"])
            delta[name] = {
                "type": "histogram",
                "buckets": list(snap["buckets"]),
                "counts": [c - b for c, b in zip(snap["counts"], base_counts)],
                "count": snap["count"] - base_count,
                "sum": snap["sum"] - (before["sum"] if before else 0.0),
                "min": snap["min"],
                "max": snap["max"],
            }
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")
    return delta


# ----------------------------------------------------------------------
# Stage accounting (absorbed from the retired runtime metrics module)
# ----------------------------------------------------------------------


@dataclass
class StageMetrics:
    """Work accounting for one pipeline stage.

    Attributes:
        name: stage label ("source", "track", ...).
        invocations: how many times the stage ran.
        items_in: units consumed (samples for the source/condition
            stages, columns for detect/sink).
        items_out: units produced.
        busy_s: total wall time spent inside the stage.
        errors: invocations that raised (their wall time is still
            charged, but no output items are credited).
    """

    name: str
    invocations: int = 0
    items_in: int = 0
    items_out: int = 0
    busy_s: float = 0.0
    errors: int = 0

    def charge(
        self,
        elapsed_s: float,
        items_in: int = 0,
        items_out: int = 0,
        error: bool = False,
    ) -> None:
        """Record one invocation of the stage."""
        if elapsed_s < 0:
            raise ValueError("elapsed time cannot be negative")
        self.invocations += 1
        self.items_in += items_in
        self.items_out += 0 if error else items_out
        self.busy_s += elapsed_s
        if error:
            self.errors += 1

    @property
    def mean_latency_s(self) -> float:
        """Mean wall time per invocation (0 before the first one)."""
        if self.invocations == 0:
            return 0.0
        return self.busy_s / self.invocations

    @property
    def throughput_per_s(self) -> float:
        """Items produced per busy second (0 when the stage never ran)."""
        if self.busy_s <= 0.0:
            return 0.0
        return self.items_out / self.busy_s

    def describe(self) -> str:
        line = (
            f"{self.name}: {self.invocations} calls, "
            f"{self.items_in} in -> {self.items_out} out, "
            f"{1e3 * self.mean_latency_s:.3f} ms/call, "
            f"{self.throughput_per_s:.1f} items/s busy"
        )
        if self.errors:
            line += f", {self.errors} errors"
        return line

    def snapshot(self) -> dict[str, Any]:
        return {
            "invocations": self.invocations,
            "items_in": self.items_in,
            "items_out": self.items_out,
            "busy_s": self.busy_s,
            "errors": self.errors,
        }

    def merge(self, snap: dict[str, Any]) -> None:
        self.invocations += snap["invocations"]
        self.items_in += snap["items_in"]
        self.items_out += snap["items_out"]
        self.busy_s += snap["busy_s"]
        self.errors += snap.get("errors", 0)


class StageTimer:
    """Context manager charging a block's wall time to a stage.

    Usage::

        with StageTimer(metrics, items_in=len(block)) as timer:
            columns = tracker.push(block)
            timer.items_out = len(columns)

    On an exception the elapsed time is still charged (it was really
    spent) but ``items_out`` is *not* credited and the stage's
    ``errors`` count goes up — a stage that dies mid-block must not
    report the work it failed to finish.

    When telemetry is active the elapsed time is additionally observed
    into the global ``stage.<name>.latency_ms`` histogram (and errors
    into ``stage.<name>.errors``); when it is not, the only cost over
    the raw charge is one enabled-flag check.
    """

    def __init__(self, metrics: StageMetrics, items_in: int = 0, items_out: int = 0):
        self.metrics = metrics
        self.items_in = items_in
        self.items_out = items_out
        self._start = 0.0

    def __enter__(self) -> StageTimer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        failed = exc_type is not None
        self.metrics.charge(
            elapsed,
            items_in=self.items_in,
            items_out=self.items_out,
            error=failed,
        )
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.histogram(
                f"stage.{self.metrics.name}.latency_ms", LATENCY_BUCKETS_MS
            ).observe(elapsed * 1e3)
            if failed:
                telemetry.metrics.counter(f"stage.{self.metrics.name}.errors").inc()
        return False


@dataclass
class RuntimeMetrics:
    """The pipeline's full metric set, one :class:`StageMetrics` per stage."""

    stages: dict[str, StageMetrics] = field(default_factory=dict)

    def stage(self, name: str) -> StageMetrics:
        """The named stage's metrics, created on first use."""
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    def describe(self) -> list[str]:
        """One deterministic-format line per stage, in creation order."""
        return [metrics.describe() for metrics in self.stages.values()]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Plain-dict view, mergeable across processes."""
        return {name: stage.snapshot() for name, stage in self.stages.items()}

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold another pipeline's :meth:`snapshot` into this one."""
        for name, snap in snapshot.items():
            self.stage(name).merge(snap)
