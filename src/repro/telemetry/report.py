"""Summarize a telemetry run directory into a human-readable report.

``repro telemetry-report DIR`` front-ends :func:`summarize_run`, which
reads the files ``Telemetry.flush()`` wrote (any subset — a missing
file just drops its section) and reports:

* span totals per name (count, total, mean);
* per-stage latency percentiles from the fixed-bucket histograms;
* the health-machine timeline;
* nulling convergence (residual power per iteration, with a sparkline);
* injected faults, stream gaps, and detections.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.telemetry.events import read_jsonl_tolerant
from repro.telemetry.metrics import Histogram
from repro.telemetry.session import EVENTS_FILE, METRICS_FILE, SPANS_FILE, TRACE_FILE

_SPARK_LEVELS = " .:-=+*#%@"


def _sparkline(values: list[float]) -> str:
    """A log-scaled character strip of a positive decaying series."""
    import math

    if not values:
        return ""
    floors = [max(v, 1e-300) for v in values]
    logs = [math.log10(v) for v in floors]
    lo, hi = min(logs), max(logs)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[-1] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int(round((v - lo) / (hi - lo) * top))] for v in logs
    )


def _load_metrics(directory: Path) -> tuple[dict[str, dict[str, Any]], bool]:
    """``(metrics, unreadable)`` — a torn metrics.json drops its section."""
    path = directory / METRICS_FILE
    if not path.exists():
        return {}, False
    try:
        metrics = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return {}, True
    if not isinstance(metrics, dict):
        return {}, True
    return metrics, False


def _histogram_from_snapshot(name: str, snap: dict[str, Any]) -> Histogram:
    histogram = Histogram(name, tuple(snap["buckets"]))
    histogram.merge(snap)
    return histogram


def _span_section(directory: Path, lines: list[str]) -> int:
    path = directory / SPANS_FILE
    if not path.exists():
        return 0
    spans, skipped = read_jsonl_tolerant(path)
    lines.append(f"spans: {len(spans)} recorded")
    if not spans:
        return skipped
    by_name: dict[str, list[float]] = defaultdict(list)
    for span in spans:
        by_name[span["name"]].append(span["duration_us"] / 1e3)
    lines.append(f"  {'span':<28} {'count':>6} {'total ms':>10} {'mean ms':>9}")
    for name in sorted(by_name, key=lambda n: -sum(by_name[n])):
        durations = by_name[name]
        lines.append(
            f"  {name:<28} {len(durations):>6} {sum(durations):>10.2f} "
            f"{sum(durations) / len(durations):>9.3f}"
        )
    return skipped


def _stage_section(metrics: dict[str, dict[str, Any]], lines: list[str]) -> None:
    prefix, suffix = "stage.", ".latency_ms"
    stage_names = [
        name[len(prefix) : -len(suffix)]
        for name in metrics
        if name.startswith(prefix)
        and name.endswith(suffix)
        and metrics[name].get("type") == "histogram"
    ]
    if not stage_names:
        return
    lines.append("stage latency percentiles (ms):")
    lines.append(
        f"  {'stage':<12} {'count':>7} {'p50':>9} {'p90':>9} {'p99':>9} {'errors':>7}"
    )
    for stage in sorted(stage_names):
        snap = metrics[f"{prefix}{stage}{suffix}"]
        histogram = _histogram_from_snapshot(stage, snap)
        errors = metrics.get(f"stage.{stage}.errors", {}).get("value", 0)
        lines.append(
            f"  {stage:<12} {histogram.count:>7} "
            f"{histogram.percentile(0.50):>9.3f} "
            f"{histogram.percentile(0.90):>9.3f} "
            f"{histogram.percentile(0.99):>9.3f} "
            f"{int(errors):>7}"
        )


def _health_section(events: list[dict[str, Any]], lines: list[str]) -> None:
    transitions = [e for e in events if e["kind"] == "health.transition"]
    if not transitions:
        return
    lines.append(f"health timeline: {len(transitions)} transitions")
    for event in transitions:
        where = event.get("capture_index", event.get("block_index", "?"))
        lines.append(
            f"  [{where}] {event.get('source', '?')} -> "
            f"{event.get('target', event.get('state', '?'))}: "
            f"{event.get('reason', '')}"
        )


def _nulling_section(events: list[dict[str, Any]], lines: list[str]) -> None:
    residuals = [e for e in events if e["kind"] == "nulling.residual"]
    if not residuals:
        return
    runs: dict[Any, list[dict[str, Any]]] = defaultdict(list)
    for event in residuals:
        runs[event.get("span_id")].append(event)
    lines.append(f"nulling convergence: {len(runs)} run(s)")
    for index, span_id in enumerate(sorted(runs, key=lambda s: str(s))):
        history = sorted(runs[span_id], key=lambda e: e.get("iteration", 0))
        powers = [e["residual_power"] for e in history]
        ratio = powers[-1] / powers[0] if powers[0] > 0 else float("nan")
        lines.append(
            f"  run {index + 1}: {len(powers) - 1} iterations, "
            f"{powers[0]:.3e} -> {powers[-1]:.3e} "
            f"({ratio:.2e}x)  |{_sparkline(powers)}|"
        )


def _event_counts_section(events: list[dict[str, Any]], lines: list[str]) -> None:
    faults = [e for e in events if e["kind"] == "fault.injected"]
    if faults:
        lines.append(f"fault injections: {len(faults)}")
        for event in faults:
            lines.append(
                f"  {event.get('time_s', 0.0):.3f}s {event.get('fault', '?')}: "
                f"{event.get('samples_touched', 0)} samples "
                f"({event.get('detail', '')})"
            )
    gaps = [e for e in events if e["kind"] == "stream.gap"]
    if gaps:
        dropped = sum(int(e.get("dropped_samples", 0)) for e in gaps)
        lines.append(f"stream gaps: {len(gaps)} ({dropped} samples lost)")
    detections = [e for e in events if e["kind"] == "stream.detection"]
    if detections:
        lines.append(f"detections: {len(detections)}")
    windows = [e for e in events if e["kind"] == "music.eigenvalues"]
    if windows:
        fallbacks = [e for e in events if e["kind"] == "music.fallback"]
        lines.append(
            f"music windows: {len(windows)} eigendecompositions, "
            f"{len(fallbacks)} degeneracy fallbacks"
        )


def summarize_run(directory: str | Path) -> str:
    """Render the report for one telemetry directory.

    Raises:
        FileNotFoundError: the directory does not exist or holds none
            of the telemetry files.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"telemetry directory {directory} does not exist")
    known = (SPANS_FILE, TRACE_FILE, EVENTS_FILE, METRICS_FILE)
    present = [name for name in known if (directory / name).exists()]
    if not present:
        raise FileNotFoundError(
            f"{directory} contains no telemetry files ({', '.join(known)})"
        )
    lines = [f"telemetry report: {directory}", f"files: {', '.join(present)}", ""]
    skipped_lines = _span_section(directory, lines)
    metrics, metrics_unreadable = _load_metrics(directory)
    _stage_section(metrics, lines)
    events_path = directory / EVENTS_FILE
    events: list[dict[str, Any]] = []
    if events_path.exists():
        events, skipped_events = read_jsonl_tolerant(events_path)
        skipped_lines += skipped_events
    _health_section(events, lines)
    _nulling_section(events, lines)
    _event_counts_section(events, lines)
    counters = [
        (name, snap["value"])
        for name, snap in metrics.items()
        if snap.get("type") == "counter" and not name.startswith("stage.")
    ]
    if counters:
        lines.append("counters:")
        for name, value in counters:
            lines.append(f"  {name:<28} {value:g}")
    if skipped_lines:
        lines.append(
            f"skipped {skipped_lines} truncated/partial JSONL line(s) "
            "(unflushed or interrupted writer)"
        )
    if metrics_unreadable:
        lines.append(f"{METRICS_FILE} was unreadable (truncated write?); skipped")
    return "\n".join(lines)
