"""The telemetry session: one tracer + metrics registry + event log.

A session is either *enabled* (live tracer, live event log, an output
directory to flush into) or *disabled* (no-op tracer and event log; the
default).  Instrumented call sites fetch the active session via
:func:`repro.telemetry.context.get_telemetry` and check ``enabled``
once — that check is the entire overhead of the disabled path.

``configure()`` installs an enabled session process-globally (the CLI
does this for ``--telemetry DIR`` / ``--trace FILE``), and ``flush()``
writes the run directory:

* ``spans.jsonl``   — one finished span per line;
* ``trace.json``    — Chrome-trace / Perfetto ``traceEvents``;
* ``events.jsonl``  — the structured event log;
* ``metrics.json``  — the metrics-registry snapshot.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.context import get_telemetry, reset_telemetry, set_telemetry
from repro.telemetry.events import EventLog, NullEventLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import NullTracer, SpanContext, Tracer

#: File names flush() writes into the telemetry directory.
SPANS_FILE = "spans.jsonl"
TRACE_FILE = "trace.json"
EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.json"


class Telemetry:
    """One observability session (see module docstring).

    Args:
        enabled: live instruments when True, no-ops when False.
        out_dir: directory ``flush()`` fills (created on demand).
        trace_file: extra path for the Chrome trace alone — usable
            without a full telemetry directory.
        parent_context: continue another process's trace.
    """

    def __init__(
        self,
        enabled: bool = True,
        out_dir: str | Path | None = None,
        trace_file: str | Path | None = None,
        parent_context: SpanContext | None = None,
    ):
        self.enabled = enabled
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.trace_file = Path(trace_file) if trace_file is not None else None
        self.metrics = MetricsRegistry()
        if enabled:
            self.tracer: Tracer | NullTracer = Tracer(parent_context=parent_context)
            self.events: EventLog | NullEventLog = EventLog(tracer=self.tracer)
        else:
            self.tracer = NullTracer()
            self.events = NullEventLog()

    def span(self, name: str, **attributes):
        """Open a span on this session's tracer (no-op when disabled)."""
        return self.tracer.span(name, **attributes)

    def flush(self) -> list[Path]:
        """Write every configured output file; returns written paths.

        Before writing, per-stage latency histograms present in the
        registry are summarized into ``stage.histogram`` events so the
        event log alone carries the stage-latency picture.
        """
        if not self.enabled:
            return []
        self._emit_stage_summaries()
        written: list[Path] = []
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            written.append(self.tracer.export_jsonl(self.out_dir / SPANS_FILE))
            written.append(self.tracer.export_chrome(self.out_dir / TRACE_FILE))
            assert isinstance(self.events, EventLog)
            written.append(self.events.export_jsonl(self.out_dir / EVENTS_FILE))
            written.append(self.metrics.export_json(self.out_dir / METRICS_FILE))
        if self.trace_file is not None:
            self.trace_file.parent.mkdir(parents=True, exist_ok=True)
            written.append(self.tracer.export_chrome(self.trace_file))
        return written

    def _emit_stage_summaries(self) -> None:
        """One ``stage.histogram`` event per stage-latency histogram."""
        prefix, suffix = "stage.", ".latency_ms"
        for name in self.metrics.names():
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            metric = self.metrics.get(name)
            snap = metric.snapshot()
            if snap.get("type") != "histogram":
                continue
            stage = name[len(prefix) : -len(suffix)]
            self.events.emit(
                "stage.histogram",
                stage=stage,
                buckets=snap["buckets"],
                counts=snap["counts"],
                count=snap["count"],
                sum_ms=snap["sum"],
                p50_ms=metric.percentile(0.50),
                p90_ms=metric.percentile(0.90),
                p99_ms=metric.percentile(0.99),
            )


def configure(
    out_dir: str | Path | None = None,
    trace_file: str | Path | None = None,
    parent_context: SpanContext | None = None,
) -> Telemetry:
    """Install an enabled session as the process-global active one."""
    return set_telemetry(
        Telemetry(
            enabled=True,
            out_dir=out_dir,
            trace_file=trace_file,
            parent_context=parent_context,
        )
    )


def deactivate() -> None:
    """Return to the disabled default session."""
    reset_telemetry()


__all__ = [
    "EVENTS_FILE",
    "METRICS_FILE",
    "SPANS_FILE",
    "TRACE_FILE",
    "Telemetry",
    "configure",
    "deactivate",
    "get_telemetry",
]
