"""repro.telemetry — tracing, metrics, and structured events.

The sensing stack's observability layer, three instruments sharing one
session (:class:`~repro.telemetry.session.Telemetry`):

* **Spans** (:mod:`~repro.telemetry.trace`): nested, attributed timing
  intervals, exported as JSONL and as Chrome-trace JSON that loads
  straight into Perfetto / ``chrome://tracing``.
* **Metrics** (:mod:`~repro.telemetry.metrics`): counters, gauges, and
  fixed-bucket histograms with snapshot/merge semantics, so worker
  processes ship their numbers home and merged totals match a serial
  run exactly.  Also home of the runtime's per-stage accounting
  (``StageMetrics`` / ``StageTimer`` / ``RuntimeMetrics``).
* **Events** (:mod:`~repro.telemetry.events`): timestamped structured
  records (nulling residuals, eigenvalue spectra, health transitions,
  faults) with trace ids, exported as JSONL.

The default session is disabled: its tracer and event log are shared
no-ops, so the instrumented hot paths cost one flag check.  The CLI
enables it via ``--telemetry DIR`` / ``--trace FILE`` and summarizes a
run directory with ``repro telemetry-report DIR``.
"""

from repro.telemetry.context import get_telemetry, reset_telemetry, set_telemetry
from repro.telemetry.events import EventLog, NullEventLog, jsonable, read_jsonl
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RuntimeMetrics,
    StageMetrics,
    StageTimer,
)
from repro.telemetry.output import OutputWriter, configure_cli_logging
from repro.telemetry.report import summarize_run
from repro.telemetry.session import (
    EVENTS_FILE,
    METRICS_FILE,
    SPANS_FILE,
    TRACE_FILE,
    Telemetry,
    configure,
    deactivate,
)
from repro.telemetry.trace import NullTracer, Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "EVENTS_FILE",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "METRICS_FILE",
    "MetricsRegistry",
    "NullEventLog",
    "NullTracer",
    "OutputWriter",
    "RuntimeMetrics",
    "SPANS_FILE",
    "Span",
    "SpanContext",
    "StageMetrics",
    "StageTimer",
    "TRACE_FILE",
    "Telemetry",
    "Tracer",
    "configure",
    "configure_cli_logging",
    "deactivate",
    "get_telemetry",
    "jsonable",
    "read_jsonl",
    "reset_telemetry",
    "set_telemetry",
    "summarize_run",
]
