"""The process-global active-telemetry slot.

Instrumented call sites throughout the stack ask
:func:`get_telemetry` for the active session and check its ``enabled``
flag once — the whole cost of an instrumented hot path when telemetry
is off.  The slot starts holding a disabled session (no-op tracer and
event log), so library code never needs a None check.

Kept separate from :mod:`repro.telemetry.session` so the instruments
(:mod:`~repro.telemetry.metrics`) can import the accessor without a
package-init cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.session import Telemetry

_active: "Telemetry | None" = None


def get_telemetry() -> "Telemetry":
    """The active telemetry session (a disabled one by default)."""
    global _active
    if _active is None:
        from repro.telemetry.session import Telemetry

        _active = Telemetry(enabled=False)
    return _active


def set_telemetry(telemetry: "Telemetry") -> "Telemetry":
    """Install a session as the process-global active one."""
    global _active
    _active = telemetry
    return telemetry


def reset_telemetry() -> None:
    """Drop back to the disabled default (used by tests and the CLI)."""
    global _active
    _active = None
