"""The CLI's output writer, layered on the standard ``logging`` stack.

Every user-facing line the CLI produces flows through one
:class:`OutputWriter` instead of bare ``print()`` calls (a lint test
enforces that ``print(`` appears nowhere in ``src/repro`` outside
``cli.py``).  Routing through a logger buys composition:

* ``--quiet`` raises the logger level, silencing informational lines
  while errors still reach stderr;
* with telemetry active, every line is mirrored into the structured
  event log (``cli.line`` events), so a quiet run still leaves a full
  transcript in ``events.jsonl``.

Handler configuration happens in exactly one place —
:func:`configure_cli_logging`, called from ``repro.cli.main()`` —
never at import time and never in library code.
"""

from __future__ import annotations

import logging
import sys

from repro.telemetry.context import get_telemetry

#: The logger CLI output rides on.
CLI_LOGGER_NAME = "repro.cli"


class _BelowWarning(logging.Filter):
    """Keep a handler to INFO-and-below (stdout's share of the split)."""

    def filter(self, record: logging.LogRecord) -> bool:
        return record.levelno < logging.WARNING


def configure_cli_logging(quiet: bool = False) -> logging.Logger:
    """(Re)configure the CLI logger's handlers; called from main() only.

    Informational lines go to stdout, warnings and errors to stderr —
    matching what the bare prints did — and ``quiet`` suppresses the
    stdout share entirely.  Reconfiguring is idempotent: old handlers
    are removed first, so repeated ``main()`` invocations (tests) do
    not stack duplicates, and fresh handlers pick up the streams
    currently bound to ``sys.stdout``/``sys.stderr``.
    """
    logger = logging.getLogger(CLI_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    stdout_handler = logging.StreamHandler(sys.stdout)
    stdout_handler.setFormatter(logging.Formatter("%(message)s"))
    stdout_handler.addFilter(_BelowWarning())
    stderr_handler = logging.StreamHandler(sys.stderr)
    stderr_handler.setFormatter(logging.Formatter("%(message)s"))
    stderr_handler.setLevel(logging.WARNING)
    logger.addHandler(stdout_handler)
    logger.addHandler(stderr_handler)
    logger.setLevel(logging.WARNING if quiet else logging.INFO)
    logger.propagate = False
    return logger


class OutputWriter:
    """User-facing output with structured-log mirroring.

    ``writer(...)`` / ``writer.info(...)`` emit an informational line
    (stdout unless ``--quiet``); ``writer.error(...)`` emits to stderr
    at any verbosity.  With telemetry active, both are also recorded
    as ``cli.line`` events.
    """

    def __init__(self, logger_name: str = CLI_LOGGER_NAME):
        self._logger = logging.getLogger(logger_name)

    def __call__(self, message: object = "") -> None:
        self.info(message)

    def _mirror(self, stream: str, text: str) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.events.emit("cli.line", stream=stream, text=text)

    def info(self, message: object = "") -> None:
        text = str(message)
        self._logger.info(text)
        self._mirror("stdout", text)

    def error(self, message: object) -> None:
        text = str(message)
        self._logger.error(text)
        self._mirror("stderr", text)
