"""Span-based tracing with nesting, attributes, and two export formats.

A :class:`Tracer` records *spans* — named, timed intervals with
key/value attributes — and keeps a stack so spans started inside other
spans are parented to them (context propagation within a process; a
worker process can continue a parent's context by constructing its
tracer with ``parent_context=``).  Finished spans export two ways:

* **JSONL** (one span object per line) — greppable, streamable, the
  format ``repro telemetry-report`` reads back;
* **Chrome trace** (``chrome://tracing`` / Perfetto ``traceEvents``
  JSON) — drop the file onto https://ui.perfetto.dev and read the
  pipeline's time structure off the flame chart.

The disabled path is :class:`NullTracer`: ``span()`` hands back one
shared no-op context manager, so an instrumented call site that runs
with telemetry off allocates *nothing* — no span object, no list entry
(the regression test pins this down).
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a trace position.

    ``trace_id`` names the whole run; ``span_id`` the active span (or
    ``None`` at top level).  Ship this to a worker and build its tracer
    with ``Tracer(parent_context=...)`` to keep one logical trace
    across processes.
    """

    trace_id: str
    span_id: str | None


@dataclass
class Span:
    """One finished span.

    Attributes:
        name: what ran ("nulling.run", "device.capture", ...).
        trace_id / span_id / parent_id: identity and nesting.
        start_us: start time in microseconds on the tracer's
            monotonic clock (the Chrome-trace ``ts`` axis).
        duration_us: elapsed microseconds.
        attributes: per-span key/value payload.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_us: float
    duration_us: float
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """The JSONL representation (one line of ``spans.jsonl``)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
            "attributes": self.attributes,
        }


class _ActiveSpan:
    """Context manager for one live span; records itself on exit."""

    __slots__ = ("_tracer", "name", "attributes", "span_id", "parent_id", "_start")

    def __init__(self, tracer: Tracer, name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = tracer._next_span_id()
        self.parent_id: str | None = None
        self._start = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the live span."""
        self.attributes[key] = value

    def __enter__(self) -> _ActiveSpan:
        stack = self._tracer._stack
        self.parent_id = stack[-1].span_id if stack else self._tracer._parent_id
        stack.append(self)
        self._start = self._tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._tracer._now_us()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exits (generator abandoned mid-span)
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer.spans.append(
            Span(
                name=self.name,
                trace_id=self._tracer.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start_us=self._start,
                duration_us=end - self._start,
                attributes=self.attributes,
            )
        )
        return False


class Tracer:
    """Collects spans for one process, parented by an explicit stack.

    Args:
        parent_context: continue an existing trace (worker processes);
            ``None`` starts a fresh trace with a random id.
        clock: seconds-returning monotonic clock (injectable for
            tests); spans store microseconds on this clock.
    """

    enabled = True

    def __init__(
        self,
        parent_context: SpanContext | None = None,
        clock=time.perf_counter,
    ):
        if parent_context is not None:
            self.trace_id = parent_context.trace_id
            self._parent_id = parent_context.span_id
        else:
            self.trace_id = uuid.uuid4().hex[:16]
            self._parent_id = None
        self._clock = clock
        self._origin = clock()
        self._stack: list[_ActiveSpan] = []
        self.spans: list[Span] = []
        self._ids = itertools.count(1)

    def _now_us(self) -> float:
        return (self._clock() - self._origin) * 1e6

    def _next_span_id(self) -> str:
        return f"{next(self._ids):08x}"

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("stage") as sp:``."""
        return _ActiveSpan(self, name, attributes)

    @property
    def current_span_id(self) -> str | None:
        """The innermost live span's id (``None`` outside any span)."""
        return self._stack[-1].span_id if self._stack else None

    def context(self) -> SpanContext:
        """The current position, for handing to a worker process."""
        return SpanContext(trace_id=self.trace_id, span_id=self.current_span_id)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one finished span per line; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_record()) + "\n")
        return path

    def chrome_trace(self) -> dict[str, Any]:
        """The ``traceEvents`` document Perfetto / chrome://tracing load.

        Spans become complete ("ph": "X") events; ``ts``/``dur`` are in
        microseconds per the trace-event format.
        """
        pid = os.getpid()
        events = [
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start_us, 3),
                "dur": round(span.duration_us, 3),
                "pid": pid,
                "tid": 0,
                "args": dict(span.attributes),
            }
            for span in self.spans
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": self.trace_id},
        }

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome-trace JSON document; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace()), encoding="utf-8")
        return path


class _NullSpan:
    """The shared do-nothing span handle of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer-shaped no-op: every ``span()`` is the same shared handle.

    ``spans`` is an immutable empty tuple, so any code path that tried
    to record against the disabled tracer would fail loudly rather
    than silently accumulate.
    """

    enabled = False
    spans: tuple[()] = ()
    trace_id: str | None = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current_span_id(self) -> None:
        return None

    def context(self) -> SpanContext:
        return SpanContext(trace_id="", span_id=None)
