"""Motion models for the humans (and robots) Wi-Vi tracks.

The paper's tracking experiments ask subjects to "enter a room, close
the door, and move at will" (§7.2) — modelled here by
:class:`RandomWaypointTrajectory`.  The gesture experiments use scripted
steps forward and backward (§6.1) — :class:`GestureTrajectory`.

Every trajectory maps time (seconds) to a plan-view
:class:`~repro.environment.geometry.Point` and exposes a velocity; the
ISAR processing only ever sees the phase history these motions induce.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.environment.geometry import Point, distance, interpolate, unit_vector
from repro.environment.walls import Room

#: Average time one gesture (two steps) took the paper's subjects:
#: 2.2 s with a 0.4 s standard deviation (§7.5).
GESTURE_DURATION_MEAN_S = 2.2
GESTURE_DURATION_STD_S = 0.4

#: "Typical step sizes were 2-3 feet" (§7.5), in metres.
STEP_LENGTH_RANGE_M = (0.61, 0.91)


class Trajectory(ABC):
    """A continuous plan-view motion."""

    @abstractmethod
    def position(self, time_s: float) -> Point:
        """Location at ``time_s``."""

    @abstractmethod
    def duration_s(self) -> float:
        """Total duration over which the trajectory is defined."""

    def velocity(self, time_s: float, epsilon_s: float = 1e-3) -> Point:
        """Velocity vector by central finite difference.

        Subclasses with closed-form velocities may override.
        """
        before = self.position(max(time_s - epsilon_s, 0.0))
        after = self.position(min(time_s + epsilon_s, self.duration_s()))
        dt = min(time_s + epsilon_s, self.duration_s()) - max(time_s - epsilon_s, 0.0)
        if dt <= 0:
            return Point(0.0, 0.0)
        return Point((after.x - before.x) / dt, (after.y - before.y) / dt)

    def speed(self, time_s: float) -> float:
        """Scalar speed at ``time_s``."""
        return self.velocity(time_s).norm()

    def sample_positions(self, times_s: np.ndarray) -> np.ndarray:
        """Positions at each time, as an (n, 2) float array."""
        points = np.empty((len(times_s), 2), dtype=float)
        for index, time_s in enumerate(times_s):
            point = self.position(float(time_s))
            points[index, 0] = point.x
            points[index, 1] = point.y
        return points


@dataclass(frozen=True)
class StationaryTrajectory(Trajectory):
    """A subject who does not move (the 0-human / empty-room baseline
    uses no trajectory at all; this models someone standing still)."""

    location: Point
    total_duration_s: float = math.inf

    def position(self, time_s: float) -> Point:
        return self.location

    def duration_s(self) -> float:
        return self.total_duration_s

    def velocity(self, time_s: float, epsilon_s: float = 1e-3) -> Point:
        return Point(0.0, 0.0)


@dataclass(frozen=True)
class LinearTrajectory(Trajectory):
    """Constant-velocity motion from ``start``."""

    start: Point
    velocity_vector: Point
    total_duration_s: float

    def position(self, time_s: float) -> Point:
        clamped = min(max(time_s, 0.0), self.total_duration_s)
        return self.start + self.velocity_vector * clamped

    def duration_s(self) -> float:
        return self.total_duration_s

    def velocity(self, time_s: float, epsilon_s: float = 1e-3) -> Point:
        if 0.0 <= time_s <= self.total_duration_s:
            return self.velocity_vector
        return Point(0.0, 0.0)


class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through waypoints at a constant speed,
    with optional pauses at each waypoint."""

    def __init__(
        self,
        waypoints: Sequence[Point],
        speed_mps: float,
        pause_s: Sequence[float] | None = None,
    ):
        if len(waypoints) < 1:
            raise ValueError("need at least one waypoint")
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        self._waypoints = list(waypoints)
        self._speed = speed_mps
        pauses = list(pause_s) if pause_s is not None else [0.0] * len(waypoints)
        if len(pauses) != len(waypoints):
            raise ValueError("one pause per waypoint required")
        # Build a timeline of (start_time, end_time, from, to) segments,
        # alternating pauses and moves.
        self._segments: list[tuple[float, float, Point, Point]] = []
        clock = 0.0
        for index, waypoint in enumerate(self._waypoints):
            if pauses[index] > 0:
                self._segments.append((clock, clock + pauses[index], waypoint, waypoint))
                clock += pauses[index]
            if index + 1 < len(self._waypoints):
                nxt = self._waypoints[index + 1]
                travel = distance(waypoint, nxt) / self._speed
                if travel > 0:
                    self._segments.append((clock, clock + travel, waypoint, nxt))
                    clock += travel
        self._total = clock if clock > 0 else 0.0

    def position(self, time_s: float) -> Point:
        if not self._segments:
            return self._waypoints[0]
        clamped = min(max(time_s, 0.0), self._total)
        for start, end, origin, target in self._segments:
            if clamped <= end:
                if end == start:
                    return origin
                fraction = (clamped - start) / (end - start)
                return interpolate(origin, target, fraction)
        return self._segments[-1][3]

    def duration_s(self) -> float:
        return self._total


class RandomWaypointTrajectory(WaypointTrajectory):
    """"Move at will" inside a room (§7.2): random waypoints, a
    walking-range speed, and occasional pauses.

    Crowding is modelled by ``mobility_factor``: with more humans in a
    confined room "the freedom of movement decreases" (§7.4), so speed
    and leg length shrink — this is what compresses the spatial-variance
    gap between 2 and 3 humans in Fig. 7-3.
    """

    def __init__(
        self,
        room: Room,
        rng: np.random.Generator,
        duration_s: float,
        speed_mps: float | None = None,
        pause_probability: float = 0.12,
        mobility_factor: float = 1.0,
        margin_m: float = 0.4,
    ):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 < mobility_factor <= 1:
            raise ValueError("mobility factor must be in (0, 1]")
        # Comfortable indoor walking pace (Bohannon 1997, the paper's
        # reference [11], adjusted down for a confined room).
        speed = speed_mps if speed_mps is not None else rng.uniform(0.95, 1.25)
        speed *= mobility_factor
        x_low, x_high = room.x_range
        y_low, y_high = room.y_range
        max_leg = max((x_high - x_low), (y_high - y_low)) * mobility_factor

        waypoints = [
            Point(
                rng.uniform(x_low + margin_m, x_high - margin_m),
                rng.uniform(y_low + margin_m, y_high - margin_m),
            )
        ]
        pauses = [float(rng.uniform(0.0, 1.0)) if rng.random() < pause_probability else 0.0]
        elapsed = pauses[0]
        while elapsed < duration_s:
            previous = waypoints[-1]
            # Draw a new waypoint no farther than the crowd-limited leg.
            for _ in range(32):
                candidate = Point(
                    rng.uniform(x_low + margin_m, x_high - margin_m),
                    rng.uniform(y_low + margin_m, y_high - margin_m),
                )
                if distance(previous, candidate) <= max_leg:
                    break
            waypoints.append(candidate)
            pause = float(rng.uniform(0.2, 1.2)) if rng.random() < pause_probability else 0.0
            pauses.append(pause)
            elapsed += distance(previous, candidate) / speed + pause
        super().__init__(waypoints, speed, pauses)


#: Fraction of a step spent accelerating (and again decelerating).
_STEP_ACCEL_FRACTION = 0.25


def _smooth_step_profile(phase: float) -> float:
    """Displacement fraction through a step, for phase in [0, 1].

    A trapezoidal speed profile: accelerate over the first quarter,
    cruise, decelerate over the last quarter.  Peak speed is only
    1/(1 - f) = 1.33x the average, so a comfortable step stays within
    the 1 m/s the tracker assumes — the bump of apparent angle versus
    time rises from zero, plateaus, and falls, rendering each step as
    the triangle of Fig. 6-1 without aliasing past +/-90 degrees.
    """
    p = min(max(phase, 0.0), 1.0)
    f = _STEP_ACCEL_FRACTION
    scale = 1.0 - f
    if p < f:
        return p * p / (2.0 * f * scale)
    if p <= 1.0 - f:
        return (p - f / 2.0) / scale
    return 1.0 - (1.0 - p) ** 2 / (2.0 * f * scale)


@dataclass(frozen=True)
class _Step:
    """One step of a gesture: signed displacement along the gesture axis."""

    start_s: float
    duration_s: float
    displacement_m: float  # positive = toward the device


@dataclass
class GestureTrajectory(Trajectory):
    """Scripted steps encoding bits (§6.1).

    A '0' bit is a step forward (toward the device) then a step
    backward; a '1' bit is a step backward then a step forward.  The
    gestures are composable: each bit returns the subject to the
    starting position.

    Attributes:
        base_position: where the subject stands.
        bits: the message, e.g. ``[0, 1]``.
        toward_device: unit vector of the "forward" direction.  A
            subject who does not know where the device is steps in its
            general direction, giving a slanted angle (Fig. 6-2c).
        step_length_m: step size; backward steps are naturally smaller
            ("taking a step backward is naturally harder", §7.5), so
            they are scaled by ``backward_shrink``.
        step_duration_s: duration of a single step (half a gesture).
        inter_bit_pause_s: rest between gestures.
    """

    base_position: Point
    bits: Sequence[int]
    toward_device: Point = field(default_factory=lambda: Point(-1.0, 0.0))
    step_length_m: float = 0.75
    step_duration_s: float = GESTURE_DURATION_MEAN_S / 2.0
    inter_bit_pause_s: float = 1.0
    lead_in_s: float = 1.0
    backward_shrink: float = 0.85

    def __post_init__(self) -> None:
        for bit in self.bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
        if abs(self.toward_device.norm() - 1.0) > 1e-6:
            raise ValueError("toward_device must be a unit vector")
        if self.step_length_m <= 0 or self.step_duration_s <= 0:
            raise ValueError("step length and duration must be positive")
        self._steps: list[_Step] = []
        clock = self.lead_in_s
        forward = self.step_length_m
        backward = -self.step_length_m * self.backward_shrink
        for bit in self.bits:
            first, second = (forward, backward) if bit == 0 else (backward, forward)
            self._steps.append(_Step(clock, self.step_duration_s, first))
            clock += self.step_duration_s
            self._steps.append(_Step(clock, self.step_duration_s, second))
            clock += self.step_duration_s
            clock += self.inter_bit_pause_s
        self._total = clock + self.lead_in_s

    @property
    def steps(self) -> tuple[_Step, ...]:
        return tuple(self._steps)

    def bit_intervals(self) -> list[tuple[float, float]]:
        """(start, end) time of each encoded bit, for decoder alignment."""
        intervals = []
        for index in range(0, len(self._steps), 2):
            first = self._steps[index]
            second = self._steps[index + 1]
            intervals.append((first.start_s, second.start_s + second.duration_s))
        return intervals

    def displacement_along_axis(self, time_s: float) -> float:
        """Signed displacement from the base position toward the device."""
        total = 0.0
        for step in self._steps:
            if time_s <= step.start_s:
                break
            phase = (time_s - step.start_s) / step.duration_s
            total += step.displacement_m * _smooth_step_profile(phase)
        return total

    def position(self, time_s: float) -> Point:
        offset = self.displacement_along_axis(time_s)
        return self.base_position + self.toward_device * offset

    def duration_s(self) -> float:
        return self._total
