"""2-D plan-view geometry primitives.

Coordinate convention: the Wi-Vi device sits near the origin and faces
the +x direction; the wall of the imaged room is a plane of constant x;
the room extends beyond it.  Angles off boresight are measured from the
+x axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point (or free vector) in the plan view, in metres."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def norm(self) -> float:
        """Euclidean length when treated as a vector."""
        return math.hypot(self.x, self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with another vector."""
        return self.x * other.x + self.y * other.y

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return (a - b).norm()


def unit_vector(from_point: Point, to_point: Point) -> Point:
    """Unit vector pointing from ``from_point`` toward ``to_point``.

    Raises ``ValueError`` when the points coincide (direction
    undefined).
    """
    delta = to_point - from_point
    length = delta.norm()
    if length == 0.0:
        raise ValueError("direction between coincident points is undefined")
    return Point(delta.x / length, delta.y / length)


def angle_from_x_axis(vector: Point) -> float:
    """Angle of a vector from the +x axis, in radians, in (-pi, pi]."""
    return math.atan2(vector.y, vector.x)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linear interpolation between ``a`` (fraction 0) and ``b`` (fraction 1)."""
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
