"""Walls and rooms.

A :class:`Wall` is the obstruction between the Wi-Vi device and the
imaged room: a plane of constant x with a :class:`~repro.rf.materials.Material`.
A :class:`Room` is the rectangular region behind it in which humans move.

The two conference rooms of the evaluation (§7.2) are provided as
constructors: the Stata rooms are 7 x 4 m and 11 x 7 m with 6" hollow
walls; the Fairchild experiments go through an 8" concrete wall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.environment.geometry import Point
from repro.rf.materials import CONCRETE_8IN, HOLLOW_WALL_6IN, Material


@dataclass(frozen=True)
class Wall:
    """The obstruction plane at ``x = position_x_m``.

    Attributes:
        material: RF properties of the obstruction.
        position_x_m: distance of the wall's near face from the origin
            (the device sits near the origin facing +x).  The paper
            places Wi-Vi one metre from the wall (§7.3).
    """

    material: Material
    position_x_m: float = 1.0

    def __post_init__(self) -> None:
        if self.position_x_m <= 0:
            raise ValueError("the wall must be in front of the device")

    @property
    def far_face_x_m(self) -> float:
        """x coordinate of the wall face inside the room."""
        return self.position_x_m + self.material.thickness_m

    def blocks(self, point: Point) -> bool:
        """Whether ``point`` lies beyond the wall (inside the room side)."""
        return point.x > self.position_x_m


@dataclass(frozen=True)
class Room:
    """A rectangular room behind the wall.

    The room spans ``[wall.far_face_x_m, wall.far_face_x_m + depth_m]``
    in x and ``[-width_m / 2, width_m / 2]`` in y.
    """

    wall: Wall
    depth_m: float
    width_m: float

    def __post_init__(self) -> None:
        if self.depth_m <= 0 or self.width_m <= 0:
            raise ValueError("room dimensions must be positive")

    @property
    def x_range(self) -> tuple[float, float]:
        near = self.wall.far_face_x_m
        return (near, near + self.depth_m)

    @property
    def y_range(self) -> tuple[float, float]:
        half = self.width_m / 2.0
        return (-half, half)

    @property
    def area_m2(self) -> float:
        return self.depth_m * self.width_m

    def contains(self, point: Point, margin_m: float = 0.0) -> bool:
        """Whether ``point`` is inside the room, ``margin_m`` from walls."""
        x_low, x_high = self.x_range
        y_low, y_high = self.y_range
        return (
            x_low + margin_m <= point.x <= x_high - margin_m
            and y_low + margin_m <= point.y <= y_high - margin_m
        )

    def clamp(self, point: Point, margin_m: float = 0.3) -> Point:
        """Project ``point`` back inside the room with a safety margin."""
        x_low, x_high = self.x_range
        y_low, y_high = self.y_range
        return Point(
            min(max(point.x, x_low + margin_m), x_high - margin_m),
            min(max(point.y, y_low + margin_m), y_high - margin_m),
        )

    def center(self) -> Point:
        x_low, x_high = self.x_range
        return Point((x_low + x_high) / 2.0, 0.0)


def stata_conference_room_small(device_standoff_m: float = 1.0) -> Room:
    """The 7 x 4 m Stata conference room (§7.2), 6" hollow wall."""
    return Room(
        wall=Wall(HOLLOW_WALL_6IN, position_x_m=device_standoff_m),
        depth_m=7.0,
        width_m=4.0,
    )


def stata_conference_room_large(device_standoff_m: float = 1.0) -> Room:
    """The 11 x 7 m Stata conference room (§7.2), 6" hollow wall."""
    return Room(
        wall=Wall(HOLLOW_WALL_6IN, position_x_m=device_standoff_m),
        depth_m=11.0,
        width_m=7.0,
    )


def fairchild_room(device_standoff_m: float = 1.0) -> Room:
    """A room behind the Fairchild building's 8" concrete wall (§7.2)."""
    return Room(
        wall=Wall(CONCRETE_8IN, position_x_m=device_standoff_m),
        depth_m=8.0,
        width_m=5.0,
    )
