"""Scenario presets: the use cases the paper's introduction motivates.

§1: "Law enforcement personnel can use the device to avoid walking into
an ambush ... Emergency responders can use it to see through rubble and
collapsed structures.  Ordinary users can leverage the device for
gaming, intrusion detection, privacy-enhanced monitoring of children
and elderly, or personal security."

Each preset returns a fully-composed :class:`~repro.environment.scene.Scene`
(and the ground truth needed to score it), so examples and tests can
exercise application-level stories without scene-building boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.environment.human import BodyModel, Human
from repro.environment.objects import conference_room_furniture, outside_clutter
from repro.environment.scene import Scene
from repro.environment.trajectories import (
    GestureTrajectory,
    RandomWaypointTrajectory,
    StationaryTrajectory,
    WaypointTrajectory,
)
from repro.environment.walls import Room, Wall
from repro.rf.materials import (
    CONCRETE_8IN,
    HOLLOW_WALL_6IN,
    SOLID_WOOD_DOOR,
    material_by_name,
)


@dataclass
class Scenario:
    """A preset scene plus what a detector should conclude about it."""

    name: str
    scene: Scene
    expected_occupants: int
    duration_s: float
    notes: str = ""


def standoff(rng: np.random.Generator, num_suspects: int = 2) -> Scenario:
    """Law-enforcement standoff: suspects pacing behind a concrete wall.

    The §1 motivating case — know how many people are inside, and
    where they are moving, before entering.
    """
    if num_suspects < 0:
        raise ValueError("suspect count must be non-negative")
    room = Room(Wall(CONCRETE_8IN, position_x_m=1.0), depth_m=6.0, width_m=5.0)
    duration = 20.0
    suspects = [
        Human(
            RandomWaypointTrajectory(room, rng, duration),
            BodyModel.sample(rng),
            gait_phase=float(rng.uniform(0, 1)),
            name=f"suspect-{index}",
        )
        for index in range(num_suspects)
    ]
    scene = Scene(
        room=room,
        humans=suspects,
        static_reflectors=conference_room_furniture(room, rng, 6)
        + outside_clutter(rng, 3),
    )
    return Scenario(
        name="standoff",
        scene=scene,
        expected_occupants=num_suspects,
        duration_s=duration,
        notes="8\" concrete wall; count before entry",
    )


def child_monitoring(rng: np.random.Generator, child_awake: bool = True) -> Scenario:
    """Privacy-preserving monitoring through a closed wooden door (§1).

    No camera: the device only learns whether the child is up and
    moving.  ``child_awake=False`` models a sleeping child (still) —
    nulling leaves nothing but the DC.
    """
    room = Room(Wall(SOLID_WOOD_DOOR, position_x_m=1.0), depth_m=4.0, width_m=3.5)
    duration = 15.0
    child_body = BodyModel(
        torso_rcs_m2=0.3, limb_rcs_m2=0.02, limb_swing_m=0.12, height_factor=0.85
    )
    if child_awake:
        trajectory = RandomWaypointTrajectory(room, rng, duration, speed_mps=0.8)
        occupants = 1
    else:
        trajectory = StationaryTrajectory(room.center())
        occupants = 0  # no *moving* humans: what Wi-Vi counts (§7.4)
    scene = Scene(
        room=room,
        humans=[Human(trajectory, child_body, name="child")],
        static_reflectors=conference_room_furniture(room, rng, 4),
    )
    return Scenario(
        name="child-monitoring",
        scene=scene,
        expected_occupants=occupants,
        duration_s=duration,
        notes="solid wood door; motion-only, no imaging of a still child",
    )


def trapped_survivor(rng: np.random.Generator) -> Scenario:
    """Emergency response: a survivor moving weakly behind dense rubble.

    Rubble is modelled as a thick high-attenuation obstruction with
    heavy interior clutter — the hardest §1 case; expect a dim but
    present signature.
    """
    rubble = material_by_name('18" concrete wall')
    room = Room(Wall(rubble, position_x_m=1.0), depth_m=4.0, width_m=4.0)
    duration = 20.0
    # Weak, repetitive motion: waving/rocking in place.
    survivor = Human(
        WaypointTrajectory(
            [Point(2.5, 0.5), Point(3.1, 0.3), Point(2.5, 0.5)] * 4, speed_mps=0.5
        ),
        BodyModel(torso_rcs_m2=0.5, limb_count=2, limb_rcs_m2=0.03),
        name="survivor",
    )
    scene = Scene(
        room=room,
        humans=[survivor],
        static_reflectors=conference_room_furniture(room, rng, 10),
        interior_absorption_db_per_m=1.0,  # debris-dense interior
    )
    return Scenario(
        name="trapped-survivor",
        scene=scene,
        expected_occupants=1,
        duration_s=duration,
        notes="18\" concrete + dense debris; marginal detection expected",
    )


def covert_messenger(
    rng: np.random.Generator, bits: list[int] | None = None
) -> tuple[Scenario, GestureTrajectory]:
    """A device-less team member gestures a message across a wall (§1.1:
    "even if their communication devices are confiscated")."""
    room = Room(Wall(HOLLOW_WALL_6IN, position_x_m=1.0), depth_m=7.0, width_m=4.0)
    message = bits if bits is not None else [1, 0, 1, 1]
    trajectory = GestureTrajectory(
        base_position=Point(room.wall.far_face_x_m + 3.0, 0.3), bits=message
    )
    scene = Scene(
        room=room,
        humans=[Human(trajectory, BodyModel(limb_count=0), name="messenger")],
        static_reflectors=conference_room_furniture(room, rng, 5),
    )
    scenario = Scenario(
        name="covert-messenger",
        scene=scene,
        expected_occupants=1,
        duration_s=trajectory.duration_s(),
        notes="gesture channel through a hollow wall",
    )
    return scenario, trajectory


ALL_SCENARIOS = ("standoff", "child-monitoring", "trapped-survivor", "covert-messenger")
