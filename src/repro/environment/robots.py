"""Robot motion models.

§5 footnote 1: "our system is general, and can capture other moving
bodies.  For example, we have successfully experimented with tracking
an iRobot Create robot."  An iRobot Create is a differential-drive
disc: it moves in straight segments and circular arcs at a constant,
much steadier speed than a human, and it has a small, stable radar
cross-section (no limbs, no gait) — which makes its tracks *cleaner*
than human tracks, a property the tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.environment.human import BodyModel, Human
from repro.environment.trajectories import Trajectory

#: The iRobot Create's cruising speed (m/s).
CREATE_SPEED_MPS = 0.5

#: A flat plastic disc reflects weakly compared to a human.
CREATE_RCS_M2 = 0.08


@dataclass(frozen=True)
class _Segment:
    """One drive primitive: straight line or arc."""

    start_s: float
    duration_s: float
    start: Point
    heading_rad: float
    speed_mps: float
    turn_rate_rad_s: float  # 0 for straight segments

    def position(self, elapsed_s: float) -> Point:
        t = min(max(elapsed_s, 0.0), self.duration_s)
        if abs(self.turn_rate_rad_s) < 1e-9:
            return Point(
                self.start.x + self.speed_mps * t * math.cos(self.heading_rad),
                self.start.y + self.speed_mps * t * math.sin(self.heading_rad),
            )
        radius = self.speed_mps / self.turn_rate_rad_s
        delta = self.turn_rate_rad_s * t
        # Circular arc about the instantaneous centre of rotation.
        cx = self.start.x - radius * math.sin(self.heading_rad)
        cy = self.start.y + radius * math.cos(self.heading_rad)
        return Point(
            cx + radius * math.sin(self.heading_rad + delta),
            cy - radius * math.cos(self.heading_rad + delta),
        )

    def end_heading(self) -> float:
        return self.heading_rad + self.turn_rate_rad_s * self.duration_s


class RobotTrajectory(Trajectory):
    """Differential-drive motion built from (duration, turn-rate) legs.

    Args:
        start: initial position.
        heading_rad: initial heading (0 = +x, toward the wall normal).
        legs: sequence of ``(duration_s, turn_rate_rad_s)`` commands
            executed at constant ``speed_mps``.
        speed_mps: drive speed (Create default 0.5 m/s).
    """

    def __init__(
        self,
        start: Point,
        heading_rad: float,
        legs: list[tuple[float, float]],
        speed_mps: float = CREATE_SPEED_MPS,
    ):
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        if not legs:
            raise ValueError("need at least one drive leg")
        self._segments: list[_Segment] = []
        clock = 0.0
        position = start
        heading = heading_rad
        for duration, turn_rate in legs:
            if duration <= 0:
                raise ValueError("leg durations must be positive")
            segment = _Segment(clock, duration, position, heading, speed_mps, turn_rate)
            self._segments.append(segment)
            position = segment.position(duration)
            heading = segment.end_heading()
            clock += duration
        self._total = clock

    def position(self, time_s: float) -> Point:
        clamped = min(max(time_s, 0.0), self._total)
        for segment in self._segments:
            if clamped <= segment.start_s + segment.duration_s:
                return segment.position(clamped - segment.start_s)
        last = self._segments[-1]
        return last.position(last.duration_s)

    def duration_s(self) -> float:
        return self._total


def create_robot(trajectory: RobotTrajectory, name: str = "irobot-create") -> Human:
    """Wrap a robot trajectory in the scatterer container.

    The robot is a single stable scatterer: ``limb_count=0`` and a
    small RCS.  (The container class is named for the primary subjects;
    the paper makes the same simplification in reverse.)
    """
    body = BodyModel(torso_rcs_m2=CREATE_RCS_M2, limb_count=0, limb_rcs_m2=0.0)
    return Human(trajectory=trajectory, body=body, name=name)


def patrol_loop(
    room_center: Point, radius_m: float = 1.5, laps: float = 1.0
) -> RobotTrajectory:
    """A circular patrol: the Create's 'dock-seeking spiral' flattened
    into a loop of the given radius."""
    if radius_m <= 0 or laps <= 0:
        raise ValueError("radius and laps must be positive")
    turn_rate = CREATE_SPEED_MPS / radius_m
    duration = laps * 2.0 * math.pi / turn_rate
    start = Point(room_center.x, room_center.y - radius_m)
    return RobotTrajectory(start, 0.0, [(duration, turn_rate)])
