"""Scene composition: device geometry, wall, clutter, and humans.

A :class:`Scene` turns geometry into physics: for any time instant it
produces the set of propagation :class:`~repro.rf.channel.Path` objects
from each transmit antenna to the receive antenna — the direct path,
the wall flash, static clutter returns, and the moving-human returns
the tracking pipeline is after.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.constants import WAVELENGTH_M
from repro.environment.geometry import Point, angle_from_x_axis, distance
from repro.environment.human import Human
from repro.environment.objects import StaticReflector
from repro.environment.walls import Room
from repro.rf.antennas import LP0965_LIKE, DirectionalAntenna
from repro.rf.channel import ChannelModel, Path, PathKind
from repro.rf.propagation import free_space_amplitude, radar_amplitude


@dataclass(frozen=True)
class DeviceGeometry:
    """Antenna placement of the Wi-Vi device.

    Two transmit antennas and one receive antenna (§3.1), all
    directional, facing +x (toward the wall).  The receive antenna sits
    between the transmitters.
    """

    tx1: Point = field(default_factory=lambda: Point(0.0, -0.35))
    tx2: Point = field(default_factory=lambda: Point(0.0, 0.35))
    rx: Point = field(default_factory=lambda: Point(0.0, 0.0))
    antenna: DirectionalAntenna = LP0965_LIKE

    @property
    def tx_positions(self) -> tuple[Point, Point]:
        return (self.tx1, self.tx2)

    def boresight_angle_to(self, antenna_position: Point, target: Point) -> float:
        """Angle (radians) of ``target`` off the +x boresight as seen
        from ``antenna_position``."""
        return angle_from_x_axis(target - antenna_position)


class Scene:
    """Everything the device can sense.

    Args:
        room: the imaged room (wall + extent).  ``None`` means free
            space (the unobstructed baseline of Fig. 7-6).
        humans: moving subjects inside the room.
        static_reflectors: furniture and other stationary clutter.
        device: antenna geometry.
        wavelength_m: carrier wavelength.
    """

    def __init__(
        self,
        room: Room | None = None,
        humans: Sequence[Human] = (),
        static_reflectors: Sequence[StaticReflector] = (),
        device: DeviceGeometry | None = None,
        wavelength_m: float = WAVELENGTH_M,
        interior_absorption_db_per_m: float = 0.3,
        multipath: bool = False,
        interior_wall_reflectivity_db: float = -9.0,
    ):
        if interior_absorption_db_per_m < 0:
            raise ValueError("absorption must be non-negative")
        if interior_wall_reflectivity_db > 0:
            raise ValueError("reflectivity must be <= 0 dB")
        self.room = room
        self.humans = list(humans)
        self.static_reflectors = list(static_reflectors)
        self.device = device if device is not None else DeviceGeometry()
        self.wavelength_m = wavelength_m
        #: Whether moving-scatterer returns also bounce off the room's
        #: interior walls on the way back (one extra reflection).  §7.3
        #: argues — and the tests verify — that these indirect paths
        #: are too weak to confuse the tracker: "the direct path from a
        #: moving human to Wi-Vi is much stronger than indirect paths
        #: which bounce off the internal walls of the room".
        self.multipath = multipath
        self.interior_wall_reflectivity_db = interior_wall_reflectivity_db
        #: Excess attenuation accumulated per metre of depth inside the
        #: furnished room (one-way, dB/m).  Free space does not absorb
        #: at 2.4 GHz, but cluttered interiors scatter energy out of
        #: the direct path; obstructed-indoor models put the effective
        #: path-loss exponent above 2, which this term captures.
        self.interior_absorption_db_per_m = interior_absorption_db_per_m

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------

    def _antenna_pair_gain(self, tx: Point, via: Point, rx: Point) -> float:
        """Amplitude gain of both antennas for a path tx -> via -> rx."""
        tx_gain = self.device.antenna.amplitude_gain(
            self.device.boresight_angle_to(tx, via)
        )
        rx_gain = self.device.antenna.amplitude_gain(
            self.device.boresight_angle_to(rx, via)
        )
        return tx_gain * rx_gain

    def _wall_crossings_amplitude(self, target: Point) -> float:
        """Amplitude factor for the round trip through the wall toward
        ``target`` (1.0 when there is no wall or the target is on the
        device side)."""
        if self.room is None:
            return 1.0
        if not self.room.wall.blocks(target):
            return 1.0
        depth_m = max(target.x - self.room.wall.far_face_x_m, 0.0)
        absorption_db = 2.0 * self.interior_absorption_db_per_m * depth_m
        return self.room.wall.material.round_trip_amplitude * 10.0 ** (
            -absorption_db / 20.0
        )

    def direct_path(self, tx: Point) -> Path:
        """The TX -> RX leakage path.

        Both antennas face the wall, so this path sees the back/side
        lobes of both patterns — "significantly attenuated because
        Wi-Vi uses directional transmit and receive antennas focused
        towards the wall" (§4.1).
        """
        rx = self.device.rx
        separation = max(distance(tx, rx), 0.05)
        tx_gain = self.device.antenna.amplitude_gain(
            self.device.boresight_angle_to(tx, rx)
        )
        rx_gain = self.device.antenna.amplitude_gain(
            self.device.boresight_angle_to(rx, tx)
        )
        amplitude = tx_gain * rx_gain * free_space_amplitude(separation, self.wavelength_m)
        return Path(amplitude, separation, PathKind.DIRECT)

    def flash_path(self, tx: Point) -> Path | None:
        """The specular wall reflection (the flash, §4).

        Image-source model: reflect the transmitter across the wall
        plane; the path unfolds to a straight line of length
        ``|image - rx|``, attenuated like free space over that length
        and scaled by the wall's reflection coefficient.
        """
        if self.room is None:
            return None
        wall_x = self.room.wall.position_x_m
        image = Point(2.0 * wall_x - tx.x, tx.y)
        rx = self.device.rx
        total = distance(image, rx)
        # The bounce point on the wall, for antenna pattern evaluation.
        fraction = (wall_x - rx.x) / (image.x - rx.x)
        bounce = Point(wall_x, rx.y + fraction * (image.y - rx.y))
        amplitude = (
            self._antenna_pair_gain(tx, bounce, rx)
            * self.room.wall.material.reflection_amplitude
            * free_space_amplitude(total, self.wavelength_m)
        )
        return Path(amplitude, total, PathKind.FLASH)

    def scatterer_path(
        self, tx: Point, position: Point, rcs_m2: float, kind: PathKind
    ) -> Path:
        """A bistatic bounce off a point scatterer at ``position``."""
        rx = self.device.rx
        d_tx = max(distance(tx, position), 0.1)
        d_rx = max(distance(rx, position), 0.1)
        amplitude = (
            self._antenna_pair_gain(tx, position, rx)
            * radar_amplitude(d_tx, d_rx, rcs_m2, self.wavelength_m)
            * self._wall_crossings_amplitude(position)
        )
        return Path(amplitude, d_tx + d_rx, kind)

    def _interior_bounce_paths(
        self, tx: Point, position: Point, rcs_m2: float
    ) -> list[Path]:
        """Indirect moving paths: tx -> scatterer -> interior wall -> rx.

        Image-source construction: the return leg reflects once off a
        side or back wall, modelled by mirroring the *scatterer* across
        the wall plane for the return leg and applying the interior
        reflection coefficient.
        """
        if self.room is None:
            return []
        rx = self.device.rx
        y_low, y_high = self.room.y_range
        _, x_back = self.room.x_range
        mirrors = [
            Point(position.x, 2.0 * y_low - position.y),   # left wall
            Point(position.x, 2.0 * y_high - position.y),  # right wall
            Point(2.0 * x_back - position.x, position.y),  # back wall
        ]
        reflection_amplitude = 10.0 ** (self.interior_wall_reflectivity_db / 20.0)
        paths = []
        for image in mirrors:
            d_tx = max(distance(tx, position), 0.1)
            d_return = max(distance(image, rx), 0.1)
            amplitude = (
                self._antenna_pair_gain(tx, position, rx)
                * radar_amplitude(d_tx, d_return, rcs_m2, self.wavelength_m)
                * self._wall_crossings_amplitude(position)
                * reflection_amplitude
            )
            paths.append(Path(amplitude, d_tx + d_return, PathKind.MOVING))
        return paths

    def paths(self, tx: Point, time_s: float) -> list[Path]:
        """All propagation paths from ``tx`` to the receiver at ``time_s``."""
        result = [self.direct_path(tx)]
        flash = self.flash_path(tx)
        if flash is not None:
            result.append(flash)
        for reflector in self.static_reflectors:
            result.append(
                self.scatterer_path(
                    tx, reflector.position, reflector.rcs_m2, PathKind.STATIC
                )
            )
        for human in self.humans:
            for scatterer in human.scatterers(time_s):
                result.append(
                    self.scatterer_path(
                        tx, scatterer.position, scatterer.rcs_m2, PathKind.MOVING
                    )
                )
                if self.multipath:
                    result.extend(
                        self._interior_bounce_paths(
                            tx, scatterer.position, scatterer.rcs_m2
                        )
                    )
        return result

    def channel(self, tx: Point, time_s: float = 0.0) -> ChannelModel:
        """The full channel from ``tx`` to the receiver at ``time_s``."""
        return ChannelModel(self.paths(tx, time_s), self.wavelength_m)

    def channels(self, time_s: float = 0.0) -> tuple[ChannelModel, ChannelModel]:
        """Channels from both transmit antennas at ``time_s``."""
        return (
            self.channel(self.device.tx1, time_s),
            self.channel(self.device.tx2, time_s),
        )

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def moving_paths(self, tx: Point, time_s: float) -> list[Path]:
        """Only the moving paths (direct bounces plus, when enabled,
        interior-wall multipath)."""
        result = []
        for human in self.humans:
            for scatterer in human.scatterers(time_s):
                result.append(
                    self.scatterer_path(
                        tx, scatterer.position, scatterer.rcs_m2, PathKind.MOVING
                    )
                )
                if self.multipath:
                    result.extend(
                        self._interior_bounce_paths(
                            tx, scatterer.position, scatterer.rcs_m2
                        )
                    )
        return result

    def moving_gain(self, tx: Point, time_s: float) -> complex:
        """Coherent narrowband gain of only the moving paths."""
        total = 0j
        for path in self.moving_paths(tx, time_s):
            total += path.gain(self.wavelength_m)
        return total

    def static_gain(self, tx: Point) -> complex:
        """Coherent narrowband gain of the static paths (flash + clutter
        + direct)."""
        total = self.direct_path(tx).gain(self.wavelength_m)
        flash = self.flash_path(tx)
        if flash is not None:
            total += flash.gain(self.wavelength_m)
        for reflector in self.static_reflectors:
            total += self.scatterer_path(
                tx, reflector.position, reflector.rcs_m2, PathKind.STATIC
            ).gain(self.wavelength_m)
        return total

    def flash_to_target_ratio_db(self, time_s: float = 0.0) -> float:
        """How much stronger the static flash is than the moving-target
        return, in dB — the crux of the flash-effect problem (§4)."""
        tx = self.device.tx1
        static_power = abs(self.static_gain(tx)) ** 2
        moving_power = abs(self.moving_gain(tx, time_s)) ** 2
        if moving_power == 0:
            raise ValueError("no moving targets in the scene")
        return 10.0 * math.log10(static_power / moving_power)
