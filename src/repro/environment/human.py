"""Human body model: a cluster of moving scatterers.

§7.3 observes that "a human is not just one object because of different
body parts moving in a loosely coupled way", which makes the tracked
lines fuzzy and the returns from multiple humans correlated.  We model
a human as a dominant torso scatterer plus limb scatterers that swing
at the gait frequency while the person walks.

A standing adult has a radar cross-section on the order of 0.5-1 m^2
in the low-GHz range; the torso carries most of it.  Limb RCS values
are kept small relative to the torso — limbs are thin and partially
shadowed by the body — so the torso's line dominates the spectrogram
and the limbs contribute the fuzz the paper describes (§7.3), rather
than mirrored micro-Doppler ghosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.environment.geometry import Point
from repro.environment.trajectories import Trajectory

#: Gait cycle length: roughly one full limb cycle per 1.1 m travelled.
_STRIDE_LENGTH_M = 1.1


@dataclass(frozen=True)
class Scatterer:
    """One reflecting body part at a moment in time."""

    position: Point
    rcs_m2: float


@dataclass(frozen=True)
class BodyModel:
    """Scatterer layout of a body.

    Attributes:
        torso_rcs_m2: RCS of the torso (dominant return).
        limb_rcs_m2: RCS of each limb scatterer.
        limb_count: number of limb scatterers (arms + legs).
        limb_swing_m: peak limb displacement from the body centre while
            walking at 1 m/s; scales with speed.
        height_factor: multiplies all RCS values, capturing the
            different "heights and builds" of the 8 subjects (§7.2).
    """

    torso_rcs_m2: float = 0.55
    limb_rcs_m2: float = 0.035
    limb_count: int = 4
    limb_swing_m: float = 0.15
    height_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.torso_rcs_m2 <= 0 or self.limb_rcs_m2 < 0:
            raise ValueError("RCS values must be positive")
        if self.limb_count < 0:
            raise ValueError("limb count must be non-negative")
        if not 0.5 <= self.height_factor <= 2.0:
            raise ValueError("height factor outside plausible range [0.5, 2]")

    @property
    def total_rcs_m2(self) -> float:
        return self.height_factor * (self.torso_rcs_m2 + self.limb_count * self.limb_rcs_m2)

    @staticmethod
    def sample(rng: np.random.Generator) -> "BodyModel":
        """Draw a subject of random build, as in the 8-subject pool."""
        return BodyModel(
            torso_rcs_m2=rng.uniform(0.45, 0.7),
            limb_rcs_m2=rng.uniform(0.02, 0.05),
            limb_swing_m=rng.uniform(0.1, 0.2),
            height_factor=rng.uniform(0.85, 1.15),
        )


@dataclass
class Human:
    """A moving person: a trajectory plus a body of scatterers.

    ``gait_phase`` randomises where in the stride the subject starts so
    repeated trials decorrelate.
    """

    trajectory: Trajectory
    body: BodyModel = field(default_factory=BodyModel)
    gait_phase: float = 0.0
    name: str = "subject"

    def scatterers(self, time_s: float) -> list[Scatterer]:
        """Scatterer snapshot at ``time_s``.

        The torso sits at the trajectory position.  Limbs are displaced
        along and across the direction of motion, oscillating at the
        gait frequency; their swing amplitude scales with instantaneous
        speed, so a stationary subject collapses to a nearly static
        cluster (which nulling would have removed had it been static
        from the start).
        """
        center = self.trajectory.position(time_s)
        velocity = self.trajectory.velocity(time_s)
        speed = velocity.norm()
        result = [Scatterer(center, self.body.torso_rcs_m2 * self.body.height_factor)]
        if self.body.limb_count == 0:
            return result

        if speed > 1e-6:
            heading = Point(velocity.x / speed, velocity.y / speed)
        else:
            heading = Point(1.0, 0.0)
        across = Point(-heading.y, heading.x)
        gait_rate_hz = speed / _STRIDE_LENGTH_M
        phase = 2.0 * math.pi * (gait_rate_hz * time_s + self.gait_phase)
        swing = self.body.limb_swing_m * min(speed, 1.5)

        for limb_index in range(self.body.limb_count):
            # Alternate limbs half a cycle apart; arms and legs offset
            # across the body.
            limb_phase = phase + math.pi * (limb_index % 2)
            along = swing * math.sin(limb_phase)
            side = 0.18 * (1 if limb_index < 2 else -1)
            position = center + heading * along + across * side
            result.append(
                Scatterer(position, self.body.limb_rcs_m2 * self.body.height_factor)
            )
        return result

    def position(self, time_s: float) -> Point:
        """Torso position at ``time_s``."""
        return self.trajectory.position(time_s)
