"""Static clutter: furniture and other stationary reflectors.

The paper emphasises that its experiments run in "standard office
buildings with the imaged humans inside closed fully-furnished rooms"
(§1.2) — static clutter everywhere, inside and outside the room.
Nulling removes all of it (§4.1); these reflectors exist so that the
simulation actually has something for nulling to remove.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.environment.geometry import Point
from repro.environment.walls import Room


@dataclass(frozen=True)
class StaticReflector:
    """A stationary point scatterer (table edge, chair, radiator, ...).

    Attributes:
        position: plan-view location.
        rcs_m2: radar cross-section in square metres.
        name: label for reporting.
    """

    position: Point
    rcs_m2: float
    name: str = "reflector"

    def __post_init__(self) -> None:
        if self.rcs_m2 <= 0:
            raise ValueError("radar cross-section must be positive")


def conference_room_furniture(
    room: Room, rng: np.random.Generator, count: int = 8
) -> list[StaticReflector]:
    """Scatter typical conference-room furniture inside ``room``.

    Returns ``count`` reflectors with RCS between 0.05 and 0.8 m^2 at
    uniformly random positions (a central table cluster plus wall-side
    chairs), drawn from ``rng`` for reproducibility.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    x_low, x_high = room.x_range
    y_low, y_high = room.y_range
    reflectors = []
    for index in range(count):
        position = Point(
            rng.uniform(x_low + 0.3, x_high - 0.3),
            rng.uniform(y_low + 0.3, y_high - 0.3),
        )
        rcs = rng.uniform(0.05, 0.8)
        reflectors.append(StaticReflector(position, rcs, name=f"furniture-{index}"))
    return reflectors


def outside_clutter(rng: np.random.Generator, count: int = 4) -> list[StaticReflector]:
    """Static reflectors on the device's side of the wall.

    The paper notes nulling also removes "the table on which the radio
    is mounted, the floor, the radio case itself" (§4.1).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    reflectors = []
    for index in range(count):
        position = Point(rng.uniform(0.2, 0.9), rng.uniform(-1.5, 1.5))
        rcs = rng.uniform(0.02, 0.3)
        reflectors.append(StaticReflector(position, rcs, name=f"near-clutter-{index}"))
    return reflectors
