"""Environment substrate: rooms, walls, clutter, and moving humans.

Everything Wi-Vi senses lives here.  The geometry is 2-D (plan view),
which is the view the paper's A'[theta, n] spectrograms take: the
device resolves azimuth angles, not elevation.
"""

from repro.environment.geometry import Point, distance, unit_vector
from repro.environment.human import BodyModel, Human, Scatterer
from repro.environment.objects import (
    StaticReflector,
    conference_room_furniture,
)
from repro.environment.scene import Scene
from repro.environment.trajectories import (
    GestureTrajectory,
    LinearTrajectory,
    RandomWaypointTrajectory,
    StationaryTrajectory,
    Trajectory,
    WaypointTrajectory,
)
from repro.environment.walls import Room, Wall

__all__ = [
    "BodyModel",
    "GestureTrajectory",
    "Human",
    "LinearTrajectory",
    "Point",
    "RandomWaypointTrajectory",
    "Room",
    "Scatterer",
    "Scene",
    "StaticReflector",
    "StationaryTrajectory",
    "Trajectory",
    "Wall",
    "WaypointTrajectory",
    "conference_room_furniture",
    "distance",
    "unit_vector",
]
