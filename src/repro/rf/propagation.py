"""Propagation primitives: path gains and phases at 2.4 GHz.

Three kinds of paths matter to Wi-Vi:

* the **direct** path between its transmit and receive antennas
  (free-space / Friis),
* the **flash**: a specular reflection off the wall, modelled as an
  image source scaled by the wall's reflection coefficient (§4), and
* **scatterer** paths bouncing off humans or furniture, which follow
  the bistatic radar equation.

Phase convention
----------------
We use the ``exp(+j * 2*pi * d / lambda)`` baseband convention for a
path of length ``d``.  A target moving *toward* the device shortens
``d``, so the channel phase rotates as ``exp(-j * 4*pi * v_r * t /
lambda)`` for radial speed ``v_r``; the emulated-array steering vector
written in Eq. 5.1 of the thesis,
``exp(+j * 2*pi/lambda * i * delta * sin(theta))``, then cancels that
rotation exactly at the true angle — a *positive* theta for motion
toward Wi-Vi, matching the paper's sign semantics (§5.1).
"""

from __future__ import annotations

import math

from repro.constants import WAVELENGTH_M, db_to_linear

_FOUR_PI = 4.0 * math.pi


def free_space_path_loss_db(distance_m: float, wavelength_m: float = WAVELENGTH_M) -> float:
    """Friis free-space path loss in dB for a separation ``distance_m``.

    Loss is relative to isotropic antennas; antenna gains are applied
    separately by the antenna models.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    return 20.0 * math.log10(_FOUR_PI * distance_m / wavelength_m)


def free_space_amplitude(distance_m: float, wavelength_m: float = WAVELENGTH_M) -> float:
    """Linear field-amplitude gain of a free-space path (lambda / 4*pi*d)."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    return wavelength_m / (_FOUR_PI * distance_m)


def radar_amplitude(
    distance_tx_m: float,
    distance_rx_m: float,
    rcs_m2: float,
    wavelength_m: float = WAVELENGTH_M,
) -> float:
    """Field-amplitude gain of a bistatic scatterer path.

    Implements the amplitude form of the radar equation: received power
    is ``Pt * Gt * Gr * lambda^2 * sigma / ((4 pi)^3 * d_tx^2 * d_rx^2)``
    (antenna gains applied elsewhere); this returns the square root of
    the gain portion.

    Args:
        distance_tx_m: transmitter-to-scatterer distance.
        distance_rx_m: scatterer-to-receiver distance.
        rcs_m2: radar cross-section of the scatterer in square metres.
            A standing adult is on the order of 0.5-1 m^2 at 2.4 GHz.
    """
    if distance_tx_m <= 0 or distance_rx_m <= 0:
        raise ValueError("distances must be positive")
    if rcs_m2 < 0:
        raise ValueError("radar cross-section must be non-negative")
    power_gain = (wavelength_m**2 * rcs_m2) / (
        _FOUR_PI**3 * distance_tx_m**2 * distance_rx_m**2
    )
    return math.sqrt(power_gain)


def specular_reflection_amplitude(
    distance_tx_m: float,
    distance_rx_m: float,
    reflection_amplitude: float,
    wavelength_m: float = WAVELENGTH_M,
) -> float:
    """Field-amplitude gain of a specular (mirror) reflection.

    A large flat reflector such as a wall behaves as an image source:
    the path attenuates like free space over the *total* unfolded
    distance, scaled by the reflection coefficient.  This is what makes
    the flash three-to-five orders of magnitude stronger than the
    radar-equation returns from objects behind the wall (§1).
    """
    if not 0.0 <= reflection_amplitude <= 1.0:
        raise ValueError("reflection amplitude must be in [0, 1]")
    return reflection_amplitude * free_space_amplitude(
        distance_tx_m + distance_rx_m, wavelength_m
    )


def path_phase(total_distance_m: float, wavelength_m: float = WAVELENGTH_M) -> float:
    """Baseband phase (radians) accumulated over ``total_distance_m``.

    Positive-exponent convention; see the module docstring.
    """
    return 2.0 * math.pi * total_distance_m / wavelength_m


def path_gain(
    amplitude: float, total_distance_m: float, wavelength_m: float = WAVELENGTH_M
) -> complex:
    """Complex field gain of a path: amplitude with propagation phase."""
    if amplitude < 0:
        raise ValueError("amplitude must be non-negative")
    return amplitude * complex(
        math.cos(path_phase(total_distance_m, wavelength_m)),
        math.sin(path_phase(total_distance_m, wavelength_m)),
    )


def antenna_gain_amplitude(gain_dbi: float) -> float:
    """Convert an antenna gain in dBi to a field-amplitude factor."""
    return math.sqrt(db_to_linear(gain_dbi))
