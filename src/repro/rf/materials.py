"""Building materials and their RF properties at 2.4 GHz.

The attenuation values reproduce Table 4.1 of the thesis ("One-Way RF
Attenuation in Common Building Materials at 2.4 GHz"), extended with
the additional obstructions used in the evaluation (§7.6): tinted
glass, the 8" concrete wall of the Fairchild building, and free space.

A :class:`Material` also carries a power reflectivity, which sizes the
"flash" — the reflection off the wall that dominates the received
signal before nulling (§4).  The thesis does not tabulate
reflectivities; we use values consistent with its qualitative claims
(walls reflect strongly; denser material reflects more).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import db_to_linear


@dataclass(frozen=True)
class Material:
    """An obstruction between the Wi-Vi device and the imaged room.

    Attributes:
        name: Human-readable material name as it appears in the paper.
        one_way_attenuation_db: Power lost by a single traversal (dB).
            Through-wall sensing pays this twice (§4: "through-wall
            systems require traversing the obstacle twice").
        reflectivity_db: Power reflected back by the obstruction,
            relative to the incident power (dB, non-positive).  Drives
            the flash effect.
        thickness_m: Physical thickness, used for geometry and for
            reporting.
    """

    name: str
    one_way_attenuation_db: float
    reflectivity_db: float
    thickness_m: float

    def __post_init__(self) -> None:
        if self.one_way_attenuation_db < 0:
            raise ValueError("attenuation must be non-negative dB")
        if self.reflectivity_db > 0:
            raise ValueError("reflectivity must be <= 0 dB")
        if self.thickness_m < 0:
            raise ValueError("thickness must be non-negative")

    @property
    def round_trip_attenuation_db(self) -> float:
        """Two-way (in and out of the room) attenuation in dB."""
        return 2.0 * self.one_way_attenuation_db

    @property
    def one_way_amplitude(self) -> float:
        """Linear field-amplitude transmission factor for one traversal."""
        return db_to_linear(-self.one_way_attenuation_db) ** 0.5

    @property
    def round_trip_amplitude(self) -> float:
        """Linear field-amplitude factor for a round trip through the wall."""
        return db_to_linear(-self.round_trip_attenuation_db) ** 0.5

    @property
    def reflection_amplitude(self) -> float:
        """Linear field-amplitude reflection coefficient magnitude."""
        return db_to_linear(self.reflectivity_db) ** 0.5


#: No obstruction: the free-space baseline of Fig. 7-6.
FREE_SPACE = Material("free space", 0.0, -90.0, 0.0)

#: Plain glass (Table 4.1): 3 dB one-way.
GLASS = Material("glass", 3.0, -12.0, 0.006)

#: Tinted glass, used in the §7.6 material sweep.  Metal-oxide tinting
#: attenuates slightly more than plain glass.
TINTED_GLASS = Material("tinted glass", 4.0, -10.0, 0.006)

#: 1.75" solid wood door (Table 4.1): 6 dB one-way.
SOLID_WOOD_DOOR = Material('1.75" solid wood door', 6.0, -9.0, 0.0445)

#: 6" interior hollow wall, steel-framed with sheet rock (Table 4.1):
#: 9 dB one-way.  The Stata-center conference-room walls.
HOLLOW_WALL_6IN = Material('6" hollow wall', 9.0, -7.0, 0.1524)

#: 8" concrete wall of the Fairchild building (§7.2, §7.6).  Table 4.1
#: lists 18" concrete at 18 dB; 8" scales to roughly 12 dB one-way.
CONCRETE_8IN = Material('8" concrete wall', 12.0, -5.0, 0.2032)

#: 18" concrete wall (Table 4.1): 18 dB one-way.
CONCRETE_18IN = Material('18" concrete wall', 18.0, -4.0, 0.4572)

#: Reinforced concrete (Table 4.1): 40 dB one-way.  The thesis notes
#: Wi-Vi cannot see through it (§7.6).
REINFORCED_CONCRETE = Material("reinforced concrete", 40.0, -3.0, 0.30)

#: All materials keyed by name.
MATERIALS: dict[str, Material] = {
    material.name: material
    for material in (
        FREE_SPACE,
        GLASS,
        TINTED_GLASS,
        SOLID_WOOD_DOOR,
        HOLLOW_WALL_6IN,
        CONCRETE_8IN,
        CONCRETE_18IN,
        REINFORCED_CONCRETE,
    )
}

#: Table 4.1 of the thesis, in its original row order, for the
#: attenuation benchmark.
TABLE_4_1_ROWS: tuple[tuple[str, float], ...] = (
    ("glass", 3.0),
    ('1.75" solid wood door', 6.0),
    ('6" hollow wall', 9.0),
    ('18" concrete wall', 18.0),
    ("reinforced concrete", 40.0),
)


def material_by_name(name: str) -> Material:
    """Look up a material by its paper name.

    Raises ``KeyError`` with the list of known names when the material
    is unknown.
    """
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None
