"""Antenna models.

Wi-Vi uses LP0965 log-periodic directional antennas with 6 dBi of gain
(§7.1), pointed at the wall of interest.  Directionality matters twice
in the paper: it focuses energy through the wall, and it attenuates the
direct transmit-to-receive path so that, after nulling, the direct
signal "becomes negligible" (§4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.constants import ANTENNA_GAIN_DBI, db_to_linear


@dataclass(frozen=True)
class IsotropicAntenna:
    """A 0 dBi reference antenna: unit gain in every direction."""

    def amplitude_gain(self, angle_off_boresight_rad: float) -> float:
        """Field-amplitude gain toward ``angle_off_boresight_rad``."""
        return 1.0


@dataclass(frozen=True)
class DirectionalAntenna:
    """A directional antenna with a raised-cosine main lobe.

    The pattern is ``G(phi) = G0 * max(cos(phi), floor)^order`` in
    power, a standard smooth stand-in for a log-periodic element like
    the LP0965.  ``front_to_back_db`` sets the floor so that energy
    radiated backwards (e.g. straight at the co-located receive
    antenna) is strongly attenuated.

    Attributes:
        boresight_gain_dbi: peak gain (dBi) along boresight.
        beamwidth_deg: half-power (-3 dB) full beamwidth in degrees.
        front_to_back_db: suppression of the back lobe relative to
            boresight (dB, positive).
    """

    boresight_gain_dbi: float = ANTENNA_GAIN_DBI
    beamwidth_deg: float = 60.0
    front_to_back_db: float = 25.0

    def __post_init__(self) -> None:
        if not 0 < self.beamwidth_deg < 180:
            raise ValueError("beamwidth must be in (0, 180) degrees")
        if self.front_to_back_db < 0:
            raise ValueError("front-to-back ratio must be non-negative dB")

    @cached_property
    def cosine_order(self) -> float:
        """Exponent giving a -3 dB point at half the beamwidth.

        Public: the vectorized fast path (`repro.simulator.fastpath`)
        evaluates the pattern in bulk and needs the shaping exponent.
        Cached: it sits on the simulator's per-path hot loop.
        """
        half_beam = math.radians(self.beamwidth_deg / 2.0)
        # Solve cos(half_beam)^order == 0.5 in power.
        return math.log(0.5) / math.log(math.cos(half_beam))

    @cached_property
    def _peak_power(self) -> float:
        return db_to_linear(self.boresight_gain_dbi)

    @cached_property
    def _floor_power(self) -> float:
        return db_to_linear(-self.front_to_back_db)

    def power_gain(self, angle_off_boresight_rad: float) -> float:
        """Linear power gain toward ``angle_off_boresight_rad``."""
        peak = self._peak_power
        floor = self._floor_power
        projection = math.cos(angle_off_boresight_rad)
        if projection <= 0.0:
            return peak * floor
        shaped = projection**self.cosine_order
        return peak * max(shaped, floor)

    def amplitude_gain(self, angle_off_boresight_rad: float) -> float:
        """Field-amplitude gain toward ``angle_off_boresight_rad``."""
        return math.sqrt(self.power_gain(angle_off_boresight_rad))


#: The prototype's antenna: LP0965-like, 6 dBi (§7.1).
LP0965_LIKE = DirectionalAntenna(
    boresight_gain_dbi=ANTENNA_GAIN_DBI, beamwidth_deg=65.0, front_to_back_db=25.0
)
