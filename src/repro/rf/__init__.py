"""RF substrate: materials, propagation, antennas, noise, and channels.

This package models the physical layer the Wi-Vi paper measures
through: one-way attenuation of building materials (Table 4.1 of the
thesis), free-space and radar-equation path gains, directional antenna
patterns, thermal noise, and the coherent multipath channel that the
MIMO nulling and ISAR pipelines operate on.
"""

from repro.rf.antennas import DirectionalAntenna, IsotropicAntenna
from repro.rf.channel import ChannelModel, Path, combine_paths
from repro.rf.materials import (
    CONCRETE_18IN,
    CONCRETE_8IN,
    FREE_SPACE,
    GLASS,
    HOLLOW_WALL_6IN,
    MATERIALS,
    REINFORCED_CONCRETE,
    SOLID_WOOD_DOOR,
    TINTED_GLASS,
    Material,
    material_by_name,
)
from repro.rf.noise import NoiseModel, complex_awgn
from repro.rf.propagation import (
    free_space_amplitude,
    free_space_path_loss_db,
    path_phase,
    radar_amplitude,
    specular_reflection_amplitude,
)

__all__ = [
    "CONCRETE_18IN",
    "CONCRETE_8IN",
    "ChannelModel",
    "DirectionalAntenna",
    "FREE_SPACE",
    "GLASS",
    "HOLLOW_WALL_6IN",
    "IsotropicAntenna",
    "MATERIALS",
    "Material",
    "NoiseModel",
    "Path",
    "REINFORCED_CONCRETE",
    "SOLID_WOOD_DOOR",
    "TINTED_GLASS",
    "combine_paths",
    "complex_awgn",
    "free_space_amplitude",
    "free_space_path_loss_db",
    "material_by_name",
    "path_phase",
    "radar_amplitude",
    "specular_reflection_amplitude",
]
