"""Coherent multipath channel model.

A wireless channel between one transmit and one receive antenna is a
linear superposition of :class:`Path` objects — the single property the
Wi-Vi nulling technique relies on: "wireless signals (including
reflections) combine linearly over the medium" (§1.1).

Each path carries a field amplitude and a total propagation distance.
The distance sets both the carrier phase (narrowband behaviour, what
ISAR tracks) and the delay (wideband behaviour, what makes the channel
frequency-selective across OFDM subcarriers, which is why nulling is
performed per subcarrier, §7.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from repro.constants import SPEED_OF_LIGHT, WAVELENGTH_M


class PathKind(Enum):
    """What a propagation path bounced off, for bookkeeping and nulling
    experiments (static paths are nulled; moving paths are the signal)."""

    DIRECT = "direct"
    FLASH = "flash"
    STATIC = "static"
    MOVING = "moving"


@dataclass(frozen=True)
class Path:
    """One propagation path between a TX and an RX antenna.

    Attributes:
        amplitude: linear field-amplitude gain (>= 0), including
            propagation spreading, wall traversal, reflection
            coefficients, and antenna gains.
        distance_m: total unfolded path length, which determines the
            carrier phase and the group delay.
        kind: what the path interacted with.
    """

    amplitude: float
    distance_m: float
    kind: PathKind = PathKind.STATIC

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("path amplitude must be non-negative")
        if self.distance_m <= 0:
            raise ValueError("path distance must be positive")

    @property
    def delay_s(self) -> float:
        """Propagation delay of the path in seconds."""
        return self.distance_m / SPEED_OF_LIGHT

    def gain(self, wavelength_m: float = WAVELENGTH_M) -> complex:
        """Narrowband complex gain at the carrier (``exp(+j k d)``)."""
        phase = 2.0 * math.pi * self.distance_m / wavelength_m
        return self.amplitude * complex(math.cos(phase), math.sin(phase))


def combine_paths(paths: Iterable[Path], wavelength_m: float = WAVELENGTH_M) -> complex:
    """Coherent narrowband sum of a set of paths at the carrier."""
    return sum((path.gain(wavelength_m) for path in paths), start=0j)


class ChannelModel:
    """A frequency-selective channel built from propagation paths.

    Evaluates the complex frequency response at arbitrary baseband
    frequency offsets (e.g. OFDM subcarrier centres), so the waveform
    simulator can exercise the per-subcarrier nulling of §7.1.
    """

    def __init__(self, paths: Sequence[Path], wavelength_m: float = WAVELENGTH_M):
        if not paths:
            raise ValueError("a channel needs at least one path")
        self._paths = tuple(paths)
        self._wavelength_m = wavelength_m

    @property
    def paths(self) -> tuple[Path, ...]:
        return self._paths

    def narrowband_gain(self) -> complex:
        """Total complex gain at the carrier frequency."""
        return combine_paths(self._paths, self._wavelength_m)

    def frequency_response(self, baseband_frequencies_hz: np.ndarray) -> np.ndarray:
        """Complex response at each baseband frequency offset.

        ``H(f) = sum_k a_k * exp(+j * 2*pi * (d_k / lambda + f * tau_k))``
        using the positive-exponent convention of
        :mod:`repro.rf.propagation`.
        """
        frequencies = np.asarray(baseband_frequencies_hz, dtype=float)
        response = np.zeros(frequencies.shape, dtype=complex)
        for path in self._paths:
            carrier_phase = 2.0 * math.pi * path.distance_m / self._wavelength_m
            response += path.amplitude * np.exp(
                1j * (carrier_phase + 2.0 * math.pi * frequencies * path.delay_s)
            )
        return response

    def static_subset(self) -> "ChannelModel":
        """The channel made of only the static paths (nulling target)."""
        static = [p for p in self._paths if p.kind is not PathKind.MOVING]
        if not static:
            raise ValueError("channel has no static paths")
        return ChannelModel(static, self._wavelength_m)

    def power_w(self) -> float:
        """Narrowband received power for unit transmit power."""
        return abs(self.narrowband_gain()) ** 2

    def __len__(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:
        kinds = {}
        for path in self._paths:
            kinds[path.kind.value] = kinds.get(path.kind.value, 0) + 1
        summary = ", ".join(f"{count} {kind}" for kind, count in sorted(kinds.items()))
        return f"ChannelModel({summary})"
