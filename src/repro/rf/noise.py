"""Noise models: thermal noise and complex AWGN generation.

All random draws take an explicit ``numpy.random.Generator`` so that
every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import thermal_noise_power_w


def complex_awgn(
    shape: int | tuple[int, ...], power_w: float, rng: np.random.Generator
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise of total power ``power_w``.

    The real and imaginary parts each carry half the power.
    """
    if power_w < 0:
        raise ValueError("noise power must be non-negative")
    sigma = np.sqrt(power_w / 2.0)
    return sigma * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


@dataclass(frozen=True)
class NoiseModel:
    """Receiver noise: thermal floor plus noise figure.

    Attributes:
        bandwidth_hz: noise bandwidth of the receiver.
        noise_figure_db: excess noise added by the receive chain.  The
            USRP N210 with an SBX daughterboard has a noise figure of
            roughly 5-8 dB.
    """

    bandwidth_hz: float
    noise_figure_db: float = 7.0

    @property
    def noise_power_w(self) -> float:
        """Total noise power referred to the receiver input (watts)."""
        return thermal_noise_power_w(self.bandwidth_hz, self.noise_figure_db)

    def sample(self, shape: int | tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw complex noise samples at the receiver input."""
        return complex_awgn(shape, self.noise_power_w, rng)
