"""CI perf smoke: compare BENCH_processing_time.json to the baseline.

Run after ``bench_processing_time.py``:

    python benchmarks/check_perf.py

Two gates, both deliberately generous — this is a smoke test against
order-of-magnitude regressions (e.g. the batched path silently falling
back to a per-window loop), not a microbenchmark:

* ``windows_per_s`` must reach ``min_fraction_of_baseline`` of the
  committed baseline throughput (CI runners vary widely in speed);
* ``speedup_vs_reference`` must stay above
  ``min_speedup_vs_reference`` — machine-independent, since both paths
  run on the same hardware.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
RESULT = BENCH_DIR / "output" / "BENCH_processing_time.json"
BASELINE = BENCH_DIR / "baselines" / "processing_time_baseline.json"


def main() -> int:
    """Exit 0 when current throughput clears the baseline gates."""
    if not RESULT.exists():
        print(f"missing {RESULT}; run bench_processing_time.py first")
        return 1
    result = json.loads(RESULT.read_text())
    baseline = json.loads(BASELINE.read_text())

    floor = baseline["windows_per_s"] * baseline["min_fraction_of_baseline"]
    min_speedup = baseline["min_speedup_vs_reference"]
    windows_per_s = result["windows_per_s"]
    speedup = result["speedup_vs_reference"]

    print(
        f"throughput: {windows_per_s:.0f} windows/s "
        f"(baseline {baseline['windows_per_s']:.0f}, floor {floor:.0f})"
    )
    print(f"speedup vs reference loop: {speedup:.2f}x (floor {min_speedup:.1f}x)")

    failures = []
    if windows_per_s < floor:
        failures.append(
            f"throughput {windows_per_s:.0f} windows/s below floor {floor:.0f}"
        )
    if speedup < min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x below floor {min_speedup:.1f}x"
        )
    for failure in failures:
        print(f"PERF REGRESSION: {failure}")
    if not failures:
        print("perf smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
